//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! ships the subset of proptest it uses as a local path dependency:
//!
//! * the [`proptest!`] macro with `name in strategy` and `name: Type`
//!   parameters and the `#![proptest_config(..)]` inner attribute;
//! * [`Strategy`] with [`Strategy::prop_map`] and [`Strategy::boxed`];
//! * strategies for integer ranges, tuples, [`Just`], [`any`],
//!   [`prop_oneof!`], and [`collection::vec`];
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure
//! corpus: a failing case reports its deterministic case number, and the
//! whole run is reproducible because case `n` always draws from a
//! generator seeded with `n`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the heavier simulator
        // property tests fast while still exploring a meaningful space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion, carrying the formatted message.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic generator driving value production. Case `n` of every
/// test uses `TestRng::for_case(n)`, so failures name a reproducible case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one numbered case.
    pub fn for_case(case: u32) -> TestRng {
        TestRng {
            state: 0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(u64::from(case) + 1),
        }
    }

    /// Next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot sample an empty range");
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// A generator of values for property tests.
///
/// This is the object-safe core of proptest's `Strategy`: `generate` draws
/// one value. Combinators live in defaulted methods.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Box::new(self),
        }
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    inner: Box<dyn Strategy<Value = T>>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union of the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),+) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample an empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width u64/i64 range: every value is valid.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + rng.below(span) as i128) as $ty
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: Strategy<Value = Self>;
    /// The full-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy type backing [`any`] for primitive types.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($ty:ty => |$rng:ident| $expr:expr;)+) => {$(
        impl Strategy for AnyPrimitive<$ty> {
            type Value = $ty;
            fn generate(&self, $rng: &mut TestRng) -> $ty {
                $expr
            }
        }
        impl Arbitrary for $ty {
            type Strategy = AnyPrimitive<$ty>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )+};
}

arbitrary_prim! {
    bool => |rng| rng.next_u64() & 1 == 1;
    u8 => |rng| rng.next_u64() as u8;
    u16 => |rng| rng.next_u64() as u16;
    u32 => |rng| rng.next_u64() as u32;
    u64 => |rng| rng.next_u64();
    usize => |rng| rng.next_u64() as usize;
    i8 => |rng| rng.next_u64() as i8;
    i16 => |rng| rng.next_u64() as i16;
    i32 => |rng| rng.next_u64() as i32;
    i64 => |rng| rng.next_u64() as i64;
    isize => |rng| rng.next_u64() as isize;
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "cannot sample an empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Fails the enclosing property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the enclosing property case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} == {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                )
            }
        }
    };
}

/// Fails the enclosing property case unless the operands compare unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r)
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)+)
                )
            }
        }
    };
}

/// Declares property tests, mirroring proptest's macro of the same name.
///
/// Supports `#![proptest_config(expr)]` as the first item and test
/// functions whose parameters are either `name in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(case);
                $crate::__proptest_case! {
                    rng = __proptest_rng;
                    case = case;
                    bound = [];
                    rest = [$($params)*];
                    body = $body
                }
            }
        }
    )*};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters munched: run the case body inside a closure so
    // `prop_assert!` can early-return a failure.
    (rng = $rng:ident; case = $case:expr; bound = [$(($var:ident, $strategy:expr))*]; rest = []; body = $body:block) => {
        let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
            $(let $var = $crate::Strategy::generate(&($strategy), &mut $rng);)*
            $body
            ::std::result::Result::Ok(())
        })();
        if let ::std::result::Result::Err(e) = outcome {
            panic!("proptest case #{case} failed: {e}", case = $case, e = e);
        }
    };
    // `name in strategy, ...`
    (rng = $rng:ident; case = $case:expr; bound = [$($bound:tt)*]; rest = [$var:ident in $strategy:expr, $($rest:tt)*]; body = $body:block) => {
        $crate::__proptest_case! {
            rng = $rng;
            case = $case;
            bound = [$($bound)* ($var, $strategy)];
            rest = [$($rest)*];
            body = $body
        }
    };
    // `name in strategy` (final)
    (rng = $rng:ident; case = $case:expr; bound = [$($bound:tt)*]; rest = [$var:ident in $strategy:expr]; body = $body:block) => {
        $crate::__proptest_case! {
            rng = $rng;
            case = $case;
            bound = [$($bound)* ($var, $strategy)];
            rest = [];
            body = $body
        }
    };
    // `name: Type, ...`
    (rng = $rng:ident; case = $case:expr; bound = [$($bound:tt)*]; rest = [$var:ident : $ty:ty, $($rest:tt)*]; body = $body:block) => {
        $crate::__proptest_case! {
            rng = $rng;
            case = $case;
            bound = [$($bound)* ($var, $crate::any::<$ty>())];
            rest = [$($rest)*];
            body = $body
        }
    };
    // `name: Type` (final)
    (rng = $rng:ident; case = $case:expr; bound = [$($bound:tt)*]; rest = [$var:ident : $ty:ty]; body = $body:block) => {
        $crate::__proptest_case! {
            rng = $rng;
            case = $case;
            bound = [$($bound)* ($var, $crate::any::<$ty>())];
            rest = [];
            body = $body
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(0);
        for _ in 0..500 {
            let v = (3u32..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let v = (0u8..32).generate(&mut rng);
            assert!(v < 32);
            let v = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::TestRng::for_case(c).next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::TestRng::for_case(c).next_u64())
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro supports both parameter forms and mapped strategies.
        #[test]
        fn macro_round_trip(
            small in (0u8..8).prop_map(|v| v * 2),
            flag: bool,
            items in prop::collection::vec(1u32..5, 1..6),
        ) {
            prop_assert!(small < 16);
            prop_assert!(small % 2 == 0);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(items.len(), 0);
            for item in items {
                prop_assert!((1..5).contains(&item), "item {} out of range", item);
            }
        }

        /// prop_oneof unions heterogeneous strategy types.
        #[test]
        fn oneof_selects_all_arms(v in prop_oneof![Just(1u32), Just(2u32), 10u32..12]) {
            prop_assert!(v == 1 || v == 2 || v == 10 || v == 11);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case #")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(v in 0u32..4) {
                prop_assert!(v > 100, "v was {}", v);
            }
        }
        always_fails();
    }
}
