//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Provides [`Mutex`] and [`Condvar`] with `parking_lot`'s ergonomics
//! (no poisoning, `lock()` returns the guard directly, `Condvar::wait`
//! takes the guard by `&mut`). Performance characteristics are those of
//! the standard library, which is fine for this workspace's tests and
//! benchmark baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock, mirroring `parking_lot::Mutex`.
#[derive(Default)]
pub struct Mutex<T> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std`, there is no poisoning: a panic while holding the lock
    /// in another thread is propagated as a panic here, matching
    /// `parking_lot`'s "poisoning is a bug" stance closely enough for
    /// in-workspace use.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(
                self.inner
                    .lock()
                    .expect("mutex poisoned by a panicking thread"),
            ),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .expect("mutex poisoned by a panicking thread")
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take
/// the underlying std guard while suspended; it is `Some` at every point
/// user code can observe.
pub struct MutexGuard<'a, T> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

/// A condition variable, mirroring `parking_lot::Condvar`.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically releases the guarded mutex and blocks until notified,
    /// reacquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard present outside wait");
        guard.guard = Some(
            self.inner
                .wait(inner)
                .expect("mutex poisoned by a panicking thread"),
        );
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::{Condvar, Mutex};
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }
}
