//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace provides
//! the tiny subset of the `rand` 0.9 API it actually uses as a local path
//! dependency: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::random_range`] over integer ranges.
//!
//! The generator is splitmix64-seeded xoshiro256++, which is more than
//! adequate for the simulator's preemption-jitter and test-fuzzing needs.
//! It is deterministic for a given seed, which the kernel's reproducibility
//! guarantees rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface, mirroring the parts of `rand::Rng` in use.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniformly distributed value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<R: UniformRange>(&mut self, range: R) -> R::Value
    where
        Self: Sized,
    {
        range.sample_with(&mut || self.next_u64())
    }
}

/// Integer ranges that can be sampled uniformly.
pub trait UniformRange {
    /// The sampled value type.
    type Value;
    /// Draws one value using the provided bit source.
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> Self::Value;
}

fn uniform_below(next: &mut dyn FnMut() -> u64, span: u64) -> u64 {
    // Rejection sampling to avoid modulo bias; the retry probability is
    // negligible for the small spans this workspace samples.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = next();
        if v < zone {
            return v % span;
        }
    }
}

impl UniformRange for Range<u64> {
    type Value = u64;
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> u64 {
        assert!(self.start < self.end, "cannot sample an empty range");
        self.start + uniform_below(next, self.end - self.start)
    }
}

impl UniformRange for RangeInclusive<u64> {
    type Value = u64;
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample an empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return next();
        }
        lo + uniform_below(next, span + 1)
    }
}

impl UniformRange for Range<usize> {
    type Value = usize;
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> usize {
        (self.start as u64..self.end as u64).sample_with(next) as usize
    }
}

impl UniformRange for Range<u32> {
    type Value = u32;
    fn sample_with(self, next: &mut dyn FnMut() -> u64) -> u32 {
        (u64::from(self.start)..u64::from(self.end)).sample_with(next) as u32
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic 64-bit generator (xoshiro256++ seeded via
    /// splitmix64), standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_bounded() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.random_range(0..=50u64);
            assert!(v <= 50);
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = r.random_range(0usize..7);
            assert!(v < 7);
        }
    }

    #[test]
    fn inclusive_full_range_does_not_overflow() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.random_range(0..=u64::MAX);
    }
}
