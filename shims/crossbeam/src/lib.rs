//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`utils::CachePadded`] is provided — the single item this
//! workspace uses. See `shims/` for why these stand-ins exist.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Miscellaneous utilities, mirroring `crossbeam::utils`.
pub mod utils {
    use std::fmt;
    use std::ops::{Deref, DerefMut};

    /// Pads and aligns a value to 128 bytes so that two `CachePadded`
    /// values never share a cache line — the property the native Lamport
    /// implementation relies on to keep its per-thread flags from
    /// false-sharing.
    #[derive(Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Consumes the wrapper, returning the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_tuple("CachePadded").field(&self.value).finish()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::CachePadded;

        #[test]
        fn aligned_and_transparent() {
            let c = CachePadded::new(17u32);
            assert_eq!(*c, 17);
            assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
            assert_eq!(c.into_inner(), 17);
        }
    }
}
