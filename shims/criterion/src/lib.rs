//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the `ras-bench` targets use —
//! [`Criterion`], [`Criterion::benchmark_group`], `bench_function`,
//! [`Bencher::iter`], [`criterion_group!`], [`criterion_main!`] — over a
//! simple wall-clock harness: warm up, run `sample_size` samples, and
//! print min/mean/max per iteration. No statistics engine, no plots, but
//! `cargo bench` produces comparable numbers without network access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Top-level benchmark configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Criterion {
        self.warm_up_time = t;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark: warm up, sample, and report.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let cfg = self.criterion;

        // Warm-up: also estimates the per-iteration cost so each sample
        // can batch enough iterations to be measurable.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut bencher = Bencher::default();
        while warm_start.elapsed() < cfg.warm_up_time {
            bencher.iters = 1;
            f(&mut bencher);
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos().max(1) / u128::from(warm_iters.max(1));

        let budget = cfg.measurement_time.as_nanos() / cfg.sample_size as u128;
        let iters_per_sample = (budget / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;

        let mut samples = Vec::with_capacity(cfg.sample_size);
        for _ in 0..cfg.sample_size {
            bencher.iters = iters_per_sample;
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            samples.push(bencher.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        eprintln!(
            "{}/{id}: {} ns/iter (min {}, max {}, {} samples x {} iters)",
            self.name,
            fmt_ns(mean),
            fmt_ns(samples[0]),
            fmt_ns(*samples.last().expect("sample_size >= 2")),
            samples.len(),
            iters_per_sample,
        );
        self
    }

    /// Finishes the group (a no-op; provided for API compatibility).
    pub fn finish(self) {}
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.1}e6", ns / 1e6)
    } else {
        format!("{ns:.1}")
    }
}

/// Per-benchmark timing handle passed to the closure given to
/// [`BenchmarkGroup::bench_function`].
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, recording the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(f());
        }
        self.elapsed += start.elapsed();
    }
}

/// An opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench `main` function, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports_and_returns() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("shim");
            group.bench_function("noop", |b| b.iter(|| calls += 1));
            group.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(42), 42);
    }
}
