//! Lock-profile reconstruction across the mechanism matrix.
//!
//! Three independent observers watch the same run: the kernel's
//! structured `LockAttempt` events (only emitted where the kernel
//! mediates the lock, i.e. kernel emulation), the batch `lock_profile`
//! replay of the access log, and the streaming `Telemetry` aggregate.
//! Where two observers can see the same phenomenon they must agree
//! exactly — that cross-validation is what makes the value-transition
//! replay trustworthy for the mechanisms whose releases the kernel never
//! sees (optimistic RAS sequences, plain stores).

use restartable_atomics::ras_obs::{lock_profile, ObsEvent, Recording, Telemetry};
use restartable_atomics::workloads::{
    counter_loop, model_counter, CounterBody, CounterSpec, ModelSpec, TasFlavor,
};
use restartable_atomics::{
    run_guest_keeping_kernel, BuiltGuest, CpuProfile, Mechanism, Observe, Outcome, RunOptions,
};

fn pick_profile(mechanism: Mechanism) -> CpuProfile {
    for profile in [CpuProfile::r3000(), CpuProfile::i486(), CpuProfile::i860()] {
        if mechanism.supported_by(&profile) {
            return profile;
        }
    }
    unreachable!("every mechanism runs on at least one profile");
}

/// Runs `built` with events, streaming telemetry, and raw access capture
/// over `watch`, returning the final value of the named data word too.
fn run_instrumented(
    built: &BuiltGuest,
    watch: &[u32],
    quantum: u64,
    read_word: &str,
) -> (Recording, Telemetry, u32) {
    let options = RunOptions {
        quantum,
        observe: Observe::Events,
        telemetry_locks: Some(watch.to_vec()),
        telemetry_raw: true,
        ..RunOptions::new(pick_profile(built.mechanism))
    };
    let (report, mut kernel) = run_guest_keeping_kernel(built, &options);
    assert_eq!(report.outcome, Outcome::Completed);
    let telemetry = kernel.take_telemetry().expect("telemetry enabled");
    let recording = kernel.take_recording().expect("events recorded");
    let addr = built.data.symbol(read_word).expect("data symbol exists");
    let value = kernel.read_word(addr).expect("word readable");
    (recording, telemetry, value)
}

/// The mechanisms whose lock word follows plain Test-And-Set value
/// semantics (zero = free), so `lock_profile`'s transition rules apply.
/// The Lamport protocols use multi-word reservation structures instead.
fn tas_family() -> Vec<Mechanism> {
    Mechanism::all()
        .into_iter()
        .filter(|m| !matches!(m, Mechanism::LamportPerLock | Mechanism::LamportBundled))
        .collect()
}

#[test]
fn streaming_telemetry_agrees_with_batch_lock_profile_across_mechanisms() {
    let spec = CounterSpec {
        iterations: 300,
        workers: 3,
        body: CounterBody::LockAndCounter,
    };
    for mechanism in tas_family() {
        let built = counter_loop(mechanism, &spec);
        let lock = built.data.symbol("lock").expect("lock symbol");
        let (_, telemetry, counter) = run_instrumented(&built, &[lock], 1_700, "counter");
        assert_eq!(counter, spec.expected_count(), "{mechanism}: lost updates");

        let accesses: Vec<_> = telemetry.raw().iter().map(|&(_, a)| a).collect();
        let profile = lock_profile(&accesses, lock);
        let t = &telemetry.locks()[0];
        assert_eq!(
            t.acquisitions, profile.acquisitions,
            "{mechanism}: acquisition counts disagree"
        );
        assert_eq!(
            t.releases, profile.releases,
            "{mechanism}: release counts disagree"
        );
        assert_eq!(
            t.contended_probes, profile.contended_probes,
            "{mechanism}: contended-probe counts disagree"
        );
        assert_eq!(
            t.hold.sum(),
            profile.hold_cycles,
            "{mechanism}: total hold time disagrees"
        );
        // Every critical section entered was also left, and each of the
        // 900 increments went through the lock.
        assert_eq!(t.acquisitions, t.releases, "{mechanism}: unbalanced lock");
        assert_eq!(
            t.acquisitions,
            spec.total_ops(),
            "{mechanism}: acquisition count differs from operations"
        );
    }
}

#[test]
fn kernel_lock_attempt_events_match_the_replay_under_emulation() {
    // Only kernel emulation traps to the kernel for Test-And-Set, so
    // only there does an event-level observer exist to cross-check the
    // value-transition replay observation for observation.
    let spec = CounterSpec {
        iterations: 250,
        workers: 3,
        body: CounterBody::LockAndCounter,
    };
    let built = counter_loop(Mechanism::KernelEmulation, &spec);
    let lock = built.data.symbol("lock").expect("lock symbol");
    let (recording, telemetry, counter) = run_instrumented(&built, &[lock], 1_900, "counter");
    assert_eq!(counter, spec.expected_count());

    let mut acquired = 0u64;
    let mut failed = 0u64;
    for e in recording.events() {
        if let ObsEvent::LockAttempt {
            addr, acquired: ok, ..
        } = e.event
        {
            assert_eq!(addr, lock);
            if ok {
                acquired += 1;
            } else {
                failed += 1;
            }
        }
    }
    let accesses: Vec<_> = telemetry.raw().iter().map(|&(_, a)| a).collect();
    let profile = lock_profile(&accesses, lock);
    assert_eq!(acquired, profile.acquisitions, "successful TAS traps");
    assert_eq!(failed, profile.contended_probes, "failed TAS traps");
    assert_eq!(acquired, telemetry.locks()[0].acquisitions);
    assert_eq!(failed, telemetry.locks()[0].contended_probes);
}

#[test]
fn inline_flavors_reconstruct_cas_xchg_and_lock_free_faa() {
    let spec = ModelSpec {
        iterations: 40,
        workers: 3,
    };
    for flavor in [TasFlavor::Cas, TasFlavor::Xchg, TasFlavor::Faa] {
        let built = model_counter(Mechanism::RasInline, flavor, &spec);
        let lock = built.data.symbol("lock").expect("lock symbol");
        let (_, telemetry, counter) = run_instrumented(&built, &[lock], 900, "counter");
        assert_eq!(counter, spec.expected_count(), "{flavor}: lost updates");

        let accesses: Vec<_> = telemetry.raw().iter().map(|&(_, a)| a).collect();
        let profile = lock_profile(&accesses, lock);
        let t = &telemetry.locks()[0];
        assert_eq!(t.acquisitions, profile.acquisitions, "{flavor}");
        assert_eq!(t.releases, profile.releases, "{flavor}");
        assert_eq!(t.contended_probes, profile.contended_probes, "{flavor}");
        if flavor.is_lock_free() {
            // Fetch-And-Add increments the counter directly: the lock
            // word is never touched, and there is no exclusion to
            // profile — only the lost-update property, checked above.
            assert_eq!(profile.acquisitions, 0, "faa should never lock");
            assert_eq!(profile.contended_probes, 0);
        } else {
            assert_eq!(
                profile.acquisitions,
                u64::from(spec.expected_count()),
                "{flavor}: every increment goes through the lock"
            );
            assert_eq!(profile.acquisitions, profile.releases, "{flavor}");
            let (_, _, violations) = run_instrumented(&built, &[lock], 900, "violations");
            assert_eq!(violations, 0, "{flavor}: mutual exclusion violated");
        }
    }
}
