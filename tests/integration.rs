//! Workspace-level integration tests spanning all crates: the public API
//! as a downstream user would drive it, cross-mechanism invariants, and
//! the experiment runners at reduced scale.

use restartable_atomics::workloads::{
    counter_loop, ping_pong, proton64, CounterSpec, Proton64Spec, Table2Spec,
};
use restartable_atomics::{
    run_guest, run_guest_keeping_kernel, CheckTime, CpuProfile, Mechanism, Outcome, RunOptions,
    StrategyKind,
};

#[test]
fn public_api_quickstart_flow() {
    let spec = CounterSpec {
        iterations: 2_000,
        workers: 2,
        ..Default::default()
    };
    let built = counter_loop(Mechanism::RasInline, &spec);
    let (report, kernel) = run_guest_keeping_kernel(&built, &RunOptions::default());
    assert_eq!(report.outcome, Outcome::Completed);
    let counter = built.data.symbol("counter").unwrap();
    assert_eq!(kernel.read_word(counter).unwrap(), 4_000);
    assert!(report.micros > 0.0);
    assert!(report.stats.threads_spawned == 3);
}

#[test]
fn optimistic_beats_pessimistic_at_realistic_quanta() {
    // The headline claim, end to end through the facade: at the paper's
    // 100 Hz quantum, every optimistic mechanism beats kernel emulation
    // on the microbenchmark by a wide margin.
    let spec = CounterSpec {
        iterations: 5_000,
        workers: 1,
        ..Default::default()
    };
    let emul = run_guest(
        &counter_loop(Mechanism::KernelEmulation, &spec),
        &RunOptions::default(),
    );
    for mechanism in [
        Mechanism::RasRegistered,
        Mechanism::RasInline,
        Mechanism::UserLevelRestart,
    ] {
        let ras = run_guest(&counter_loop(mechanism, &spec), &RunOptions::default());
        assert!(
            ras.micros * 3.0 < emul.micros,
            "{mechanism}: {:.1} µs vs emulation {:.1} µs",
            ras.micros,
            emul.micros
        );
    }
}

#[test]
fn optimism_assumption_holds_for_applications() {
    // "Restartable atomic sequences are almost never interrupted,
    // validating the optimistic approach." The claim is about programs
    // with real computation between synchronization operations (Table 3's
    // restart counts are single digits against millions of atomic ops) —
    // so measure it on the parthenon analogue, whose inference work
    // dwarfs its critical sections.
    use restartable_atomics::workloads::{parthenon, ParthenonSpec};
    let spec = ParthenonSpec {
        workers: 4,
        clauses: 6_000,
        work_iters: 650,
    };
    let options = RunOptions {
        quantum: 50_000, // 2 ms at 25 MHz — 5x more hostile than real
        ..RunOptions::default()
    };
    let report = run_guest(&parthenon(Mechanism::RasInline, &spec), &options);
    assert!(
        report.stats.preemptions > 50,
        "the run must span many quanta"
    );
    assert!(
        report.stats.ras_restarts * 5 <= report.stats.preemptions,
        "restarts ({}) should be a small fraction of preemptions ({})",
        report.stats.ras_restarts,
        report.stats.preemptions
    );
}

#[test]
fn check_time_never_changes_results_across_workloads() {
    for mechanism in [Mechanism::RasRegistered, Mechanism::RasInline] {
        for (quantum, seed) in [(37u64, 5u64), (101, 9)] {
            let mut results = Vec::new();
            for check in [CheckTime::OnSuspend, CheckTime::OnResume] {
                let spec = Proton64Spec { items: 400 };
                let built = proton64(mechanism, &spec);
                let options = RunOptions {
                    quantum,
                    jitter: 3,
                    seed,
                    check_time: check,
                    ..RunOptions::default()
                };
                let (_, kernel) = run_guest_keeping_kernel(&built, &options);
                let checksum = kernel
                    .read_word(built.data.symbol("checksum").unwrap())
                    .unwrap();
                assert_eq!(checksum, spec.expected_checksum(), "{mechanism} {check:?}");
                results.push(checksum);
            }
            assert_eq!(results[0], results[1]);
        }
    }
}

#[test]
fn interlocked_and_designated_coexist_on_i860() {
    // §7: the i860 has both bus-locked atomics and the restart bit; both
    // mechanisms (and designated sequences) must run correctly on it.
    let spec = CounterSpec {
        iterations: 1_000,
        workers: 2,
        ..Default::default()
    };
    for mechanism in [
        Mechanism::Interlocked,
        Mechanism::HardwareBit,
        Mechanism::RasInline,
    ] {
        let built = counter_loop(mechanism, &spec);
        let mut options = RunOptions::new(CpuProfile::i860());
        options.quantum = 67;
        options.jitter = 3;
        let (_, kernel) = run_guest_keeping_kernel(&built, &options);
        assert_eq!(
            kernel
                .read_word(built.data.symbol("counter").unwrap())
                .unwrap(),
            2_000,
            "{mechanism} on i860"
        );
    }
}

#[test]
fn fallback_binary_runs_on_all_strategies() {
    // A registered-RAS binary must work unmodified on a Registered kernel,
    // and after the §3.1 overwrite on any other kernel.
    let spec = CounterSpec {
        iterations: 1_500,
        workers: 2,
        ..Default::default()
    };
    // Native: registered kernel.
    let built = counter_loop(Mechanism::RasRegistered, &spec);
    assert_eq!(built.strategy, StrategyKind::Registered);
    let (_, kernel) = run_guest_keeping_kernel(&built, &RunOptions::default());
    assert_eq!(
        kernel
            .read_word(built.data.symbol("counter").unwrap())
            .unwrap(),
        3_000
    );
    // Fallback: emulation on a designated-sequence kernel (which refuses
    // registration and recognizes no Figure 4 window).
    let mut patched = counter_loop(Mechanism::RasRegistered, &spec);
    patched.apply_emulation_fallback();
    patched.strategy = StrategyKind::Designated;
    let options = RunOptions {
        quantum: 53,
        ..RunOptions::default()
    };
    let (report, kernel) = run_guest_keeping_kernel(&patched, &options);
    assert_eq!(
        kernel
            .read_word(patched.data.symbol("counter").unwrap())
            .unwrap(),
        3_000
    );
    assert!(report.stats.emulation_traps >= 3_000);
}

#[test]
fn native_and_simulated_lamport_agree_on_semantics() {
    // The same algorithm, two substrates: the simulator's guest-code
    // Lamport and the native-atomics Lamport both provide exclusion.
    let spec = CounterSpec {
        iterations: 500,
        workers: 3,
        ..Default::default()
    };
    let built = counter_loop(Mechanism::LamportPerLock, &spec);
    let options = RunOptions {
        quantum: 43,
        jitter: 7,
        ..RunOptions::default()
    };
    let (_, kernel) = run_guest_keeping_kernel(&built, &options);
    assert_eq!(
        kernel
            .read_word(built.data.symbol("counter").unwrap())
            .unwrap(),
        1_500
    );

    let m = ras_native::FastMutex::new(3);
    let counter = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let slot = m.slot().unwrap();
            let (m, counter) = (&m, &counter);
            scope.spawn(move || {
                for _ in 0..500 {
                    let _g = m.lock(slot);
                    let v = counter.load(std::sync::atomic::Ordering::Relaxed);
                    counter.store(v + 1, std::sync::atomic::Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 1_500);
}

#[test]
fn pingpong_synchronization_counts_match_mechanism() {
    // PingPong is the paper's "profligate synchronization" benchmark.
    // Under kernel emulation the trap count must scale with cycles; under
    // RAS the kernel sees only the futex traffic.
    let spec = Table2Spec { iterations: 300 };
    let emul = run_guest(
        &ping_pong(Mechanism::KernelEmulation, &spec),
        &RunOptions::default(),
    );
    let ras = run_guest(
        &ping_pong(Mechanism::RasRegistered, &spec),
        &RunOptions::default(),
    );
    assert!(
        emul.stats.emulation_traps > 1_000,
        "many TAS traps expected"
    );
    assert_eq!(ras.stats.emulation_traps, 0);
    assert!(ras.micros < emul.micros);
}

#[test]
fn static_analyzer_accepts_every_workload_program() {
    // The ras-lint smoke pass: every program the workload generators can
    // emit, on every mechanism, must come back from the static analyzer
    // with zero errors — the same gate `run_guest` enforces in debug
    // builds, exercised here across the whole generator matrix.
    use restartable_atomics::ras_analyze::{analyze_standard, Severity};
    use restartable_atomics::workloads::{
        afs_bench, fork_test, malloc_stress, mutex_bench, parthenon, spinlock_bench, text_format,
        treiber_stack, AfsSpec, MallocSpec, ParthenonSpec, StackSpec, TextFormatSpec,
    };

    let mut checked = 0usize;
    for mechanism in Mechanism::all() {
        let counter = CounterSpec {
            iterations: 10,
            workers: 2,
            ..Default::default()
        };
        let t2 = Table2Spec { iterations: 10 };
        let mut builds = vec![
            ("counter", counter_loop(mechanism, &counter)),
            (
                "malloc",
                malloc_stress(
                    mechanism,
                    &MallocSpec {
                        workers: 2,
                        rounds: 2,
                        blocks: 3,
                    },
                ),
            ),
            ("spinlock", spinlock_bench(mechanism, &t2)),
            ("mutex", mutex_bench(mechanism, &t2)),
            ("fork", fork_test(mechanism, &t2)),
            ("pingpong", ping_pong(mechanism, &t2)),
            (
                "parthenon",
                parthenon(
                    mechanism,
                    &ParthenonSpec {
                        workers: 2,
                        clauses: 8,
                        work_iters: 4,
                    },
                ),
            ),
            ("proton64", proton64(mechanism, &Proton64Spec { items: 16 })),
            (
                "text-format",
                text_format(
                    mechanism,
                    &TextFormatSpec {
                        requests: 2,
                        client_work: 8,
                        server_work: 4,
                    },
                ),
            ),
            (
                "afs",
                afs_bench(
                    mechanism,
                    &AfsSpec {
                        requests: 2,
                        client_work: 8,
                        server_work: 4,
                    },
                ),
            ),
        ];
        if mechanism == Mechanism::RasInline {
            // The lock-free stack insists on designated CAS sequences.
            builds.push((
                "stack",
                treiber_stack(
                    mechanism,
                    &StackSpec {
                        workers: 2,
                        nodes_per_worker: 4,
                    },
                ),
            ));
        }
        for (name, built) in builds {
            let analysis = analyze_standard(&built.program);
            let errors: Vec<_> = analysis
                .diags
                .iter()
                .filter(|d| d.severity() == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "{name} on {mechanism}: {errors:#?}");
            checked += 1;
        }
    }
    assert_eq!(checked, 10 * Mechanism::all().len() + 1);
}

#[test]
fn experiment_runners_are_deterministic() {
    use restartable_atomics::experiments::{table1, Table1Scale};
    let a = table1(Table1Scale { iterations: 1_000 });
    let b = table1(Table1Scale { iterations: 1_000 });
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.measured_us, rb.measured_us, "{}", ra.mechanism);
    }
}
