//! Differential pinning of the streaming telemetry pipeline against
//! exact offline statistics, on every bundled lock-server configuration.
//!
//! The tentpole guarantee: the O(buckets)-memory streaming histograms
//! must be *byte-identical* to histograms rebuilt from the complete
//! buffered event stream — not approximately equal, identical. The runs
//! here capture both representations at once (`telemetry_raw` retains
//! the raw watched accesses alongside the streaming fold) and compare
//! bucket-for-bucket and percentile-string-for-percentile-string.

use restartable_atomics::ras_obs::{
    exact_lock_replay, validate_stat_snapshot, Log2Histogram, SnapshotMeta, StatSnapshot, Telemetry,
};
use restartable_atomics::workloads::{lock_addresses, lock_server, Arrival, LockServerSpec};
use restartable_atomics::{run_guest_keeping_kernel, CpuProfile, Mechanism, Outcome, RunOptions};

fn pick_profile(mechanism: Mechanism) -> CpuProfile {
    for profile in [CpuProfile::r3000(), CpuProfile::i486(), CpuProfile::i860()] {
        if mechanism.supported_by(&profile) {
            return profile;
        }
    }
    unreachable!("every mechanism runs on at least one profile");
}

/// The bundled configurations the acceptance gate sweeps.
fn bundled() -> Vec<(&'static str, LockServerSpec)> {
    vec![
        (
            "smoke-uniform",
            LockServerSpec {
                clients: 8,
                locks: 4,
                ops_per_client: 24,
                arrival: Arrival::Uniform,
                think: 0,
                ..LockServerSpec::default()
            },
        ),
        (
            "hot-zipf",
            LockServerSpec {
                clients: 8,
                locks: 8,
                ops_per_client: 24,
                arrival: Arrival::Zipfian,
                think: 40,
                ..LockServerSpec::default()
            },
        ),
        (
            "bursty",
            LockServerSpec {
                clients: 12,
                locks: 4,
                ops_per_client: 16,
                arrival: Arrival::Bursty,
                burst_gap: 2_500,
                ..LockServerSpec::default()
            },
        ),
    ]
}

fn run_config(mechanism: Mechanism, spec: &LockServerSpec, raw: bool) -> (Telemetry, u64, u64) {
    let built = lock_server(mechanism, spec);
    let watch = lock_addresses(&built, spec);
    let options = RunOptions {
        quantum: 3_000,
        telemetry_locks: Some(watch),
        telemetry_raw: raw,
        ..RunOptions::new(pick_profile(mechanism))
    };
    let (report, mut kernel) = run_guest_keeping_kernel(&built, &options);
    assert_eq!(report.outcome, Outcome::Completed);
    let ops_done = built.data.symbol("ops_done").expect("ops_done symbol");
    let total_ops: u64 = (0..spec.locks)
        .map(|i| u64::from(kernel.read_word(ops_done + 4 * i as u32).expect("readable")))
        .sum();
    let telemetry = kernel.take_telemetry().expect("telemetry enabled");
    (telemetry, total_ops, report.cycles)
}

#[test]
fn streaming_percentiles_are_byte_identical_to_exact_on_every_bundled_config() {
    for mechanism in Mechanism::all() {
        for (name, spec) in bundled() {
            let (telemetry, total_ops, _) = run_config(mechanism, &spec, true);
            assert_eq!(
                total_ops,
                spec.total_ops(),
                "{mechanism}/{name}: lost updates"
            );
            let addrs: Vec<u32> = telemetry.locks().iter().map(|l| l.addr).collect();
            let exact = exact_lock_replay(telemetry.raw(), &addrs);
            assert_eq!(exact.len(), telemetry.locks().len());
            for (lock, exact) in telemetry.locks().iter().zip(&exact) {
                assert_eq!(lock.addr, exact.addr);
                assert_eq!(lock.acquisitions, exact.acquisitions, "{mechanism}/{name}");
                assert_eq!(lock.releases, exact.releases, "{mechanism}/{name}");
                assert_eq!(
                    lock.contended_probes, exact.contended_probes,
                    "{mechanism}/{name}"
                );
                let mut wait = Log2Histogram::new();
                for &w in &exact.waits {
                    wait.record(w);
                }
                let mut hold = Log2Histogram::new();
                for &h in &exact.holds {
                    hold.record(h);
                }
                // Bucket-exact equality, then the user-visible percentile
                // strings byte-for-byte.
                assert_eq!(
                    lock.wait, wait,
                    "{mechanism}/{name}: wait histogram drifted"
                );
                assert_eq!(
                    lock.hold, hold,
                    "{mechanism}/{name}: hold histogram drifted"
                );
                assert_eq!(
                    lock.wait.percentile_summary(),
                    wait.percentile_summary(),
                    "{mechanism}/{name}"
                );
                assert_eq!(
                    lock.hold.percentile_summary(),
                    hold.percentile_summary(),
                    "{mechanism}/{name}"
                );
                // The bucketed percentile must dominate the exact one and
                // stay within its bucket (upper bound semantics).
                let mut sorted = exact.waits.clone();
                sorted.sort_unstable();
                if !sorted.is_empty() {
                    for (permille, q) in [(500, 0.5), (900, 0.9), (990, 0.99)] {
                        let rank =
                            ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                        let exact_p = sorted[rank - 1];
                        let bucketed = lock.wait.percentile_permille(permille);
                        assert!(
                            bucketed >= exact_p,
                            "{mechanism}/{name}: p{permille} bucketed {bucketed} < exact {exact_p}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn snapshot_json_is_deterministic_and_schema_valid() {
    let spec = bundled()[1].1;
    let json: Vec<String> = (0..2)
        .map(|_| {
            let (telemetry, total_ops, cycles) = run_config(Mechanism::RasRegistered, &spec, false);
            StatSnapshot {
                meta: SnapshotMeta {
                    mechanism: Mechanism::RasRegistered.id().to_owned(),
                    workload: "lock-server".to_owned(),
                    clients: spec.clients as u64,
                    locks: spec.locks as u64,
                    ops_per_client: u64::from(spec.ops_per_client),
                    arrival: spec.arrival.id().to_owned(),
                    total_cycles: cycles,
                    total_ops,
                },
                telemetry: &telemetry,
            }
            .to_json()
        })
        .collect();
    assert_eq!(
        json[0], json[1],
        "same run must serialize to the same bytes"
    );
    let summary = validate_stat_snapshot(&json[0]).expect("schema-valid snapshot");
    assert_eq!(summary.locks, spec.locks);
    assert_eq!(summary.acquisitions, spec.total_ops());
}

#[test]
fn telemetry_memory_stays_bounded_without_raw_capture() {
    // The production configuration (capture_raw off) retains nothing
    // per-event: histograms and counters only.
    let spec = bundled()[0].1;
    let (telemetry, _, _) = run_config(Mechanism::RasInline, &spec, false);
    assert!(telemetry.raw().is_empty(), "raw capture must default off");
    assert!(telemetry.boundary_flushes() > 0, "no boundary flushes ran");
    let total: u64 = telemetry.locks().iter().map(|l| l.acquisitions).sum();
    assert_eq!(total, spec.total_ops());
}

#[test]
fn a_thousand_clients_complete_with_exact_accounting() {
    // The scale story in miniature (the CI smoke runs 10,000 clients in
    // release mode): client stacks shrink so thousands of TCBs fit in
    // the default 8 MiB image.
    let spec = LockServerSpec {
        clients: 1_000,
        locks: 8,
        ops_per_client: 2,
        arrival: Arrival::Zipfian,
        ..LockServerSpec::default()
    };
    let built = lock_server(Mechanism::RasRegistered, &spec);
    let watch = lock_addresses(&built, &spec);
    let options = RunOptions {
        quantum: 10_000,
        stack_bytes: 512,
        max_threads: spec.clients + 2,
        telemetry_locks: Some(watch),
        ..RunOptions::new(CpuProfile::r3000())
    };
    let (report, mut kernel) = run_guest_keeping_kernel(&built, &options);
    assert_eq!(report.outcome, Outcome::Completed);
    let telemetry = kernel.take_telemetry().expect("telemetry enabled");
    let total: u64 = telemetry.locks().iter().map(|l| l.acquisitions).sum();
    assert_eq!(total, spec.total_ops());
    // Runqueue depth saw the thundering herd. The queue never holds all
    // 1,000 at once — main is preempted each quantum and the spawned
    // wave drains before it resumes — but the per-quantum burst still
    // stacks up dispatches that see 100+ ready clients (bucket 8 covers
    // 128..255).
    let deepest = telemetry
        .runqueue_depth
        .buckets()
        .map(|(i, _)| i)
        .max()
        .expect("runqueue depth was sampled");
    assert!(
        deepest >= 8,
        "deepest runqueue bucket {deepest} never reached the herd"
    );
}
