//! End-to-end observability: the same path `ras-trace --format perfetto`
//! takes, driven through the public facade, with the export validated
//! against the Chrome trace-event schema.

use restartable_atomics::ras_obs::{chrome_trace, validate_chrome_trace, ObsEvent};
use restartable_atomics::workloads::{counter_loop, CounterBody, CounterSpec};
use restartable_atomics::{
    run_guest_keeping_kernel, CpuProfile, Mechanism, Observe, Outcome, RunOptions,
};

fn record_counter(mechanism: Mechanism) -> (restartable_atomics::ras_obs::Recording, f64) {
    let spec = CounterSpec {
        iterations: 2_000,
        workers: 2,
        body: CounterBody::LockAndCounter,
    };
    let built = counter_loop(mechanism, &spec);
    let profile = CpuProfile::r3000();
    let mhz = profile.mhz();
    let options = RunOptions {
        observe: Observe::Events,
        ..RunOptions::new(profile)
    };
    let (report, mut kernel) = run_guest_keeping_kernel(&built, &options);
    assert_eq!(report.outcome, Outcome::Completed);
    (kernel.take_recording().expect("events recorded"), mhz)
}

#[test]
fn perfetto_export_validates_against_the_trace_event_schema() {
    let (recording, mhz) = record_counter(Mechanism::RasRegistered);
    let json = chrome_trace(recording.events(), mhz, "ras-registered / counter");
    let summary = validate_chrome_trace(&json).expect("schema-valid trace");
    // Two workers plus main: occupancy slices on several tracks, and at
    // least the boot/registration instants.
    assert!(summary.tracks >= 3, "tracks = {}", summary.tracks);
    assert!(summary.slices > 0, "no occupancy slices");
    assert!(summary.instants > 0, "no instant events");
    // Metadata and B/E pairs mean more trace events than recorded ones.
    assert!(summary.events > recording.events().len() / 2);
}

#[test]
fn recorded_timeline_reconciles_with_run_statistics() {
    let (recording, _) = record_counter(Mechanism::RasRegistered);
    let metrics = recording.metrics();
    let rollbacks = recording
        .events()
        .iter()
        .filter(|e| matches!(e.event, ObsEvent::Rollback { .. }))
        .count() as u64;
    assert_eq!(metrics.rollbacks, rollbacks);
    assert!(matches!(
        recording.events().first().map(|e| &e.event),
        Some(ObsEvent::Boot { .. })
    ));
    let mut last = 0;
    for e in recording.events() {
        assert!(e.clock >= last, "events out of chronological order");
        last = e.clock;
    }
}
