//! The proton-64 workload: a producer and a consumer coordinating through
//! a 64-byte bounded buffer with a mutex and two condition variables —
//! the application where the paper measured its largest win (~50%,
//! Table 3), because the tiny buffer forces constant synchronization.
//!
//! Run with: `cargo run --example producer_consumer`

use restartable_atomics::workloads::{proton64, Proton64Spec};
use restartable_atomics::{run_guest_keeping_kernel, Mechanism, RunOptions};

fn main() {
    let spec = Proton64Spec { items: 20_000 };
    println!(
        "transferring {} words through a 16-word buffer\n",
        spec.items
    );

    let mut results = Vec::new();
    for mechanism in [Mechanism::KernelEmulation, Mechanism::RasRegistered] {
        let built = proton64(mechanism, &spec);
        let (report, kernel) = run_guest_keeping_kernel(&built, &RunOptions::default());
        let checksum = kernel
            .read_word(built.data.symbol("checksum").expect("symbol"))
            .expect("aligned");
        assert_eq!(
            checksum,
            spec.expected_checksum(),
            "data corrupted in transit"
        );
        println!("{mechanism}:");
        println!(
            "  elapsed        : {:.3} ms (simulated)",
            report.micros / 1000.0
        );
        println!("  emulation traps: {}", report.stats.emulation_traps);
        println!("  restarts       : {}", report.stats.ras_restarts);
        println!(
            "  blocks/wakeups : {}/{}",
            report.stats.blocks, report.stats.wakeups
        );
        println!("  checksum       : {checksum:#010x} (verified)\n");
        results.push(report.micros);
    }
    println!(
        "restartable atomic sequences are {:.2}x faster on this workload",
        results[0] / results[1]
    );
}
