//! Restartable sequences under demand paging (§4.2's event zoo).
//!
//! Page faults are the second way a thread gets suspended mid-sequence.
//! This example turns on the paging layer with a tiny residency budget
//! while running the parthenon workload, whose work queue spans several
//! pages — so guest threads keep faulting, including inside their
//! restartable atomic sequences. Every such fault rolls the sequence
//! back, and all the counters still come out exact.
//!
//! Run with: `cargo run --example paging_pressure`

use restartable_atomics::workloads::{parthenon, ParthenonSpec};
use restartable_atomics::{run_guest_keeping_kernel, Mechanism, PagingConfig, RunOptions};

fn main() {
    let spec = ParthenonSpec {
        workers: 4,
        clauses: 400,
        work_iters: 20,
    };
    let options = RunOptions {
        quantum: 5_000,
        paging: Some(PagingConfig {
            page_bytes: 1024,
            max_resident: 4,
        }),
        ..RunOptions::default()
    };

    for mechanism in [Mechanism::RasInline, Mechanism::RasRegistered] {
        let built = parthenon(mechanism, &spec);
        let (report, kernel) = run_guest_keeping_kernel(&built, &options);
        let read = |name: &str| kernel.read_word(built.data.symbol(name).unwrap()).unwrap();
        println!("{mechanism}:");
        println!("  page faults : {}", report.stats.page_faults);
        println!("  evictions   : {}", report.stats.page_evictions);
        println!("  restarts    : {}", report.stats.ras_restarts);
        println!("  resolved    : {} / {}", read("resolved"), spec.clauses);
        println!(
            "  sum         : {} (expected {})",
            read("sum"),
            spec.expected_sum()
        );
        assert_eq!(read("resolved"), spec.clauses);
        assert_eq!(read("sum"), spec.expected_sum());
        assert!(report.stats.page_faults > 10, "paging should be active");
        println!();
    }
    println!("page faults restart sequences exactly like preemptions do.");
}
