//! Demonstrate that the race is real — and that recovery repairs it.
//!
//! Runs the same multi-worker fetch-and-add workload three ways:
//!
//! 1. naive sequences on a kernel with **no** recovery strategy — lost
//!    updates under a hostile (tiny, jittered) preemption quantum;
//! 2. the same sequences recognized as **designated restartable atomic
//!    sequences** — exact count, with the kernel rolling suspended
//!    threads back;
//! 3. **user-level restart** (§4.1) — the kernel redirects resumed
//!    threads through a guest recovery routine that does its own rollback.
//!
//! Run with: `cargo run --example preemption_storm`

use restartable_atomics::workloads::{counter_loop, CounterSpec};
use restartable_atomics::{run_guest_keeping_kernel, Mechanism, RunOptions, StrategyKind};

fn main() {
    let spec = CounterSpec {
        iterations: 2_000,
        workers: 4,
        ..Default::default()
    };
    let expected = spec.expected_count();
    let options = RunOptions {
        quantum: 19,
        jitter: 7,
        seed: 7,
        ..RunOptions::default()
    };

    // 1. The naked race: build the designated-sequence binary but run it
    //    on a kernel that does not recognize sequences.
    let mut naked = counter_loop(Mechanism::RasInline, &spec);
    naked.strategy = StrategyKind::None;
    let (_, kernel) = run_guest_keeping_kernel(&naked, &options);
    let counter = kernel
        .read_word(naked.data.symbol("counter").unwrap())
        .unwrap();
    println!(
        "no recovery      : counter = {counter:>6} / {expected}  ({} updates LOST)",
        expected - counter
    );
    assert!(counter < expected, "the storm should have broken the race");

    // 2. In-kernel recovery: designated sequences.
    let designated = counter_loop(Mechanism::RasInline, &spec);
    let (report, kernel) = run_guest_keeping_kernel(&designated, &options);
    let counter = kernel
        .read_word(designated.data.symbol("counter").unwrap())
        .unwrap();
    println!(
        "designated seqs  : counter = {counter:>6} / {expected}  ({} restarts, {} false alarms)",
        report.stats.ras_restarts, report.stats.designated_false_alarms
    );
    assert_eq!(counter, expected);

    // 3. User-level recovery.
    let user = counter_loop(Mechanism::UserLevelRestart, &spec);
    let (report, kernel) = run_guest_keeping_kernel(&user, &options);
    let counter = kernel
        .read_word(user.data.symbol("counter").unwrap())
        .unwrap();
    println!(
        "user-level       : counter = {counter:>6} / {expected}  ({} redirects through __recovery)",
        report.stats.user_restart_redirects
    );
    assert_eq!(counter, expected);

    println!("\nsame code, same storm — recovery is what makes the optimism safe.");
}
