//! Quickstart: run the paper's core idea end to end.
//!
//! Three guest threads increment a shared counter inside a Test-And-Set
//! critical section implemented as an inlined restartable atomic sequence
//! (Figure 5 of the paper). The kernel preempts aggressively; any thread
//! suspended inside the sequence is rolled back to its start, so the
//! counter comes out exact.
//!
//! Run with: `cargo run --example quickstart`

use restartable_atomics::workloads::{counter_loop, CounterSpec};
use restartable_atomics::{run_guest_keeping_kernel, Mechanism, RunOptions};

fn main() {
    let spec = CounterSpec {
        iterations: 10_000,
        workers: 3,
        ..Default::default()
    };
    let built = counter_loop(Mechanism::RasInline, &spec);

    // Preempt every ~200 cycles — thousands of times more often than a
    // real 100 Hz timer — to make restarts visible.
    let options = RunOptions {
        quantum: 200,
        jitter: 13,
        seed: 42,
        ..RunOptions::default()
    };

    let (report, kernel) = run_guest_keeping_kernel(&built, &options);
    let counter = kernel
        .read_word(built.data.symbol("counter").expect("symbol"))
        .expect("aligned read");

    println!("mechanism        : {}", built.mechanism);
    println!(
        "counter          : {counter} (expected {})",
        spec.expected_count()
    );
    println!("simulated time   : {:.3} ms", report.micros / 1000.0);
    println!("cycles           : {}", report.cycles);
    println!("preemptions      : {}", report.stats.preemptions);
    println!("sequence restarts: {}", report.stats.ras_restarts);
    println!(
        "stage-1 probes   : {} ({} false alarms)",
        report.stats.designated_stage1_hits, report.stats.designated_false_alarms
    );
    assert_eq!(counter, spec.expected_count(), "atomicity violated!");
    println!("\nevery increment survived every preemption — optimism pays.");
}
