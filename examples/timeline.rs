//! Watch the kernel work: a timestamped event timeline of dispatches,
//! preemptions, and sequence restarts.
//!
//! Runs a short two-worker fetch-and-add workload under a hostile quantum
//! with the kernel's event timeline enabled, then prints the first
//! restart episode: the preemption that landed inside a designated
//! sequence and the rollback that repaired it.
//!
//! Run with: `cargo run --example timeline`

use ras_kernel::Event;
use restartable_atomics::workloads::{counter_loop, CounterSpec};
use restartable_atomics::{Mechanism, Outcome};

fn main() {
    let spec = CounterSpec {
        iterations: 300,
        workers: 2,
        ..Default::default()
    };
    let built = counter_loop(Mechanism::RasInline, &spec);
    let mut config = built.kernel_config(restartable_atomics::CpuProfile::r3000());
    config.quantum = 29;
    config.jitter = 5;
    config.seed = 3;
    config.mem_bytes = 1 << 20;
    config.stack_bytes = 4096;
    let mut kernel = built.boot(config).unwrap();
    kernel.enable_timeline();
    assert_eq!(kernel.run(u64::MAX), Outcome::Completed);

    // Find the first restart and show the surrounding window.
    let events = kernel.timeline();
    let at = events
        .iter()
        .position(|e| matches!(e.event, Event::Restart { .. }))
        .expect("quantum 29 forces restarts");
    let lo = at.saturating_sub(6);
    println!("events {lo}..{} of {} total:\n", at + 3, events.len());
    for e in &events[lo..(at + 3).min(events.len())] {
        let what = match e.event {
            Event::Boot { threads } => format!("boot      {threads} thread(s)"),
            Event::Spawn { thread } => format!("spawn     {thread}"),
            Event::Dispatch { thread } => format!("dispatch  {thread}"),
            Event::Preempt { thread } => format!("preempt   {thread}"),
            Event::Yield { thread } => format!("yield     {thread}"),
            Event::Block { thread } => format!("block     {thread}"),
            Event::Wake { thread } => format!("wake      {thread}"),
            Event::Sleep { thread, until } => format!("sleep     {thread} until {until}"),
            Event::Exit { thread } => format!("exit      {thread}"),
            Event::Restart { thread, from, to } => {
                format!("RESTART   {thread}: pc @{from} rolled back to @{to}")
            }
            Event::RseqAbort {
                thread,
                from,
                abort_ip,
            } => format!("RSEQ-ABRT {thread}: pc @{from} redirected to @{abort_ip}"),
            Event::UserRedirect { thread } => format!("redirect  {thread}"),
            Event::PageFault { thread, addr } => format!("pagefault {thread} @{addr:#x}"),
            Event::EmulatedTas { thread, addr } => format!("emul-tas  {thread} @{addr:#x}"),
        };
        println!("  [{:>8} cyc] {what}", e.clock);
    }
    println!(
        "\ntotals: {} preemptions, {} restarts, counter = {}",
        kernel.stats().preemptions,
        kernel.stats().ras_restarts,
        kernel
            .read_word(built.data.symbol("counter").unwrap())
            .unwrap()
    );
}
