//! Write a guest program as assembly text and run it.
//!
//! The program below is handwritten in the textual syntax `parse_asm`
//! accepts (the same one the disassembler prints). Two threads increment
//! a counter 5,000 times each through a designated fetch-and-add sequence
//! (`lw; addi; landmark; sw`); the kernel's two-stage matcher recognizes
//! and restarts it, so the final count is exact even under a hostile
//! quantum.
//!
//! Run with: `cargo run --example handwritten_asm`

use ras_isa::{parse_asm, DataLayout};
use restartable_atomics::CpuProfile;
use restartable_atomics::{Kernel, KernelConfig, Outcome, StrategyKind};

const PROGRAM: &str = r#"
    # Two workers hammer a counter with designated fetch-and-add.
    # ABI: syscall number in $v0; spawn: a0=entry, a1=arg; join: a0=tid.
    .entry main

    worker:                      # a0 = iterations
        or    $s0, $a0, $zero
    loop:
        li    $a1, 0             # &counter (data address 0)
        lw    $v0, ($a1)         # ── designated faa sequence
        addi  $v0, $v0, 1        #
        landmark                 #
        sw    $v0, ($a1)         # ── commits atomically or restarts
        addi  $s0, $s0, -1
        bne   $s0, $zero, loop
        li    $v0, 0             # SYS_EXIT
        syscall

    main:
        li    $v0, 2             # SYS_SPAWN worker #1
        li    $a0, worker
        li    $a1, 5000
        syscall
        or    $s1, $v0, $zero
        li    $v0, 2             # SYS_SPAWN worker #2
        li    $a0, worker
        li    $a1, 5000
        syscall
        or    $s2, $v0, $zero
        li    $v0, 9             # SYS_JOIN
        or    $a0, $s1, $zero
        syscall
        li    $v0, 9
        or    $a0, $s2, $zero
        syscall
        li    $v0, 0             # SYS_EXIT
        syscall
"#;

fn main() {
    let program = parse_asm(PROGRAM).expect("valid assembly");
    println!(
        "parsed {} instructions; entry = @{}",
        program.len(),
        program.entry()
    );

    let mut data = DataLayout::new();
    data.word("counter", 0);

    let mut config = KernelConfig::new(CpuProfile::r3000(), StrategyKind::Designated);
    config.quantum = 47;
    config.jitter = 9;
    config.seed = 2024;
    config.mem_bytes = 1 << 20;
    config.stack_bytes = 4096;
    let mut kernel = Kernel::boot(config, program, &data.finish()).expect("boots");
    let outcome = kernel.run(u64::MAX);
    assert_eq!(outcome, Outcome::Completed);

    let counter = kernel.read_word(0).unwrap();
    println!("counter   : {counter} (expected 10000)");
    println!("restarts  : {}", kernel.stats().ras_restarts);
    println!("preempts  : {}", kernel.stats().preemptions);
    assert_eq!(counter, 10_000);
    println!("\nhandwritten assembly, machine-checked atomicity.");
}
