//! The §3.1 binary-compatibility story.
//!
//! A Mach 3.0 binary built with an explicitly registered restartable
//! atomic sequence may land on a kernel that does not support
//! registration. Registration fails, and "in response to the failure, the
//! thread management system overwrites the restartable atomic sequence
//! with code that uses a conventional mechanism" — here, kernel-emulated
//! Test-And-Set. The program keeps working, just slower.
//!
//! Run with: `cargo run --example portability_fallback`

use restartable_atomics::workloads::{counter_loop, CounterSpec};
use restartable_atomics::{run_guest_keeping_kernel, Mechanism, RunOptions, StrategyKind};

fn main() {
    let spec = CounterSpec {
        iterations: 5_000,
        workers: 2,
        ..Default::default()
    };
    let expected = spec.expected_count();

    // On a kernel WITH registration support: fast path.
    let built = counter_loop(Mechanism::RasRegistered, &spec);
    let seq = built
        .registered_seq
        .expect("registered binary has a window");
    println!(
        "binary carries a registered sequence at @{}..@{}",
        seq.start,
        seq.end()
    );
    let (fast, kernel) = run_guest_keeping_kernel(&built, &RunOptions::default());
    let result_addr = built.data.symbol("__ras_register_result").unwrap();
    println!(
        "modern kernel  : registration result = {} (0 = ok), {:.0} µs, {} emulation traps",
        kernel.read_word(result_addr).unwrap() as i32,
        fast.micros,
        fast.stats.emulation_traps
    );

    // On an old kernel WITHOUT support: the loader applies the overwrite.
    let mut fallback = counter_loop(Mechanism::RasRegistered, &spec);
    fallback.apply_emulation_fallback();
    assert_eq!(fallback.strategy, StrategyKind::None);
    let (slow, kernel) = run_guest_keeping_kernel(&fallback, &RunOptions::default());
    let counter = kernel
        .read_word(fallback.data.symbol("counter").unwrap())
        .unwrap();
    println!(
        "legacy kernel  : sequence overwritten -> {} emulation traps, {:.0} µs",
        slow.stats.emulation_traps, slow.micros
    );
    assert_eq!(counter, expected, "fallback must stay correct");
    assert!(slow.stats.emulation_traps as u32 >= expected);

    println!(
        "\nsame binary, both kernels, correct on both — at a {:.1}x cost on the old one.",
        slow.micros / fast.micros
    );
}
