//! Lock-free programming without hardware atomics.
//!
//! §4.1 of the paper points out that restartable sequences generalize
//! past Test-And-Set — rich enough "to satisfy the atomicity constraints
//! of any instruction sequence, such as those that manipulate wait-free
//! data structures [Herlihy 91]". This example runs a Treiber stack whose
//! push, pop, and statistics updates are all designated compare-and-swap
//! or fetch-and-add sequences: four threads hammer it under aggressive
//! preemption and every node is conserved.
//!
//! Run with: `cargo run --example lock_free_stack`

use restartable_atomics::workloads::{treiber_stack, StackSpec};
use restartable_atomics::{run_guest_keeping_kernel, Mechanism, RunOptions};

fn main() {
    let spec = StackSpec {
        workers: 4,
        nodes_per_worker: 2_000,
    };
    let built = treiber_stack(Mechanism::RasInline, &spec);
    let options = RunOptions {
        quantum: 300,
        jitter: 11,
        seed: 99,
        ..RunOptions::default()
    };

    let (report, kernel) = run_guest_keeping_kernel(&built, &options);
    let read = |s: &str| kernel.read_word(built.data.symbol(s).unwrap()).unwrap();
    println!(
        "nodes pushed+popped : {} / {}",
        read("popped_total"),
        spec.total_nodes()
    );
    println!(
        "value checksum      : {} (expected {})",
        read("popped_sum"),
        spec.expected_sum()
    );
    println!("stack head at end   : {} (0 = drained)", read("head"));
    println!("CAS restarts        : {}", report.stats.ras_restarts);
    println!("preemptions         : {}", report.stats.preemptions);
    println!("simulated time      : {:.3} ms", report.micros / 1000.0);
    assert_eq!(read("popped_total"), spec.total_nodes());
    assert_eq!(read("popped_sum"), spec.expected_sum());
    println!("\na lock-free stack, on a CPU with no atomic instructions at all.");
}
