//! Compare every mutual-exclusion mechanism on the same workload.
//!
//! Reproduces the spirit of Tables 1 and 4: the paper's microbenchmark
//! (Test-And-Set lock, counter increment, clear) under all eight
//! mechanisms, on the profile that supports each. Prints µs per
//! operation, restart counts, and the pessimistic/optimistic split.
//!
//! Run with: `cargo run --example mechanism_shootout`

use restartable_atomics::report::AsciiTable;
use restartable_atomics::workloads::{counter_loop, CounterSpec};
use restartable_atomics::{run_guest, CpuProfile, Mechanism, RunOptions};

fn main() {
    let spec = CounterSpec {
        iterations: 20_000,
        workers: 1,
        ..Default::default()
    };
    let mut table = AsciiTable::new(
        "Microbenchmark: enter CS + increment + leave (single thread)",
        &["Mechanism", "CPU", "µs/op", "Style"],
    );
    for mechanism in Mechanism::all() {
        let profile = if mechanism.supported_by(&CpuProfile::r3000()) {
            CpuProfile::r3000()
        } else {
            CpuProfile::i860()
        };
        let options = RunOptions::new(profile.clone());
        let built = counter_loop(mechanism, &spec);
        let report = run_guest(&built, &options);
        table.row(vec![
            mechanism.label().to_owned(),
            profile.name().to_owned(),
            format!("{:.2}", report.micros / f64::from(spec.iterations)),
            if mechanism.is_optimistic() {
                "optimistic".to_owned()
            } else {
                "pessimistic".to_owned()
            },
        ]);
    }
    println!("{table}");
    println!("Lower is better. The optimistic mechanisms pay nothing on the");
    println!("fast path and recover only when a suspension actually lands");
    println!("inside a sequence — which, at realistic quanta, is almost never.");
}
