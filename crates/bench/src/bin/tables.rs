//! Regenerates every table in the paper at full scale and prints them in
//! EXPERIMENTS.md-ready form.
//!
//! Run with: `cargo run --release -p ras-bench --bin tables`

fn main() {
    let figures = std::env::args().any(|a| a == "--figures");
    let verify = std::env::args().any(|a| a == "--verify");
    if verify {
        let v = ras_core::experiments::verify_reproduction(
            &ras_core::experiments::VerifyScale::default(),
        );
        println!("{v}");
        std::process::exit(if v.all_hold() { 0 } else { 1 });
    }
    println!("Reproduction of Bershad, Redell & Ellis, \"Fast Mutual Exclusion");
    println!("for Uniprocessors\" (ASPLOS 1992) — all evaluation tables.\n");
    println!("{}", ras_core::experiments::render_all());
    if figures {
        println!();
        println!("{}", ras_core::experiments::figures::render_figures());
    }
    println!("Paper values appear beside or beneath each measurement; see");
    println!("EXPERIMENTS.md for the per-row comparison and discussion.");
}
