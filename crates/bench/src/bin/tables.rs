//! Regenerates every table in the paper at full scale and prints them in
//! EXPERIMENTS.md-ready form.
//!
//! Run with: `cargo run --release -p ras-bench --bin tables`
//!
//! `--verify` checks the paper's claims and exits nonzero on failure;
//! `--metrics` prints the observability layer's rollback table (quantum
//! expiries, preemptions inside sequences, rollbacks and wasted cycles
//! per mechanism on a contended realistic workload) followed by the
//! recovery head-to-head (RAS restart vs rseq abort vs kernel
//! emulation on one workload);
//! `--bench-json` measures the harness itself (host wall time per table,
//! interpreter throughput fast vs instrumented, explorer schedule rate,
//! end-to-end verify time) and appends the next `BENCH_<n>.json` to the
//! benchmark trajectory, exiting nonzero if the fast paths drifted from
//! the instrumented reference in any simulated result.

fn main() {
    let figures = std::env::args().any(|a| a == "--figures");
    let verify = std::env::args().any(|a| a == "--verify");
    let bench_json = std::env::args().any(|a| a == "--bench-json");
    let metrics = std::env::args().any(|a| a == "--metrics");
    if metrics {
        let rows =
            ras_core::experiments::rollback_table(&ras_core::experiments::RollbackScale::default());
        println!("{}", ras_core::experiments::render_rollback_table(&rows));
        let rows =
            ras_core::experiments::head_to_head(&ras_core::experiments::HeadToHeadScale::default());
        println!("{}", ras_core::experiments::render_head_to_head(&rows));
        std::process::exit(0);
    }
    if bench_json {
        match ras_bench::trajectory::measure() {
            Ok(point) => {
                let dir = std::env::current_dir().expect("cwd");
                let index = ras_bench::trajectory::next_index(&dir);
                let path = dir.join(format!("BENCH_{index}.json"));
                let json = point.to_json(index);
                std::fs::write(&path, &json).expect("write trajectory point");
                print!("{json}");
                eprintln!(
                    "wrote {} (verify {:.0} ms, {:.2}x vs baseline; {:.1}M simulated instructions/s fast; \
                     lock-server {:.0} ops/s at {:.3}x telemetry overhead)",
                    path.display(),
                    point.verify_wall_ms,
                    point.verify_speedup(),
                    point.fast_ips() / 1e6,
                    point.lock_server_ops_per_second(),
                    point.telemetry_overhead_ratio(),
                );
                std::process::exit(0);
            }
            Err(drift) => {
                eprintln!("benchmark drift: {drift}");
                std::process::exit(1);
            }
        }
    }
    if verify {
        let v = ras_core::experiments::verify_reproduction(
            &ras_core::experiments::VerifyScale::default(),
        );
        println!("{v}");
        std::process::exit(if v.all_hold() { 0 } else { 1 });
    }
    println!("Reproduction of Bershad, Redell & Ellis, \"Fast Mutual Exclusion");
    println!("for Uniprocessors\" (ASPLOS 1992) — all evaluation tables.\n");
    println!("{}", ras_core::experiments::render_all());
    if figures {
        println!();
        println!("{}", ras_core::experiments::figures::render_figures());
    }
    println!("Paper values appear beside or beneath each measurement; see");
    println!("EXPERIMENTS.md for the per-row comparison and discussion.");
}
