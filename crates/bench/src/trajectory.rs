//! The persisted benchmark trajectory: one `BENCH_<n>.json` per
//! measurement pass, recording the harness's own (host) performance
//! alongside the simulated results it produced — so the repository
//! carries a history of how fast the reproduction runs, not just what
//! it reproduces.
//!
//! A pass measures three layers and asserts, for each, that the fast
//! path changed *nothing* about the simulation:
//!
//! * **interpreter** — one fixed workload executed twice, on the fast
//!   loop and on the forced-instrumented loop; simulated cycles and
//!   retired-instruction counts must be identical, and both host wall
//!   times (and derived simulated-MIPS rates) are recorded;
//! * **tables** — host wall time of each of Tables 1–4 at bench scale;
//! * **explorer** — a full model-check matrix, recording schedules
//!   explored per second of host time;
//! * **rseq** — the recovery head-to-head under a hostile quantum,
//!   recording rseq aborts per hundred quanta beside the RAS rollback
//!   rate; each strategy must recover only by its own means;
//! * **verification** — the end-to-end `--verify` pass, whose 21 claims
//!   must all hold, compared against the recorded pre-optimization
//!   baseline wall time.
//!
//! Any drift — a claim failing, or the fast and instrumented loops
//! disagreeing on a single cycle or instruction — is an [`Err`], which
//! the `tables --bench-json` entry point turns into a nonzero exit.

use std::fmt::Write as _;
use std::time::Instant;

use ras_core::experiments::{
    head_to_head, table1, table2, table3, table4, verify_reproduction, HeadToHeadScale, VerifyScale,
};
use ras_core::{run_guest, run_guest_keeping_kernel, RunOptions};
use ras_guest::workloads::{
    counter_loop, lock_addresses, lock_server, Arrival, CounterBody, CounterSpec, LockServerSpec,
};
use ras_guest::Mechanism;
use ras_isa::Opcode;
use ras_machine::{CpuProfile, EngineKind};

/// Wall time of the `--verify` pass before the predecoded interpreter
/// and the move-on-last-branch explorer landed, measured on the same
/// class of host the trajectory runs on (milliseconds). Kept fixed so
/// every later `BENCH_<n>.json` reports its speedup against the same
/// reference point.
pub const BASELINE_VERIFY_WALL_MS: f64 = 970.0;

/// Explorer throughput of the pre-checkpoint-engine pass (`BENCH_1`):
/// schedules explored per second of host time with clone-per-branch
/// snapshots and full-scan state hashing. The drift gate refuses to
/// record a trajectory point whose explorer is slower than this — the
/// checkpoint engine must never regress below the baseline it replaced.
pub const BASELINE_EXPLORER_SCHEDULES_PER_SECOND: f64 = 83_278.0;

/// Fast-loop throughput of the pre-translation pass (`BENCH_4`):
/// simulated instructions per second of host time on the predecoded
/// interpreter's fast loop. The translation tier's drift gate refuses to
/// record a trajectory point whose translated engine is not at least
/// [`TRANSLATION_SPEEDUP_GATE`] times this — threaded-code compilation
/// must clear a real bar over the dispatch loop it bypasses, on the same
/// benchmark program.
pub const BASELINE_FAST_LOOP_IPS: f64 = 340_891_070.0;

/// Minimum acceptable `translated instructions/s ÷`
/// [`BASELINE_FAST_LOOP_IPS`] ratio.
pub const TRANSLATION_SPEEDUP_GATE: f64 = 2.0;

/// Maximum acceptable `telemetry-enabled wall ÷ telemetry-disabled
/// wall` on the lock-server bench: streaming telemetry must stay within
/// 15% of the uninstrumented run to be cheap enough for production use.
/// The trajectory refuses to record a point over this ratio.
pub const TELEMETRY_OVERHEAD_GATE: f64 = 1.15;

/// Lock-server throughput of the pre-scheduler-refactor pass
/// (`BENCH_6`): telemetry-enabled client operations per second on the
/// 64-client config, measured with the interpreter engine and the
/// O(threads)/O(addresses) scheduler structures. The O(1) intrusive
/// scheduler plus the translated telemetry tier must beat this by
/// [`LOCK_SERVER_SPEEDUP_GATE`] for a point to be recorded.
pub const BASELINE_LOCK_SERVER_OPS_PER_SECOND: f64 = 520_971.0;

/// Minimum acceptable `lock-server ops/s ÷`
/// [`BASELINE_LOCK_SERVER_OPS_PER_SECOND`] ratio.
pub const LOCK_SERVER_SPEEDUP_GATE: f64 = 1.3;

/// Drift floor for the 10,000-client lock-server config, telemetry
/// enabled — absolute because the config is new in `BENCH_7` (measured
/// ~1.2M ops/s; the floor leaves room for slower hosts, not for
/// accidentally quadratic scheduler or telemetry work, which costs an
/// order of magnitude at this thread count).
pub const LOCK_SERVER_10K_OPS_GATE: f64 = 600_000.0;

/// One measured trajectory point, ready to serialize.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    /// Host wall time per table at bench scale, milliseconds.
    pub table_wall_ms: [f64; 4],
    /// Simulated cycles of the interpreter workload (identical on both
    /// loop variants by assertion).
    pub simulated_cycles: u64,
    /// Instructions retired by the interpreter workload.
    pub instructions_retired: u64,
    /// Host wall time of the workload on the fast loop, milliseconds.
    pub fast_wall_ms: f64,
    /// Host wall time on the forced-instrumented loop, milliseconds.
    pub instrumented_wall_ms: f64,
    /// Host wall time of the same workload on the translated engine,
    /// milliseconds (identical simulated results by assertion).
    pub translated_wall_ms: f64,
    /// Per-opcode retirement counts of the benchmark program, indexed by
    /// [`Opcode`]'s dense code — what makes instr/s numbers comparable
    /// across `BENCH_<n>` files when the workload changes.
    pub opcode_mix: [u64; Opcode::COUNT],
    /// Trace heads the translation tier compiled during the workload.
    pub translation_blocks_compiled: u64,
    /// Compiled-trace entries from the translated run.
    pub translation_block_entries: u64,
    /// Deoptimizations back to the interpreter during the translated run.
    pub translation_deopts: u64,
    /// Instructions the translated run retired inside compiled traces.
    pub translation_translated_instructions: u64,
    /// Instructions the translated run retired on the interpreter
    /// fallback (cold code, deopt tails, end-of-slice fitting).
    pub translation_interpreted_instructions: u64,
    /// Schedules the model checker explored.
    pub explorer_schedules: u64,
    /// Host wall time of the full model-check matrix, milliseconds.
    pub explorer_wall_ms: f64,
    /// Branch snapshots the explorer took (undo-log checkpoints).
    pub explorer_checkpoints: u64,
    /// Undo-log entries the explorer's restores replayed.
    pub explorer_undo_replayed: u64,
    /// Bytes the explorer copied into branch snapshots.
    pub explorer_snapshot_bytes: u64,
    /// On-path states the explorer's hash set deduplicated.
    pub explorer_states_deduped: u64,
    /// Host wall time of the full verification pass, milliseconds.
    pub verify_wall_ms: f64,
    /// Number of claims the verification checked.
    pub verify_claims: usize,
    /// Bundled workload programs the static analyzer swept.
    pub analyze_targets: usize,
    /// Findings (all severities) across the sweep — errors abort the
    /// pass before a point is recorded, so these are warnings at most.
    pub analyze_findings: usize,
    /// Host wall time of the full static-analysis sweep (every pass of
    /// `ras-analyze` plus sequence inference per target), milliseconds.
    pub analyze_wall_ms: f64,
    /// RAS rollbacks in the head-to-head recovery pass.
    pub ras_rollbacks: u64,
    /// Quantum expiries of the head-to-head RAS run.
    pub ras_quantum_expiries: u64,
    /// rseq abort dispatches in the head-to-head recovery pass.
    pub rseq_aborts: u64,
    /// Quantum expiries of the head-to-head rseq run.
    pub rseq_quantum_expiries: u64,
    /// Host wall time of the head-to-head recovery pass, milliseconds.
    pub headtohead_wall_ms: f64,
    /// Clients in the lock-server telemetry bench.
    pub lock_server_clients: u64,
    /// Locks in the lock-server telemetry bench.
    pub lock_server_locks: u64,
    /// Total client operations of the lock-server bench (every one
    /// accounted for by an acquisition, by assertion).
    pub lock_server_total_ops: u64,
    /// Lock acquisitions the streaming telemetry counted.
    pub lock_server_acquisitions: u64,
    /// Contended probes the streaming telemetry counted.
    pub lock_server_contended_probes: u64,
    /// Best interleaved wall time with telemetry disabled, milliseconds.
    pub lock_server_disabled_wall_ms: f64,
    /// Best interleaved wall time with telemetry enabled, milliseconds.
    pub lock_server_enabled_wall_ms: f64,
    /// Clients in the 10k-client lock-server scalability config.
    pub lock_server_10k_clients: u64,
    /// Locks in the 10k-client config.
    pub lock_server_10k_locks: u64,
    /// Total client operations of the 10k-client config.
    pub lock_server_10k_total_ops: u64,
    /// Acquisitions the streaming telemetry counted at 10k clients.
    pub lock_server_10k_acquisitions: u64,
    /// Best telemetry-enabled wall time of the 10k-client config,
    /// milliseconds (spawn through join of all 10,000 threads).
    pub lock_server_10k_wall_ms: f64,
}

impl TrajectoryPoint {
    /// Simulated instructions per second of host time on the fast loop.
    pub fn fast_ips(&self) -> f64 {
        rate(self.instructions_retired, self.fast_wall_ms)
    }

    /// Simulated instructions per second on the instrumented loop.
    pub fn instrumented_ips(&self) -> f64 {
        rate(self.instructions_retired, self.instrumented_wall_ms)
    }

    /// Simulated instructions per second on the translated engine.
    pub fn translated_ips(&self) -> f64 {
        rate(self.instructions_retired, self.translated_wall_ms)
    }

    /// Translated-engine speedup against [`BASELINE_FAST_LOOP_IPS`].
    pub fn translated_speedup(&self) -> f64 {
        self.translated_ips() / BASELINE_FAST_LOOP_IPS
    }

    /// Explorer schedules per second of host time.
    pub fn schedules_per_second(&self) -> f64 {
        rate(self.explorer_schedules, self.explorer_wall_ms)
    }

    /// Static-analysis targets swept per second of host time.
    pub fn analyze_targets_per_second(&self) -> f64 {
        rate(self.analyze_targets as u64, self.analyze_wall_ms)
    }

    /// Verify-pass speedup against [`BASELINE_VERIFY_WALL_MS`].
    pub fn verify_speedup(&self) -> f64 {
        BASELINE_VERIFY_WALL_MS / self.verify_wall_ms.max(1e-9)
    }

    /// Explorer-throughput speedup against
    /// [`BASELINE_EXPLORER_SCHEDULES_PER_SECOND`].
    pub fn explorer_speedup(&self) -> f64 {
        self.schedules_per_second() / BASELINE_EXPLORER_SCHEDULES_PER_SECOND
    }

    /// RAS rollbacks per hundred quantum expiries in the head-to-head
    /// pass.
    pub fn ras_rollbacks_per_100_quanta(&self) -> f64 {
        per_100(self.ras_rollbacks, self.ras_quantum_expiries)
    }

    /// rseq abort dispatches per hundred quantum expiries in the
    /// head-to-head pass — the rate to read against
    /// [`TrajectoryPoint::ras_rollbacks_per_100_quanta`].
    pub fn rseq_aborts_per_100_quanta(&self) -> f64 {
        per_100(self.rseq_aborts, self.rseq_quantum_expiries)
    }

    /// Client operations per second of host wall time on the
    /// telemetry-enabled lock-server bench.
    pub fn lock_server_ops_per_second(&self) -> f64 {
        rate(self.lock_server_total_ops, self.lock_server_enabled_wall_ms)
    }

    /// Telemetry-enabled over telemetry-disabled wall time on the
    /// lock-server bench — the rate to read against
    /// [`TELEMETRY_OVERHEAD_GATE`].
    pub fn telemetry_overhead_ratio(&self) -> f64 {
        self.lock_server_enabled_wall_ms / self.lock_server_disabled_wall_ms.max(1e-9)
    }

    /// Lock-server speedup against
    /// [`BASELINE_LOCK_SERVER_OPS_PER_SECOND`] — the rate to read
    /// against [`LOCK_SERVER_SPEEDUP_GATE`].
    pub fn lock_server_speedup(&self) -> f64 {
        self.lock_server_ops_per_second() / BASELINE_LOCK_SERVER_OPS_PER_SECOND
    }

    /// Client operations per second of host wall time on the
    /// telemetry-enabled 10,000-client config — the rate to read
    /// against [`LOCK_SERVER_10K_OPS_GATE`].
    pub fn lock_server_10k_ops_per_second(&self) -> f64 {
        rate(self.lock_server_10k_total_ops, self.lock_server_10k_wall_ms)
    }

    /// Serializes the point as the `BENCH_<n>.json` document.
    pub fn to_json(&self, index: u32) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "{{");
        let _ = writeln!(s, "  \"schema\": \"ras-bench-trajectory-v1\",");
        let _ = writeln!(s, "  \"index\": {index},");
        let _ = writeln!(s, "  \"tables\": {{");
        let _ = writeln!(s, "    \"table1_wall_ms\": {:.3},", self.table_wall_ms[0]);
        let _ = writeln!(s, "    \"table2_wall_ms\": {:.3},", self.table_wall_ms[1]);
        let _ = writeln!(s, "    \"table3_wall_ms\": {:.3},", self.table_wall_ms[2]);
        let _ = writeln!(s, "    \"table4_wall_ms\": {:.3}", self.table_wall_ms[3]);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"interpreter\": {{");
        let _ = writeln!(s, "    \"simulated_cycles\": {},", self.simulated_cycles);
        let _ = writeln!(
            s,
            "    \"instructions_retired\": {},",
            self.instructions_retired
        );
        let _ = writeln!(s, "    \"fast_wall_ms\": {:.3},", self.fast_wall_ms);
        let _ = writeln!(
            s,
            "    \"instrumented_wall_ms\": {:.3},",
            self.instrumented_wall_ms
        );
        let _ = writeln!(
            s,
            "    \"fast_instructions_per_second\": {:.0},",
            self.fast_ips()
        );
        let _ = writeln!(
            s,
            "    \"instrumented_instructions_per_second\": {:.0},",
            self.instrumented_ips()
        );
        let _ = writeln!(s, "    \"opcode_mix\": {{");
        for (i, op) in Opcode::ALL.iter().enumerate() {
            let sep = if i + 1 < Opcode::COUNT { "," } else { "" };
            let _ = writeln!(s, "      \"{}\": {}{sep}", op.name(), self.opcode_mix[i]);
        }
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"translation\": {{");
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.translated_wall_ms);
        let _ = writeln!(
            s,
            "    \"translated_instructions_per_second\": {:.0},",
            self.translated_ips()
        );
        let _ = writeln!(
            s,
            "    \"baseline_fast_instructions_per_second\": {BASELINE_FAST_LOOP_IPS:.0},"
        );
        let _ = writeln!(
            s,
            "    \"speedup_vs_baseline\": {:.2},",
            self.translated_speedup()
        );
        let _ = writeln!(
            s,
            "    \"blocks_compiled\": {},",
            self.translation_blocks_compiled
        );
        let _ = writeln!(
            s,
            "    \"block_entries\": {},",
            self.translation_block_entries
        );
        let _ = writeln!(s, "    \"deopts\": {},", self.translation_deopts);
        let _ = writeln!(
            s,
            "    \"translated_instructions\": {},",
            self.translation_translated_instructions
        );
        let _ = writeln!(
            s,
            "    \"interpreted_instructions\": {}",
            self.translation_interpreted_instructions
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"explorer\": {{");
        let _ = writeln!(s, "    \"schedules\": {},", self.explorer_schedules);
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.explorer_wall_ms);
        let _ = writeln!(
            s,
            "    \"schedules_per_second\": {:.0},",
            self.schedules_per_second()
        );
        let _ = writeln!(
            s,
            "    \"baseline_schedules_per_second\": {BASELINE_EXPLORER_SCHEDULES_PER_SECOND:.0},"
        );
        let _ = writeln!(
            s,
            "    \"speedup_vs_baseline\": {:.2},",
            self.explorer_speedup()
        );
        let _ = writeln!(s, "    \"checkpoints\": {},", self.explorer_checkpoints);
        let _ = writeln!(
            s,
            "    \"undo_entries_replayed\": {},",
            self.explorer_undo_replayed
        );
        let _ = writeln!(
            s,
            "    \"snapshot_bytes\": {},",
            self.explorer_snapshot_bytes
        );
        let _ = writeln!(
            s,
            "    \"states_deduped\": {}",
            self.explorer_states_deduped
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"static_analysis\": {{");
        let _ = writeln!(s, "    \"targets\": {},", self.analyze_targets);
        let _ = writeln!(s, "    \"findings\": {},", self.analyze_findings);
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.analyze_wall_ms);
        let _ = writeln!(
            s,
            "    \"targets_per_second\": {:.0}",
            self.analyze_targets_per_second()
        );
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"rseq\": {{");
        let _ = writeln!(s, "    \"aborts\": {},", self.rseq_aborts);
        let _ = writeln!(
            s,
            "    \"quantum_expiries\": {},",
            self.rseq_quantum_expiries
        );
        let _ = writeln!(
            s,
            "    \"aborts_per_100_quanta\": {:.3},",
            self.rseq_aborts_per_100_quanta()
        );
        let _ = writeln!(s, "    \"ras_rollbacks\": {},", self.ras_rollbacks);
        let _ = writeln!(
            s,
            "    \"ras_quantum_expiries\": {},",
            self.ras_quantum_expiries
        );
        let _ = writeln!(
            s,
            "    \"ras_rollbacks_per_100_quanta\": {:.3},",
            self.ras_rollbacks_per_100_quanta()
        );
        let _ = writeln!(s, "    \"wall_ms\": {:.3}", self.headtohead_wall_ms);
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"lock_server\": {{");
        let _ = writeln!(s, "    \"clients\": {},", self.lock_server_clients);
        let _ = writeln!(s, "    \"locks\": {},", self.lock_server_locks);
        let _ = writeln!(s, "    \"total_ops\": {},", self.lock_server_total_ops);
        let _ = writeln!(
            s,
            "    \"acquisitions\": {},",
            self.lock_server_acquisitions
        );
        let _ = writeln!(
            s,
            "    \"contended_probes\": {},",
            self.lock_server_contended_probes
        );
        let _ = writeln!(
            s,
            "    \"disabled_wall_ms\": {:.3},",
            self.lock_server_disabled_wall_ms
        );
        let _ = writeln!(
            s,
            "    \"enabled_wall_ms\": {:.3},",
            self.lock_server_enabled_wall_ms
        );
        let _ = writeln!(
            s,
            "    \"ops_per_second\": {:.0},",
            self.lock_server_ops_per_second()
        );
        let _ = writeln!(
            s,
            "    \"baseline_ops_per_second\": {BASELINE_LOCK_SERVER_OPS_PER_SECOND:.0},"
        );
        let _ = writeln!(
            s,
            "    \"speedup_vs_baseline\": {:.2},",
            self.lock_server_speedup()
        );
        let _ = writeln!(
            s,
            "    \"telemetry_overhead_ratio\": {:.3},",
            self.telemetry_overhead_ratio()
        );
        let _ = writeln!(
            s,
            "    \"telemetry_overhead_gate\": {TELEMETRY_OVERHEAD_GATE:.2},"
        );
        let _ = writeln!(s, "    \"clients_10k\": {{");
        let _ = writeln!(s, "      \"clients\": {},", self.lock_server_10k_clients);
        let _ = writeln!(s, "      \"locks\": {},", self.lock_server_10k_locks);
        let _ = writeln!(
            s,
            "      \"total_ops\": {},",
            self.lock_server_10k_total_ops
        );
        let _ = writeln!(
            s,
            "      \"acquisitions\": {},",
            self.lock_server_10k_acquisitions
        );
        let _ = writeln!(
            s,
            "      \"enabled_wall_ms\": {:.3},",
            self.lock_server_10k_wall_ms
        );
        let _ = writeln!(
            s,
            "      \"ops_per_second\": {:.0},",
            self.lock_server_10k_ops_per_second()
        );
        let _ = writeln!(
            s,
            "      \"ops_per_second_gate\": {LOCK_SERVER_10K_OPS_GATE:.0}"
        );
        let _ = writeln!(s, "    }}");
        let _ = writeln!(s, "  }},");
        let _ = writeln!(s, "  \"verify\": {{");
        let _ = writeln!(s, "    \"claims\": {},", self.verify_claims);
        let _ = writeln!(s, "    \"wall_ms\": {:.3},", self.verify_wall_ms);
        let _ = writeln!(s, "    \"baseline_wall_ms\": {BASELINE_VERIFY_WALL_MS:.1},");
        let _ = writeln!(
            s,
            "    \"speedup_vs_baseline\": {:.2}",
            self.verify_speedup()
        );
        let _ = writeln!(s, "  }}");
        let _ = writeln!(s, "}}");
        s
    }
}

fn rate(count: u64, wall_ms: f64) -> f64 {
    count as f64 / (wall_ms.max(1e-9) / 1_000.0)
}

fn per_100(events: u64, quanta: u64) -> f64 {
    if quanta == 0 {
        0.0
    } else {
        events as f64 * 100.0 / quanta as f64
    }
}

fn ms(from: Instant) -> f64 {
    from.elapsed().as_secs_f64() * 1_000.0
}

/// Runs one full measurement pass at bench scale.
///
/// # Errors
///
/// Returns a description of the drift if the fast and instrumented
/// loops disagree on any simulated result, or any verification claim
/// fails — either means the fast path is no longer semantics-preserving
/// and the trajectory point must not be recorded.
pub fn measure() -> Result<TrajectoryPoint, String> {
    // Explorer first, on a pristine heap: the tables and the verifier
    // allocate and free hundreds of kernels, and running the explorer
    // after them costs it a measurable constant (allocator arenas and
    // caches polluted by unrelated phases) that the standalone
    // `ras-check` binary never pays. Each phase times only its own
    // work, so phase order is otherwise free to choose.
    let t = Instant::now();
    let mc = ras_model::model_check(&ras_model::CheckConfig::default());
    let explorer_wall_ms = ms(t);
    if !mc.ok() {
        return Err("model-check matrix no longer verifies".to_owned());
    }
    let explorer_rate = rate(mc.total_schedules(), explorer_wall_ms);
    if explorer_rate < BASELINE_EXPLORER_SCHEDULES_PER_SECOND {
        return Err(format!(
            "explorer drifted below the pre-checkpoint baseline: \
             {explorer_rate:.0} schedules/s vs {BASELINE_EXPLORER_SCHEDULES_PER_SECOND:.0}"
        ));
    }

    // Interpreter: a single-worker counter loop, long enough to time.
    let spec = CounterSpec {
        iterations: 200_000,
        workers: 1,
        body: CounterBody::LockAndCounter,
    };
    let built = counter_loop(Mechanism::RasInline, &spec);
    let fast_options = RunOptions::new(CpuProfile::r3000());
    let mut instrumented_options = RunOptions::new(CpuProfile::r3000());
    instrumented_options.collect_mix = true;

    let mut translated_options = RunOptions::new(CpuProfile::r3000());
    translated_options.engine = EngineKind::Translated;

    let t = Instant::now();
    let fast = run_guest(&built, &fast_options);
    let fast_wall_ms = ms(t);
    let t = Instant::now();
    let slow = run_guest(&built, &instrumented_options);
    let instrumented_wall_ms = ms(t);
    if fast.cycles != slow.cycles || fast.instructions != slow.instructions {
        return Err(format!(
            "fast and instrumented loops drifted: cycles {} vs {}, instructions {} vs {}",
            fast.cycles, slow.cycles, fast.instructions, slow.instructions
        ));
    }
    // One untimed warmup: the explorer phase above just released a
    // large heap, and the first run after it pays soft page faults
    // re-touching that memory — roughly 2x on the translated engine,
    // whose cache allocations (closures, op vectors) are what land in
    // the cold pages. The timed run below measures steady state. The
    // fast/instrumented passes stay unwarmed so their numbers remain
    // comparable with earlier BENCH_<n> files measured that way.
    let warmup = run_guest(&built, &translated_options);
    if fast.cycles != warmup.cycles || fast.instructions != warmup.instructions {
        return Err(format!(
            "fast and translated engines drifted: cycles {} vs {}, instructions {} vs {}",
            fast.cycles, warmup.cycles, fast.instructions, warmup.instructions
        ));
    }
    // Best of three timed runs: the translated engine's drift gate is a
    // hard floor, and a single sample on a busy host can read 20% slow
    // without any code change. Every run must still retire identical
    // simulated results.
    let mut translated_wall_ms = f64::INFINITY;
    let mut translated = None;
    for _ in 0..3 {
        let t = Instant::now();
        let run = run_guest(&built, &translated_options);
        let wall = ms(t);
        if fast.cycles != run.cycles || fast.instructions != run.instructions {
            return Err(format!(
                "fast and translated engines drifted: cycles {} vs {}, instructions {} vs {}",
                fast.cycles, run.cycles, fast.instructions, run.instructions
            ));
        }
        if wall < translated_wall_ms {
            translated_wall_ms = wall;
            translated = Some(run);
        }
    }
    let translation = translated
        .expect("at least one translated run was timed")
        .translation
        .expect("translated run reports counters");
    let translated_ips = rate(fast.instructions, translated_wall_ms);
    if translated_ips < TRANSLATION_SPEEDUP_GATE * BASELINE_FAST_LOOP_IPS {
        return Err(format!(
            "translation tier drifted below its gate: {translated_ips:.0} instructions/s \
             is under {TRANSLATION_SPEEDUP_GATE}x the fast-loop baseline \
             {BASELINE_FAST_LOOP_IPS:.0}"
        ));
    }

    // Lock-server telemetry bench: a contended 64-client lock server
    // with realistic critical sections, run with streaming telemetry on
    // and off — on the translated engine, whose telemetry level logs a
    // byte-identical access stream to the interpreter's. Measured here,
    // before the allocation-heavy tables and verify phases fragment the
    // heap; the arms are interleaved so host clock drift cannot bias
    // either. The overhead gate fails the pass if enabled wall time
    // exceeds TELEMETRY_OVERHEAD_GATE times disabled, the throughput
    // gate fails it if the O(1) scheduler + translated telemetry ever
    // regress to the BENCH_6 interpreter's rate, and the counters must
    // account for every client operation.
    let ls_spec = LockServerSpec {
        clients: 64,
        locks: 8,
        ops_per_client: 200,
        arrival: Arrival::Zipfian,
        think: 200,
        ..LockServerSpec::default()
    };
    let ls_built = lock_server(Mechanism::RasRegistered, &ls_spec);
    let ls_watch = lock_addresses(&ls_built, &ls_spec);
    let ls_options = |telemetry: Option<Vec<u32>>| {
        let mut options = RunOptions::new(CpuProfile::r3000());
        options.engine = EngineKind::Translated;
        options.quantum = 5_000;
        options.max_threads = ls_spec.clients + 2;
        options.telemetry_locks = telemetry;
        options
    };
    let (mut ls_disabled, mut ls_enabled) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..7 {
        let t = Instant::now();
        let _ = run_guest(&ls_built, &ls_options(None));
        ls_disabled = ls_disabled.min(ms(t));
        let t = Instant::now();
        let _ = run_guest(&ls_built, &ls_options(Some(ls_watch.clone())));
        ls_enabled = ls_enabled.min(ms(t));
    }
    let (_, mut ls_kernel) = run_guest_keeping_kernel(&ls_built, &ls_options(Some(ls_watch)));
    let ls_telemetry = ls_kernel
        .take_telemetry()
        .expect("lock-server bench enables telemetry");
    let ls_acquisitions: u64 = ls_telemetry.locks().iter().map(|l| l.acquisitions).sum();
    let ls_probes: u64 = ls_telemetry
        .locks()
        .iter()
        .map(|l| l.contended_probes)
        .sum();
    if ls_acquisitions != ls_spec.total_ops() {
        return Err(format!(
            "lock-server telemetry lost updates: {} acquisitions for {} operations",
            ls_acquisitions,
            ls_spec.total_ops()
        ));
    }
    let ls_ratio = ls_enabled / ls_disabled.max(1e-9);
    if ls_ratio > TELEMETRY_OVERHEAD_GATE {
        return Err(format!(
            "lock-server telemetry overhead drifted over its gate: enabled/disabled \
             {ls_ratio:.3} exceeds {TELEMETRY_OVERHEAD_GATE:.2}"
        ));
    }
    let ls_ops = rate(ls_spec.total_ops(), ls_enabled);
    if ls_ops < LOCK_SERVER_SPEEDUP_GATE * BASELINE_LOCK_SERVER_OPS_PER_SECOND {
        return Err(format!(
            "lock-server throughput drifted below its gate: {ls_ops:.0} ops/s is under \
             {LOCK_SERVER_SPEEDUP_GATE}x the BENCH_6 baseline \
             {BASELINE_LOCK_SERVER_OPS_PER_SECOND:.0}"
        ));
    }

    // 10,000-client scalability config: the same server shape at a
    // thread count where any O(threads) work per scheduling decision —
    // ready-queue scans, waiter-table rehashing, per-event telemetry
    // slot walks — dominates wall time. The absolute ops/s floor is the
    // drift gate; accounting must still be exact at this scale.
    let ls10k_spec = LockServerSpec {
        clients: 10_000,
        locks: 64,
        ops_per_client: 2,
        arrival: Arrival::Zipfian,
        think: 200,
        ..LockServerSpec::default()
    };
    let ls10k_built = lock_server(Mechanism::RasRegistered, &ls10k_spec);
    let ls10k_watch = lock_addresses(&ls10k_built, &ls10k_spec);
    let ls10k_options = {
        let mut options = RunOptions::new(CpuProfile::r3000());
        options.engine = EngineKind::Translated;
        options.quantum = 5_000;
        options.max_threads = ls10k_spec.clients + 2;
        options.stack_bytes = 512;
        options.telemetry_locks = Some(ls10k_watch);
        options
    };
    let mut ls10k_wall = f64::INFINITY;
    for _ in 0..3 {
        let t = Instant::now();
        let _ = run_guest(&ls10k_built, &ls10k_options);
        ls10k_wall = ls10k_wall.min(ms(t));
    }
    let (_, mut ls10k_kernel) = run_guest_keeping_kernel(&ls10k_built, &ls10k_options);
    let ls10k_acquisitions: u64 = ls10k_kernel
        .take_telemetry()
        .expect("10k lock-server bench enables telemetry")
        .locks()
        .iter()
        .map(|l| l.acquisitions)
        .sum();
    if ls10k_acquisitions != ls10k_spec.total_ops() {
        return Err(format!(
            "10k lock-server telemetry lost updates: {} acquisitions for {} operations",
            ls10k_acquisitions,
            ls10k_spec.total_ops()
        ));
    }
    let ls10k_ops = rate(ls10k_spec.total_ops(), ls10k_wall);
    if ls10k_ops < LOCK_SERVER_10K_OPS_GATE {
        return Err(format!(
            "10k lock-server throughput drifted below its floor: {ls10k_ops:.0} ops/s \
             is under {LOCK_SERVER_10K_OPS_GATE:.0}"
        ));
    }

    // Tables at bench scale.
    let t = Instant::now();
    let _ = table1(crate::scales::table1());
    let t1 = ms(t);
    let t = Instant::now();
    let _ = table2(&crate::scales::table2());
    let t2 = ms(t);
    let t = Instant::now();
    let _ = table3(&crate::scales::table3());
    let t3 = ms(t);
    let t = Instant::now();
    let _ = table4(crate::scales::table4());
    let t4 = ms(t);

    // Static analysis: the full ras-lint sweep — every pass over every
    // bundled workload, plus sequence inference. Errors mean the
    // analyzer or a workload regressed; either way the point must not
    // be recorded.
    let t = Instant::now();
    let set = ras_kernel::DesignatedSet::standard();
    let sweep = ras_analyze::bundled_workloads();
    let analyze_targets = sweep.len();
    let mut analyze_findings = 0usize;
    for target in &sweep {
        let analysis = ras_analyze::analyze(&target.program, &set);
        if analysis.has_errors() {
            return Err(format!(
                "static analysis reports errors in {}: {:?}",
                target.name,
                analysis.errors().collect::<Vec<_>>()
            ));
        }
        analyze_findings += analysis.diags.len();
        let _ = ras_analyze::infer_sequences(&target.program);
    }
    let analyze_wall_ms = ms(t);

    // Head-to-head recovery pass: RAS restart against rseq abort on
    // the same contended counter, under a quantum hostile enough that
    // preemptions deterministically land inside the critical windows.
    // Either strategy recovering by the other's means — or never
    // recovering at all — is drift.
    let t = Instant::now();
    let rows = head_to_head(&HeadToHeadScale {
        iterations: 1_500,
        workers: 2,
        spin: 100,
        quantum: 503,
    });
    let headtohead_wall_ms = ms(t);
    let recovery_row = |mechanism: Mechanism| {
        rows.iter()
            .find(|r| r.mechanism == mechanism)
            .expect("head-to-head covers the mechanism")
    };
    let ras = recovery_row(Mechanism::RasInline);
    let rseq = recovery_row(Mechanism::Rseq);
    if ras.metrics.rseq_aborts != 0 || rseq.metrics.rollbacks != 0 {
        return Err(format!(
            "head-to-head recovery paths cross-contaminated: RAS saw {} rseq abort(s), \
             rseq saw {} rollback(s)",
            ras.metrics.rseq_aborts, rseq.metrics.rollbacks
        ));
    }
    if ras.metrics.rollbacks == 0 || rseq.metrics.rseq_aborts == 0 {
        return Err(format!(
            "head-to-head quantum no longer exercises recovery: {} rollback(s), {} abort(s)",
            ras.metrics.rollbacks, rseq.metrics.rseq_aborts
        ));
    }

    // End-to-end verification.
    let t = Instant::now();
    let verification = verify_reproduction(&VerifyScale::default());
    let verify_wall_ms = ms(t);
    if !verification.all_hold() {
        let failed: Vec<String> = verification
            .failures()
            .iter()
            .map(|c| c.statement.clone())
            .collect();
        return Err(format!(
            "verification drifted; failing claims: {}",
            failed.join("; ")
        ));
    }

    Ok(TrajectoryPoint {
        table_wall_ms: [t1, t2, t3, t4],
        simulated_cycles: fast.cycles,
        instructions_retired: fast.instructions,
        fast_wall_ms,
        instrumented_wall_ms,
        translated_wall_ms,
        opcode_mix: slow.mix.expect("instrumented run collects the mix"),
        translation_blocks_compiled: translation.blocks_compiled,
        translation_block_entries: translation.block_entries,
        translation_deopts: translation.deopts,
        translation_translated_instructions: translation.translated_instructions,
        translation_interpreted_instructions: translation.interpreted_instructions,
        explorer_schedules: mc.total_schedules(),
        explorer_wall_ms,
        explorer_checkpoints: mc.targets.iter().map(|t| t.checkpoints).sum(),
        explorer_undo_replayed: mc.targets.iter().map(|t| t.undo_replayed).sum(),
        explorer_snapshot_bytes: mc.targets.iter().map(|t| t.snapshot_bytes).sum(),
        explorer_states_deduped: mc.targets.iter().map(|t| t.states_deduped).sum(),
        verify_wall_ms,
        verify_claims: verification.claims.len(),
        analyze_targets,
        analyze_findings,
        analyze_wall_ms,
        ras_rollbacks: ras.metrics.rollbacks,
        ras_quantum_expiries: ras.metrics.quantum_expiries,
        rseq_aborts: rseq.metrics.rseq_aborts,
        rseq_quantum_expiries: rseq.metrics.quantum_expiries,
        headtohead_wall_ms,
        lock_server_clients: ls_spec.clients as u64,
        lock_server_locks: ls_spec.locks as u64,
        lock_server_total_ops: ls_spec.total_ops(),
        lock_server_acquisitions: ls_acquisitions,
        lock_server_contended_probes: ls_probes,
        lock_server_disabled_wall_ms: ls_disabled,
        lock_server_enabled_wall_ms: ls_enabled,
        lock_server_10k_clients: ls10k_spec.clients as u64,
        lock_server_10k_locks: ls10k_spec.locks as u64,
        lock_server_10k_total_ops: ls10k_spec.total_ops(),
        lock_server_10k_acquisitions: ls10k_acquisitions,
        lock_server_10k_wall_ms: ls10k_wall,
    })
}

/// The next `BENCH_<n>.json` index in `dir`: one past the highest index
/// present. Deliberately max+1 rather than first-gap — if an old point
/// was deleted from the middle of the trajectory, the next pass must
/// append after the newest measurement, not rewrite history inside it.
pub fn next_index(dir: &std::path::Path) -> u32 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut next = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(index) = name
            .to_str()
            .and_then(|n| n.strip_prefix("BENCH_"))
            .and_then(|n| n.strip_suffix(".json"))
            .and_then(|n| n.parse::<u32>().ok())
        else {
            continue;
        };
        next = next.max(index + 1);
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_document_carries_every_section() {
        let point = TrajectoryPoint {
            table_wall_ms: [1.0, 2.0, 3.0, 4.0],
            simulated_cycles: 1_000,
            instructions_retired: 500,
            fast_wall_ms: 10.0,
            instrumented_wall_ms: 20.0,
            translated_wall_ms: 5.0,
            opcode_mix: {
                let mut mix = [0u64; Opcode::COUNT];
                mix[Opcode::Lw.index()] = 120;
                mix[Opcode::Sw.index()] = 80;
                mix
            },
            translation_blocks_compiled: 6,
            translation_block_entries: 250,
            translation_deopts: 12,
            translation_translated_instructions: 480,
            translation_interpreted_instructions: 20,
            explorer_schedules: 100,
            explorer_wall_ms: 50.0,
            explorer_checkpoints: 40,
            explorer_undo_replayed: 900,
            explorer_snapshot_bytes: 65_536,
            explorer_states_deduped: 7,
            verify_wall_ms: 485.0,
            verify_claims: 21,
            analyze_targets: 92,
            analyze_findings: 0,
            analyze_wall_ms: 460.0,
            ras_rollbacks: 426,
            ras_quantum_expiries: 1_284,
            rseq_aborts: 45,
            rseq_quantum_expiries: 1_342,
            headtohead_wall_ms: 12.5,
            lock_server_clients: 64,
            lock_server_locks: 8,
            lock_server_total_ops: 12_800,
            lock_server_acquisitions: 12_800,
            lock_server_contended_probes: 6_313,
            lock_server_disabled_wall_ms: 20.0,
            lock_server_enabled_wall_ms: 22.0,
            lock_server_10k_clients: 10_000,
            lock_server_10k_locks: 64,
            lock_server_10k_total_ops: 20_000,
            lock_server_10k_acquisitions: 20_000,
            lock_server_10k_wall_ms: 16.0,
        };
        let json = point.to_json(3);
        for needle in [
            "\"index\": 3",
            "\"opcode_mix\": {",
            "\"lw\": 120",
            "\"sw\": 80",
            "\"nop\": 0",
            "\"translation\": {",
            "\"translated_instructions_per_second\": 100000",
            "\"baseline_fast_instructions_per_second\": 340891070",
            "\"blocks_compiled\": 6",
            "\"block_entries\": 250",
            "\"deopts\": 12",
            "\"translated_instructions\": 480",
            "\"interpreted_instructions\": 20",
            "\"table4_wall_ms\": 4.000",
            "\"simulated_cycles\": 1000",
            "\"fast_instructions_per_second\": 50000",
            "\"schedules_per_second\": 2000,",
            "\"baseline_schedules_per_second\": 83278",
            "\"checkpoints\": 40",
            "\"undo_entries_replayed\": 900",
            "\"snapshot_bytes\": 65536",
            "\"states_deduped\": 7",
            "\"speedup_vs_baseline\": 2.00",
            "\"static_analysis\": {",
            "\"targets\": 92",
            "\"findings\": 0",
            "\"targets_per_second\": 200",
            "\"rseq\": {",
            "\"aborts\": 45",
            "\"aborts_per_100_quanta\": 3.353",
            "\"ras_rollbacks\": 426",
            "\"ras_rollbacks_per_100_quanta\": 33.178",
            "\"lock_server\": {",
            "\"total_ops\": 12800",
            "\"acquisitions\": 12800",
            "\"contended_probes\": 6313",
            "\"disabled_wall_ms\": 20.000",
            "\"enabled_wall_ms\": 22.000",
            "\"ops_per_second\": 581818",
            "\"baseline_ops_per_second\": 520971",
            "\"telemetry_overhead_ratio\": 1.100",
            "\"telemetry_overhead_gate\": 1.15",
            "\"clients_10k\": {",
            "\"clients\": 10000",
            "\"total_ops\": 20000",
            "\"acquisitions\": 20000",
            "\"enabled_wall_ms\": 16.000",
            "\"ops_per_second\": 1250000",
            "\"ops_per_second_gate\": 600000",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert!((point.verify_speedup() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn next_index_skips_existing_files() {
        let dir = std::env::temp_dir().join("ras-bench-trajectory-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(next_index(&dir), 0);
        std::fs::write(dir.join("BENCH_0.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_1.json"), "{}").unwrap();
        assert_eq!(next_index(&dir), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn next_index_is_max_plus_one_across_gaps() {
        let dir = std::env::temp_dir().join("ras-bench-trajectory-gap-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A deleted middle point must not be refilled: the trajectory
        // only ever appends after its newest measurement.
        std::fs::write(dir.join("BENCH_0.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_2.json"), "{}").unwrap();
        std::fs::write(dir.join("not-a-point.json"), "{}").unwrap();
        std::fs::write(dir.join("BENCH_x.json"), "{}").unwrap();
        assert_eq!(next_index(&dir), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
