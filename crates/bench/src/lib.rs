//! Shared configuration for the benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables on the
//! simulator and also measures the harness's own (host) runtime with
//! Criterion so regressions in the simulator are visible. The simulated
//! results — the actual reproduction — are printed to stderr before the
//! Criterion measurements run, and `cargo run -p ras-bench --bin tables`
//! prints all of them at full scale.

use criterion::Criterion;

pub mod trajectory;

/// A Criterion instance tuned for simulator-sized benchmarks: each
/// iteration is a whole simulation run, so a handful of samples suffices.
pub fn criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

/// Reduced experiment scales so `cargo bench` stays fast while keeping
/// every comparison meaningful.
pub mod scales {
    use ras_core::experiments::{Table1Scale, Table2Scale, Table3Scale, Table4Scale};
    use ras_guest::workloads::{AfsSpec, TextFormatSpec};

    /// Table 1 at bench scale.
    pub fn table1() -> Table1Scale {
        Table1Scale { iterations: 20_000 }
    }

    /// Table 2 at bench scale.
    pub fn table2() -> Table2Scale {
        Table2Scale {
            lock_iterations: 5_000,
            forks: 200,
            pingpong_cycles: 500,
        }
    }

    /// Table 3 at bench scale.
    pub fn table3() -> Table3Scale {
        Table3Scale {
            text: TextFormatSpec {
                requests: 40,
                client_work: 16_000,
                server_work: 1_000,
            },
            afs: AfsSpec {
                requests: 250,
                client_work: 8_000,
                server_work: 4_000,
            },
            parthenon_clauses: 800,
            parthenon_work: 650,
            proton_items: 3_000,
        }
    }

    /// Table 4 at bench scale.
    pub fn table4() -> Table4Scale {
        Table4Scale { iterations: 10_000 }
    }
}
