//! Bench target regenerating Table 2 (§5.2 thread-management benchmarks).

use criterion::{criterion_group, criterion_main, Criterion};
use ras_bench::scales;
use ras_core::experiments::{render_table2, table2};
use ras_core::workloads::{mutex_bench, ping_pong, Table2Spec};
use ras_core::{run_guest, Mechanism, RunOptions};

fn bench_table2(c: &mut Criterion) {
    let rows = table2(&scales::table2());
    eprintln!("\n{}", render_table2(&rows));

    let mut group = c.benchmark_group("table2");
    for mechanism in [Mechanism::KernelEmulation, Mechanism::RasRegistered] {
        let spec = Table2Spec { iterations: 2_000 };
        let built = mutex_bench(mechanism, &spec);
        let options = RunOptions::default();
        group.bench_function(format!("mutex/{}", mechanism.id()), |b| {
            b.iter(|| run_guest(&built, &options))
        });
        let spec = Table2Spec { iterations: 200 };
        let built = ping_pong(mechanism, &spec);
        group.bench_function(format!("pingpong/{}", mechanism.id()), |b| {
            b.iter(|| run_guest(&built, &options))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = ras_bench::criterion();
    targets = bench_table2
}
criterion_main!(benches);
