//! Bench target regenerating Table 4 (§6 hardware vs software across
//! eight architectures).

use criterion::{criterion_group, criterion_main, Criterion};
use ras_bench::scales;
use ras_core::experiments::{render_table4, table4};
use ras_core::workloads::{counter_loop, CounterBody, CounterSpec};
use ras_core::{run_guest, CpuProfile, Mechanism, RunOptions};

fn bench_table4(c: &mut Criterion) {
    let rows = table4(scales::table4());
    eprintln!("\n{}", render_table4(&rows));

    // Host-side timing on a representative fast and slow architecture.
    let mut group = c.benchmark_group("table4");
    for profile in [CpuProfile::i486(), CpuProfile::hp_pa()] {
        let spec = CounterSpec {
            iterations: 5_000,
            workers: 1,
            body: CounterBody::LockOnly,
        };
        let built = counter_loop(Mechanism::Interlocked, &spec);
        let options = RunOptions::new(profile.clone());
        group.bench_function(format!("interlocked/{}", profile.name()), |b| {
            b.iter(|| run_guest(&built, &options))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = ras_bench::criterion();
    targets = bench_table4
}
criterion_main!(benches);
