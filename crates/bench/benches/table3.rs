//! Bench target regenerating Table 3 (§5.3 application performance).

use criterion::{criterion_group, criterion_main, Criterion};
use ras_bench::scales;
use ras_core::experiments::{render_table3, table3};
use ras_core::workloads::{proton64, Proton64Spec};
use ras_core::{run_guest, Mechanism, RunOptions};

fn bench_table3(c: &mut Criterion) {
    let rows = table3(&scales::table3());
    eprintln!("\n{}", render_table3(&rows));

    let mut group = c.benchmark_group("table3");
    for mechanism in [Mechanism::KernelEmulation, Mechanism::RasRegistered] {
        let built = proton64(mechanism, &Proton64Spec { items: 1_000 });
        let options = RunOptions::default();
        group.bench_function(format!("proton64/{}", mechanism.id()), |b| {
            b.iter(|| run_guest(&built, &options))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = ras_bench::criterion();
    targets = bench_table3
}
criterion_main!(benches);
