//! Bench target regenerating Table 1 (§5.1 microbenchmarks) and measuring
//! the simulator's host-side throughput on it.

use criterion::{criterion_group, criterion_main, Criterion};
use ras_bench::scales;
use ras_core::experiments::{render_table1, table1};
use ras_core::workloads::{counter_loop, CounterSpec};
use ras_core::{run_guest, Mechanism, RunOptions};

fn bench_table1(c: &mut Criterion) {
    // The reproduction itself: run the experiment and print the table.
    let rows = table1(scales::table1());
    eprintln!("\n{}", render_table1(&rows));

    // Host-side timing of each mechanism's simulation.
    let mut group = c.benchmark_group("table1");
    for mechanism in Mechanism::table1_lineup() {
        let spec = CounterSpec {
            iterations: 5_000,
            workers: 1,
            ..Default::default()
        };
        let built = counter_loop(mechanism, &spec);
        let options = RunOptions::default();
        group.bench_function(mechanism.id(), |b| b.iter(|| run_guest(&built, &options)));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = ras_bench::criterion();
    targets = bench_table1
}
criterion_main!(benches);
