//! Ablation benches for the design choices DESIGN.md calls out, driven by
//! the typed runners in `ras_core::experiments::ablations`:
//!
//! * restart rate and total overhead as a function of the preemption
//!   quantum (the optimism assumption, §5.3);
//! * PC check at suspend vs at resume (§4.1);
//! * user-level restart vs in-kernel recovery (§4.1);
//! * the instruction mix each mechanism retires per critical section.

use criterion::{criterion_group, criterion_main, Criterion};
use ras_core::experiments::ablations::{
    check_time_comparison, instruction_mix, quantum_sweep, recovery_home_comparison,
    render_instruction_mix, render_quantum_sweep,
};
use ras_core::report::AsciiTable;
use ras_core::workloads::{counter_loop, CounterSpec};
use ras_core::{run_guest, CheckTime, Mechanism, RunOptions};

fn print_reports() {
    let sweep = quantum_sweep(
        Mechanism::RasInline,
        &[50, 200, 1_000, 10_000, 250_000],
        30_000,
    );
    eprintln!("\n{}", render_quantum_sweep(Mechanism::RasInline, &sweep));

    let mut t = AsciiTable::new(
        "Ablation: PC check at suspend (Mach) vs at resume (Taos)",
        &["Mechanism", "Check", "Cycles", "Restarts"],
    );
    for mechanism in [Mechanism::RasRegistered, Mechanism::RasInline] {
        for row in check_time_comparison(mechanism, 30_000) {
            t.row(vec![
                row.mechanism.id().to_owned(),
                format!("{:?}", row.check),
                row.cycles.to_string(),
                row.restarts.to_string(),
            ]);
        }
    }
    eprintln!("\n{t}");

    let mut t = AsciiTable::new(
        "Ablation: recovery in the kernel vs at user level (§4.1)",
        &["Mechanism", "µs/op", "Kernel cycles", "Recovery events"],
    );
    for row in recovery_home_comparison(30_000) {
        t.row(vec![
            row.mechanism.id().to_owned(),
            format!("{:.3}", row.us_per_op),
            row.kernel_cycles.to_string(),
            row.recovery_events.to_string(),
        ]);
    }
    eprintln!("\n{t}");

    let mix = instruction_mix(
        &[
            Mechanism::RasInline,
            Mechanism::RasRegistered,
            Mechanism::KernelEmulation,
            Mechanism::LamportPerLock,
            Mechanism::LamportBundled,
        ],
        20_000,
    );
    eprintln!("\n{}", render_instruction_mix(&mix));
}

fn bench_ablations(c: &mut Criterion) {
    print_reports();

    // Host-cost of the two check placements.
    let mut group = c.benchmark_group("ablations");
    let spec = CounterSpec {
        iterations: 5_000,
        workers: 2,
        ..Default::default()
    };
    for check in [CheckTime::OnSuspend, CheckTime::OnResume] {
        let built = counter_loop(Mechanism::RasInline, &spec);
        let options = RunOptions {
            quantum: 500,
            check_time: check,
            ..RunOptions::default()
        };
        group.bench_function(format!("check/{check:?}"), |b| {
            b.iter(|| run_guest(&built, &options))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = ras_bench::criterion();
    targets = bench_ablations
}
criterion_main!(benches);
