//! Host-native comparison: the paper's algorithms with real atomics
//! against today's synchronization primitives — a modern Table 4 of
//! sorts, run on the machine executing this benchmark.

use std::sync::atomic::{AtomicU32, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;
use ras_native::{BundledTas, DekkerMutex, FastMutex, PetersonMutex, RestartableU32, Side};

fn bench_native(c: &mut Criterion) {
    let mut group = c.benchmark_group("native_uncontended");

    let fast = FastMutex::new(1);
    let slot = fast.slot().unwrap();
    group.bench_function("lamport_fast_mutex", |b| {
        b.iter(|| {
            let _g = fast.lock(slot);
        })
    });

    let meta = FastMutex::new(1);
    let mslot = meta.slot().unwrap();
    let bundled = BundledTas::new();
    group.bench_function("bundled_meta_tas", |b| {
        b.iter(|| {
            let held = bundled.test_and_set(&meta, mslot);
            assert!(!held);
            bundled.clear();
        })
    });

    let cell = RestartableU32::new(0);
    group.bench_function("restartable_fetch_add", |b| {
        b.iter(|| cell.update(|v| v.wrapping_add(1)))
    });

    let peterson = PetersonMutex::new();
    group.bench_function("peterson_mutex", |b| {
        b.iter(|| {
            let _g = peterson.lock(Side::Left);
        })
    });

    let dekker = DekkerMutex::new();
    group.bench_function("dekker_mutex", |b| {
        b.iter(|| {
            let _g = dekker.lock(Side::Left);
        })
    });

    let atomic = AtomicU32::new(0);
    group.bench_function("hardware_swap_tas", |b| {
        b.iter(|| {
            let old = atomic.swap(1, Ordering::SeqCst);
            atomic.store(0, Ordering::SeqCst);
            old
        })
    });

    let mutex = Mutex::new(0u64);
    group.bench_function("parking_lot_mutex", |b| {
        b.iter(|| {
            let mut g = mutex.lock();
            *g += 1;
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = ras_bench::criterion();
    targets = bench_native
}
criterion_main!(benches);
