//! Quick lock-server throughput probe: runs the trajectory's 64×8
//! config and the 10k-client config once each and prints ops/s, for
//! sizing scheduler work without waiting on the full bench pass.
//!
//! ```sh
//! cargo run --release -p ras-bench --example lockserver_perf
//! ```

use std::time::Instant;

use ras_core::{run_guest, run_guest_keeping_kernel, RunOptions};
use ras_guest::workloads::{lock_addresses, lock_server, Arrival, LockServerSpec};
use ras_guest::Mechanism;
use ras_machine::{CpuProfile, EngineKind};

fn measure(label: &str, spec: &LockServerSpec, reps: u32) {
    let built = lock_server(Mechanism::RasRegistered, spec);
    let mut options = RunOptions::new(CpuProfile::r3000());
    options.engine = EngineKind::Translated;
    options.quantum = 5_000;
    options.max_threads = spec.clients + 2;
    if spec.clients > 512 {
        options.stack_bytes = 512;
    }
    let mut best = f64::INFINITY;
    let mut retired = 0;
    let mut translation = None;
    for _ in 0..reps {
        let t = Instant::now();
        let out = run_guest(&built, &options);
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        retired = out.instructions;
        translation = out.translation;
    }
    if let Some(tc) = &translation {
        println!("  translation: {tc:?}");
    }
    println!("  retired={retired}");
    let mut enabled_options = options.clone();
    enabled_options.telemetry_locks = Some(lock_addresses(&built, spec));
    let mut best_enabled = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = run_guest(&built, &enabled_options);
        best_enabled = best_enabled.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let (_, kernel) = run_guest_keeping_kernel(&built, &options);
    let s = kernel.stats();
    let ops = spec.total_ops() as f64;
    println!(
        "{label}: disabled {:.1} ms, enabled {:.1} ms best-of-{reps} \
         ({:.0} ops/s disabled, {:.0} ops/s enabled, ratio {:.3})",
        best,
        best_enabled,
        ops / (best / 1e3),
        ops / (best_enabled / 1e3),
        best_enabled / best,
    );
    println!(
        "  cycles={} switches={} preempt={} yields={} syscalls={} spawns={} \
         wakeups={} blocks={} suspensions={} ras_checks={} kernel_cycles={}",
        kernel.machine().clock(),
        s.context_switches,
        s.preemptions,
        s.yields,
        s.syscalls,
        s.threads_spawned,
        s.wakeups,
        s.blocks,
        s.suspensions,
        s.ras_checks,
        s.kernel_cycles,
    );
}

fn main() {
    for think in [100, 200, 400] {
        let spec = LockServerSpec {
            clients: 64,
            locks: 8,
            ops_per_client: 200,
            arrival: Arrival::Zipfian,
            think,
            ..LockServerSpec::default()
        };
        measure(&format!("lock_server 64x8 think={think}"), &spec, 7);
    }
    let small = LockServerSpec {
        clients: 64,
        locks: 8,
        ops_per_client: 200,
        arrival: Arrival::Zipfian,
        think: 200,
        ..LockServerSpec::default()
    };
    measure("lock_server 64x8", &small, 7);

    let big = LockServerSpec {
        clients: 10_000,
        locks: 64,
        ops_per_client: 2,
        arrival: Arrival::Zipfian,
        think: 200,
        ..LockServerSpec::default()
    };
    measure("lock_server 10k x 64", &big, 3);
}
