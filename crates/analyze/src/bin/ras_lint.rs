//! `ras-lint` — check assembly files for restartability and landmark
//! violations before running them under preemption.
//!
//! ```text
//! usage: ras-lint [--strict] [--json] [--infer] [--workloads]
//!                 [--seq START:LEN]... [FILE.s...]
//!
//!   --strict         treat warnings as errors for the exit status
//!   --json           emit diagnostics as JSON (one object per target)
//!   --infer          also propose restartable sequences: the widest
//!                    load→modify→store windows the verifier accepts
//!   --workloads      lint every bundled guest workload under every
//!                    mechanism (targets named workload://NAME/MECH),
//!                    in addition to any files given
//!   --seq START:LEN  declare a restartable sequence (instruction
//!                    addresses) in addition to those detected from
//!                    landmarks; may be repeated, applies to every file
//! ```
//!
//! Sequences that follow the designated templates are detected
//! automatically from their landmarks and verified as if declared.
//!
//! Every target's report states the atomicity strategy its image
//! carries — declared restartable sequences (`ras`), rseq descriptors
//! (`rseq`), both, or `none` — as a header line in text mode and as the
//! `strategy`/`sequences`/`rseq_descriptors` fields in `--json`.
//!
//! Output is deterministic: targets in argument order (workloads in
//! their fixed enumeration order after the files), findings sorted by
//! address, proposals sorted by start — byte-identical across runs, so
//! the JSON can be diffed against a golden file in CI.
//!
//! Exit status: `0` clean, `1` errors (or warnings under `--strict`),
//! `3` warnings only, `2` usage or read/parse failure — so CI can
//! distinguish "broken" from "merely suspicious".

use std::process::ExitCode;

use ras_analyze::{
    analyze, bundled_workloads, explain_landmark, infer_sequences, render_json, Diagnostic,
    InferredSeq, Severity,
};
use ras_isa::{parse_asm, CodeAddr, Opcode, Program, SeqRange};
use ras_kernel::DesignatedSet;

struct Options {
    strict: bool,
    json: bool,
    infer: bool,
    workloads: bool,
    seqs: Vec<SeqRange>,
    files: Vec<String>,
}

/// One thing to lint: a parsed file or a bundled workload.
struct Target {
    name: String,
    program: Program,
}

impl From<ras_analyze::WorkloadTarget> for Target {
    fn from(t: ras_analyze::WorkloadTarget) -> Target {
        Target {
            name: t.name,
            program: t.program,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: ras-lint [--strict] [--json] [--infer] [--workloads] \
         [--seq START:LEN]... [FILE.s...]"
    );
    ExitCode::from(2)
}

fn parse_seq(spec: &str) -> Option<SeqRange> {
    let (start, len) = spec.split_once(':')?;
    Some(SeqRange {
        start: start.trim().parse().ok()?,
        len: len.trim().parse().ok()?,
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        strict: false,
        json: false,
        infer: false,
        workloads: false,
        seqs: Vec::new(),
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => opts.strict = true,
            "--json" => opts.json = true,
            "--infer" => opts.infer = true,
            "--workloads" => opts.workloads = true,
            "--seq" => {
                let spec = it.next().ok_or("--seq needs START:LEN")?;
                opts.seqs
                    .push(parse_seq(spec).ok_or_else(|| format!("bad --seq spec `{spec}`"))?);
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() && !opts.workloads {
        return Err("no input files (or --workloads)".to_string());
    }
    Ok(opts)
}

/// Declares every template-shaped landmark sequence and every `--seq`
/// range on the parsed program, skipping duplicates.
fn declare_sequences(program: &mut Program, set: &DesignatedSet, extra: &[SeqRange]) {
    let mut detected: Vec<SeqRange> = extra.to_vec();
    for pc in 0..program.len() as CodeAddr {
        if program.fetch(pc).map(|i| i.opcode()) != Some(Opcode::Landmark) {
            continue;
        }
        if let Some((name, start)) = explain_landmark(program, set, pc) {
            let len = set
                .templates()
                .iter()
                .find(|t| t.name == name)
                .map(|t| t.pattern.len() as u32)
                .unwrap_or(0);
            detected.push(SeqRange { start, len });
        }
    }
    for range in detected {
        if !program.seq_ranges().contains(&range) {
            program.declare_seq(range);
        }
    }
}

fn load_file(path: &str, opts: &Options, set: &DesignatedSet) -> Result<Target, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut program = parse_asm(&text).map_err(|e| format!("{path}:{}: {}", e.line, e.message))?;
    declare_sequences(&mut program, set, &opts.seqs);
    Ok(Target {
        name: path.to_string(),
        program,
    })
}

/// Which atomicity machinery the target's image carries — the mode the
/// verifier families run in: declared restartable sequences (`ras`),
/// published rseq descriptors (`rseq`), both, or neither.
fn strategy_of(program: &Program) -> &'static str {
    match (
        !program.seq_ranges().is_empty(),
        !program.rseq_descs().is_empty(),
    ) {
        (true, true) => "ras+rseq",
        (true, false) => "ras",
        (false, true) => "rseq",
        (false, false) => "none",
    }
}

fn inferred_json(inferred: &[InferredSeq]) -> String {
    let items: Vec<String> = inferred
        .iter()
        .map(|i| {
            format!(
                "{{\"start\":{},\"len\":{},\"already_declared\":{}}}",
                i.range.start, i.range.len, i.already_declared
            )
        })
        .collect();
    format!("[{}]", items.join(","))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("ras-lint: {msg}");
            }
            return usage();
        }
    };

    let set = DesignatedSet::standard();
    let mut targets = Vec::new();
    for file in &opts.files {
        match load_file(file, &opts, &set) {
            Ok(t) => targets.push(t),
            Err(msg) => {
                eprintln!("ras-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.workloads {
        targets.extend(bundled_workloads().into_iter().map(Target::from));
    }

    let mut errors = 0;
    let mut warnings = 0;
    let mut json_entries = Vec::new();
    for t in &targets {
        let analysis = analyze(&t.program, &set);
        let diags: &[Diagnostic] = &analysis.diags;
        let inferred = if opts.infer {
            infer_sequences(&t.program)
        } else {
            Vec::new()
        };
        errors += diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .count();
        warnings += diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .count();
        let strategy = strategy_of(&t.program);
        if opts.json {
            let mut entry = format!(
                "{{\"file\": \"{}\", \"strategy\": \"{}\", \"sequences\": {}, \
                 \"rseq_descriptors\": {}, \"diagnostics\": {}",
                t.name.replace('\\', "\\\\").replace('"', "\\\""),
                strategy,
                t.program.seq_ranges().len(),
                t.program.rseq_descs().len(),
                render_json(diags).replace('\n', "")
            );
            if opts.infer {
                entry.push_str(&format!(", \"inferred\": {}", inferred_json(&inferred)));
            }
            entry.push('}');
            json_entries.push(entry);
        } else {
            println!(
                "{}: strategy {} ({} declared sequence(s), {} rseq descriptor(s))",
                t.name,
                strategy,
                t.program.seq_ranges().len(),
                t.program.rseq_descs().len()
            );
            for d in diags {
                print!("{}: {}", t.name, d.render(&t.program));
            }
            for i in &inferred {
                println!(
                    "{}: inferred sequence [@{}..@{}), {} instruction(s){}",
                    t.name,
                    i.range.start,
                    i.range.end(),
                    i.range.len,
                    if i.already_declared {
                        " (already declared)"
                    } else {
                        ""
                    }
                );
            }
        }
    }

    if opts.json {
        println!("[{}]", json_entries.join(", "));
    } else if errors > 0 || warnings > 0 {
        eprintln!(
            "ras-lint: {errors} error(s), {warnings} warning(s) in {} target(s)",
            targets.len()
        );
    }
    if errors > 0 || (opts.strict && warnings > 0) {
        ExitCode::from(1)
    } else if warnings > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
