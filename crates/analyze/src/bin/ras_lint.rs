//! `ras-lint` — check assembly files for restartability and landmark
//! violations before running them under preemption.
//!
//! ```text
//! usage: ras-lint [--strict] [--json] [--seq START:LEN]... FILE.s [FILE.s...]
//!
//!   --strict         treat warnings as errors for the exit status
//!   --json           emit diagnostics as JSON (one object per file)
//!   --seq START:LEN  declare a restartable sequence (instruction
//!                    addresses) in addition to those detected from
//!                    landmarks; may be repeated, applies to every file
//! ```
//!
//! Sequences that follow the designated templates are detected
//! automatically from their landmarks and verified as if declared.
//!
//! Exit status: `0` clean, `1` errors (or warnings under `--strict`),
//! `3` warnings only, `2` usage or read/parse failure — so CI can
//! distinguish "broken" from "merely suspicious".

use std::process::ExitCode;

use ras_analyze::{analyze, explain_landmark, render_json, Diagnostic, Severity};
use ras_isa::{parse_asm, CodeAddr, Opcode, Program, SeqRange};
use ras_kernel::DesignatedSet;

struct Options {
    strict: bool,
    json: bool,
    seqs: Vec<SeqRange>,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!("usage: ras-lint [--strict] [--json] [--seq START:LEN]... FILE.s [FILE.s...]");
    ExitCode::from(2)
}

fn parse_seq(spec: &str) -> Option<SeqRange> {
    let (start, len) = spec.split_once(':')?;
    Some(SeqRange {
        start: start.trim().parse().ok()?,
        len: len.trim().parse().ok()?,
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        strict: false,
        json: false,
        seqs: Vec::new(),
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--strict" => opts.strict = true,
            "--json" => opts.json = true,
            "--seq" => {
                let spec = it.next().ok_or("--seq needs START:LEN")?;
                opts.seqs
                    .push(parse_seq(spec).ok_or_else(|| format!("bad --seq spec `{spec}`"))?);
            }
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if opts.files.is_empty() {
        return Err("no input files".to_string());
    }
    Ok(opts)
}

/// Declares every template-shaped landmark sequence and every `--seq`
/// range on the parsed program, skipping duplicates.
fn declare_sequences(program: &mut Program, set: &DesignatedSet, extra: &[SeqRange]) {
    let mut detected: Vec<SeqRange> = extra.to_vec();
    for pc in 0..program.len() as CodeAddr {
        if program.fetch(pc).map(|i| i.opcode()) != Some(Opcode::Landmark) {
            continue;
        }
        if let Some((name, start)) = explain_landmark(program, set, pc) {
            let len = set
                .templates()
                .iter()
                .find(|t| t.name == name)
                .map(|t| t.pattern.len() as u32)
                .unwrap_or(0);
            detected.push(SeqRange { start, len });
        }
    }
    for range in detected {
        if !program.seq_ranges().contains(&range) {
            program.declare_seq(range);
        }
    }
}

fn lint_file(path: &str, opts: &Options, set: &DesignatedSet) -> Result<Vec<Diagnostic>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: cannot read: {e}"))?;
    let mut program = parse_asm(&text).map_err(|e| format!("{path}:{}: {}", e.line, e.message))?;
    declare_sequences(&mut program, set, &opts.seqs);

    let analysis = analyze(&program, set);
    if !opts.json {
        for d in &analysis.diags {
            print!("{path}: {}", d.render(&program));
        }
    }
    Ok(analysis.diags)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("ras-lint: {msg}");
            }
            return usage();
        }
    };

    let set = DesignatedSet::standard();
    let mut errors = 0;
    let mut warnings = 0;
    let mut json_entries = Vec::new();
    for file in &opts.files {
        match lint_file(file, &opts, &set) {
            Ok(diags) => {
                errors += diags
                    .iter()
                    .filter(|d| d.severity() == Severity::Error)
                    .count();
                warnings += diags
                    .iter()
                    .filter(|d| d.severity() == Severity::Warning)
                    .count();
                if opts.json {
                    json_entries.push(format!(
                        "{{\"file\": \"{}\", \"diagnostics\": {}}}",
                        file.replace('\\', "\\\\").replace('"', "\\\""),
                        render_json(&diags).replace('\n', "")
                    ));
                }
            }
            Err(msg) => {
                eprintln!("ras-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    }

    if opts.json {
        println!("[{}]", json_entries.join(", "));
    } else if errors > 0 || warnings > 0 {
        eprintln!(
            "ras-lint: {errors} error(s), {warnings} warning(s) in {} file(s)",
            opts.files.len()
        );
    }
    if errors > 0 || (opts.strict && warnings > 0) {
        ExitCode::from(1)
    } else if warnings > 0 {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    }
}
