//! Landmark-safety lints.
//!
//! The designated-sequence recognizer is sound only because of a
//! convention the kernel cannot check at run time: "the landmark is never
//! emitted under any other circumstance" (§3.2). A landmark that is *not*
//! part of a template-shaped sequence breaks that convention — a thread
//! suspended near it may be rolled back to an address that was never the
//! start of an atomic sequence. This module checks the convention
//! statically, plus the dual property: that the template set itself cannot
//! match one instruction stream two different ways.

use ras_isa::{CodeAddr, Opcode, Program};
use ras_kernel::DesignatedSet;

use crate::diag::{DiagKind, Diagnostic};

/// Explains the landmark at `pc`: the template whose shape surrounds it,
/// with the sequence start address. `None` when no template fits — the
/// collision case.
pub fn explain_landmark(
    program: &Program,
    set: &DesignatedSet,
    pc: CodeAddr,
) -> Option<(&'static str, CodeAddr)> {
    for t in set.templates() {
        let Some(start) = pc.checked_sub(t.landmark as CodeAddr) else {
            continue;
        };
        let fits = t.pattern.iter().enumerate().all(|(k, want)| {
            program
                .fetch(start + k as CodeAddr)
                .is_some_and(|got| got.opcode() == *want)
        });
        if fits {
            return Some((t.name, start));
        }
    }
    None
}

/// Flags every landmark instruction that no template explains.
pub fn lint_landmarks(program: &Program, set: &DesignatedSet) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (pc, inst) in program.code().iter().enumerate() {
        let pc = pc as CodeAddr;
        if inst.opcode() != Opcode::Landmark {
            continue;
        }
        if explain_landmark(program, set, pc).is_none() {
            let names: Vec<&str> = set.templates().iter().map(|t| t.name).collect();
            diags.push(Diagnostic::new(
                DiagKind::LandmarkCollision,
                pc,
                format!(
                    "landmark at @{pc} sits in none of the designated shapes ({}); \
                     the kernel could roll a thread suspended nearby back to a \
                     non-sequence address",
                    names.join(", ")
                ),
            ));
        }
    }
    diags
}

/// Checks the template set for ambiguity: two templates (or one template
/// against a shifted copy of itself) that can match overlapping
/// instruction streams with different sequence starts. If some suspended
/// PC is interior to both matches, the recognizer has two candidate
/// rollback addresses and picks one arbitrarily — rolling back to the
/// wrong one re-executes code the thread never entered through.
///
/// Stage 2 matches on opcodes alone, so two templates co-match iff their
/// shifted patterns agree on every shared position; ambiguity additionally
/// needs a PC at position > 0 of both patterns.
pub fn check_template_ambiguity(set: &DesignatedSet) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for a in set.templates() {
        for b in set.templates() {
            // `b` starting `d` instructions after `a`; `d = 0` is the
            // same-start case, where both candidates roll back to the same
            // address and no harm is possible.
            for d in 1..a.pattern.len() {
                let consistent =
                    b.pattern
                        .iter()
                        .enumerate()
                        .all(|(p, want)| match a.pattern.get(d + p) {
                            Some(have) => have == want,
                            None => true, // past a's end: unconstrained
                        });
                // Shared interior PC: offset o with o >= 1 (inside a) and
                // o - d >= 1 (inside b), i.e. d + 1 <= a.len() - 1.
                let shares_interior = d < a.pattern.len() - 1;
                if consistent && shares_interior {
                    diags.push(Diagnostic::new(
                        DiagKind::AmbiguousTemplates,
                        0,
                        format!(
                            "template `{}` shifted {d} instruction(s) into `{}` matches the \
                             same stream with a different rollback start; a suspension in \
                             the overlap restarts at the wrong address",
                            b.name, a.name
                        ),
                    ));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};
    use ras_kernel::SequenceTemplate;

    #[test]
    fn template_shaped_landmarks_are_explained() {
        let mut asm = Asm::new();
        asm.nop();
        ras_guest::tas::emit_tas_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        let set = DesignatedSet::standard();
        assert_eq!(explain_landmark(&p, &set, 4), Some(("tas", 1)));
        assert!(lint_landmarks(&p, &set).is_empty());
    }

    #[test]
    fn stray_landmark_is_a_collision() {
        let mut asm = Asm::new();
        asm.li(Reg::T0, 1);
        asm.landmark(); // @1: not inside any template shape
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint_landmarks(&p, &DesignatedSet::standard());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].kind, DiagKind::LandmarkCollision);
        assert_eq!(diags[0].addr, 1);
    }

    #[test]
    fn moved_landmark_breaks_the_shape() {
        // lw; landmark; li; bne; sw — the TAS shape with the landmark
        // hoisted two slots earlier. No template explains it.
        let mut asm = Asm::new();
        let out = asm.label();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.landmark(); // @1
        asm.li(Reg::T0, 1);
        asm.bnez(Reg::V0, out);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.bind(out);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint_landmarks(&p, &DesignatedSet::standard());
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].kind, DiagKind::LandmarkCollision);
        assert_eq!(diags[0].addr, 1);
    }

    #[test]
    fn standard_set_is_unambiguous() {
        assert!(check_template_ambiguity(&DesignatedSet::standard()).is_empty());
    }

    #[test]
    fn suffix_template_is_flagged_ambiguous() {
        // B = [landmark; sw] is a suffix of A = [lw; landmark; sw] shifted
        // by one: the committing store is interior to both, with rollback
        // starts one instruction apart.
        let set = DesignatedSet::new(vec![
            SequenceTemplate {
                name: "a",
                pattern: vec![Opcode::Lw, Opcode::Landmark, Opcode::Sw],
                landmark: 1,
            },
            SequenceTemplate {
                name: "b",
                pattern: vec![Opcode::Landmark, Opcode::Sw],
                landmark: 0,
            },
        ]);
        let diags = check_template_ambiguity(&set);
        assert!(
            diags.iter().any(|d| d.kind == DiagKind::AmbiguousTemplates),
            "{diags:#?}"
        );
    }

    #[test]
    fn self_overlapping_template_is_flagged() {
        // A doubled body matches itself shifted by its period.
        let set = DesignatedSet::new(vec![SequenceTemplate {
            name: "doubled",
            pattern: vec![
                Opcode::Lw,
                Opcode::Landmark,
                Opcode::Sw,
                Opcode::Lw,
                Opcode::Landmark,
                Opcode::Sw,
            ],
            landmark: 1,
        }]);
        let diags = check_template_ambiguity(&set);
        assert!(
            diags.iter().any(|d| d.kind == DiagKind::AmbiguousTemplates),
            "{diags:#?}"
        );
    }
}
