//! A control-flow graph over a [`Program`]: basic blocks, successor edges,
//! reachability, and per-block register def/use sets with a liveness
//! fixed point.
//!
//! The graph is intraprocedural in the simplest sense: `jal`/`jalr` are
//! call sites whose block falls through to the return point, and the call
//! target (when static) is also recorded as a successor edge so
//! reachability flows into callees.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use ras_isa::{CodeAddr, Inst, Program, Reg};

/// One basic block: a maximal straight-line run of instructions entered
/// only at its first instruction.
#[derive(Clone, Debug)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: CodeAddr,
    /// Exclusive end address.
    pub end: CodeAddr,
    /// Successor block start addresses (fallthrough, branch target, call
    /// target). Register-indirect jumps contribute no static successors.
    pub succs: Vec<CodeAddr>,
    /// Registers written somewhere in the block.
    pub defs: BTreeSet<Reg>,
    /// Upward-exposed uses: registers read before any write in the block.
    pub uses: BTreeSet<Reg>,
    /// Registers live on entry (filled in by the liveness fixed point).
    pub live_in: BTreeSet<Reg>,
    /// Registers live on exit.
    pub live_out: BTreeSet<Reg>,
}

impl BasicBlock {
    /// Number of instructions in the block.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the block is empty (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// The control-flow graph of one program.
#[derive(Clone, Debug)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    by_start: BTreeMap<CodeAddr, usize>,
    reachable: BTreeSet<CodeAddr>,
}

impl Cfg {
    /// Builds the graph: leader discovery, block formation, successor
    /// edges, reachability from the entry point, and the liveness fixed
    /// point over the per-block def/use sets.
    ///
    /// Reachability roots are the entry point, every named symbol (out-of-
    /// line functions are invoked by address), and every `li` immediate
    /// that names a valid code address — the idiom this ISA uses to pass
    /// thread entry points and recovery targets in registers.
    pub fn build(program: &Program) -> Cfg {
        let len = program.len() as CodeAddr;
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                by_start: BTreeMap::new(),
                reachable: BTreeSet::new(),
            };
        }

        // Leaders: first instruction, entry, symbols, static transfer
        // targets, and the instruction after any control transfer.
        let mut leaders: BTreeSet<CodeAddr> = BTreeSet::new();
        leaders.insert(0);
        leaders.insert(program.entry());
        for (_, addr) in program.symbols() {
            leaders.insert(addr);
        }
        for (pc, inst) in program.code().iter().enumerate() {
            let pc = pc as CodeAddr;
            if let Some(target) = inst.branch_target() {
                if target < len {
                    leaders.insert(target);
                }
            }
            // Control transfers and `halt` both end a block: nothing
            // falls through a halt, so what follows starts fresh.
            if (inst.is_control() || !inst.falls_through()) && pc + 1 < len {
                leaders.insert(pc + 1);
            }
            // Potential indirect targets (thread entries, function
            // pointers) are passed as li immediates; give each its own
            // block so it can act as a reachability root.
            if let Inst::Li { imm, .. } = inst {
                if *imm >= 0 && (*imm as CodeAddr) < len {
                    leaders.insert(*imm as CodeAddr);
                }
            }
        }
        leaders.retain(|&l| l < len);

        // Form blocks between consecutive leaders.
        let starts: Vec<CodeAddr> = leaders.iter().copied().collect();
        let mut blocks = Vec::with_capacity(starts.len());
        let mut by_start = BTreeMap::new();
        for (i, &start) in starts.iter().enumerate() {
            let end = starts.get(i + 1).copied().unwrap_or(len);
            by_start.insert(start, blocks.len());
            blocks.push(BasicBlock {
                start,
                end,
                succs: Vec::new(),
                defs: BTreeSet::new(),
                uses: BTreeSet::new(),
                live_in: BTreeSet::new(),
                live_out: BTreeSet::new(),
            });
        }

        // Successor edges and def/use sets.
        for block in &mut blocks {
            let last = program.fetch(block.end - 1).expect("block in bounds");
            if let Some(target) = last.branch_target() {
                if target < len {
                    block.succs.push(target);
                }
            }
            if last.falls_through() && block.end < len {
                block.succs.push(block.end);
            }
            for pc in block.start..block.end {
                let inst = program.fetch(pc).expect("block in bounds");
                for r in inst.uses() {
                    if r != Reg::ZERO && !block.defs.contains(&r) {
                        block.uses.insert(r);
                    }
                }
                if let Some(d) = inst.def() {
                    if d != Reg::ZERO {
                        block.defs.insert(d);
                    }
                }
            }
        }

        // Reachability from the roots.
        let mut reachable = BTreeSet::new();
        let mut queue: VecDeque<CodeAddr> = VecDeque::new();
        let push = |queue: &mut VecDeque<CodeAddr>, addr: CodeAddr| {
            if addr < len {
                queue.push_back(addr);
            }
        };
        push(&mut queue, program.entry());
        for (_, addr) in program.symbols() {
            push(&mut queue, addr);
        }
        for inst in program.code() {
            if let Inst::Li { imm, .. } = inst {
                if *imm >= 0 && (*imm as CodeAddr) < len {
                    push(&mut queue, *imm as CodeAddr);
                }
            }
        }
        while let Some(addr) = queue.pop_front() {
            // A root may land mid-block (e.g. an li immediate that is data,
            // not code); walk from the containing block's start.
            let Some(&bi) = by_start.get(&addr) else {
                continue;
            };
            let start = blocks[bi].start;
            if !reachable.insert(start) {
                continue;
            }
            for &s in &blocks[bi].succs {
                if let Some(&si) = by_start.get(&s) {
                    let s_start = blocks[si].start;
                    if !reachable.contains(&s_start) {
                        queue.push_back(s_start);
                    }
                }
            }
        }

        let mut cfg = Cfg {
            blocks,
            by_start,
            reachable,
        };
        cfg.solve_liveness();
        cfg
    }

    /// Backward liveness fixed point:
    /// `live_out = ∪ live_in(succ)`, `live_in = uses ∪ (live_out − defs)`.
    fn solve_liveness(&mut self) {
        let mut changed = true;
        while changed {
            changed = false;
            for i in (0..self.blocks.len()).rev() {
                let mut out = BTreeSet::new();
                for &s in &self.blocks[i].succs {
                    if let Some(&si) = self.by_start.get(&s) {
                        out.extend(self.blocks[si].live_in.iter().copied());
                    }
                }
                let block = &self.blocks[i];
                let mut live_in = block.uses.clone();
                live_in.extend(out.difference(&block.defs).copied());
                let block = &mut self.blocks[i];
                if out != block.live_out || live_in != block.live_in {
                    block.live_out = out;
                    block.live_in = live_in;
                    changed = true;
                }
            }
        }
    }

    /// All blocks, in address order.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block containing `pc`, if any.
    pub fn block_of(&self, pc: CodeAddr) -> Option<&BasicBlock> {
        let (_, &i) = self.by_start.range(..=pc).next_back()?;
        let b = &self.blocks[i];
        (pc < b.end).then_some(b)
    }

    /// Whether the block containing `pc` is reachable from any root.
    pub fn is_reachable(&self, pc: CodeAddr) -> bool {
        self.block_of(pc)
            .is_some_and(|b| self.reachable.contains(&b.start))
    }

    /// Block start addresses reachable from the roots.
    pub fn reachable_blocks(&self) -> impl Iterator<Item = CodeAddr> + '_ {
        self.reachable.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};

    fn loop_program() -> Program {
        let mut asm = Asm::new();
        let top = asm.label();
        asm.li(Reg::T0, 3); // @0  block A
        asm.bind(top);
        asm.addi(Reg::T0, Reg::T0, -1); // @1  block B
        asm.bnez(Reg::T0, top); // @2
        asm.halt(); // @3  block C
        asm.finish().unwrap()
    }

    #[test]
    fn blocks_split_at_branches_and_targets() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        let starts: Vec<CodeAddr> = cfg.blocks().iter().map(|b| b.start).collect();
        assert_eq!(starts, vec![0, 1, 3]);
        let b = cfg.block_of(2).unwrap();
        assert_eq!(b.start, 1);
        assert_eq!(b.succs, vec![1, 3], "loop back-edge plus fallthrough");
        assert!(cfg.block_of(99).is_none());
    }

    #[test]
    fn reachability_covers_the_loop_and_not_orphans() {
        let mut asm = Asm::new();
        asm.j_to(2); // @0: skip over the orphan
        asm.nop(); // @1: unreachable (no symbol, no target)
        asm.halt(); // @2
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(2));
    }

    #[test]
    fn def_use_and_liveness() {
        let p = loop_program();
        let cfg = Cfg::build(&p);
        let a = cfg.block_of(0).unwrap();
        assert!(a.defs.contains(&Reg::T0));
        assert!(a.uses.is_empty(), "t0 is defined before use in block A");
        let b = cfg.block_of(1).unwrap();
        assert!(
            b.uses.contains(&Reg::T0),
            "the decrement reads t0 before writing it"
        );
        assert!(
            b.live_in.contains(&Reg::T0),
            "t0 must be live around the loop"
        );
        assert!(!a.live_in.contains(&Reg::T0));
    }

    #[test]
    fn liveness_converges_across_nested_backward_branches() {
        // Two nested loops: the backward fixpoint's worst case, where a
        // register used only *after* both loops must ripple backward
        // around two back edges before the solution stabilizes.
        let mut asm = Asm::new();
        asm.li(Reg::S0, 5); // @0: A
        let outer = asm.bind_new();
        asm.li(Reg::T0, 3); // @1: B, outer loop head
        let inner = asm.bind_new();
        asm.addi(Reg::T0, Reg::T0, -1); // @2: C, inner loop body
        asm.bnez(Reg::T0, inner); // @3
        asm.addi(Reg::S0, Reg::S0, -1); // @4: D
        asm.bnez(Reg::S0, outer); // @5
        asm.add(Reg::V0, Reg::S0, Reg::S1); // @6: E, first use of $s1
        asm.halt(); // @7
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        // $s1 is never defined: it must be live-in everywhere from the
        // entry through both loops down to its use.
        for start in [0u32, 1, 2, 4, 6] {
            let b = cfg.block_of(start).unwrap();
            assert!(
                b.live_in.contains(&Reg::S1),
                "$s1 must be live through block @{start}: {:?}",
                b.live_in
            );
        }
        // $s0 is defined in A and used in D/E but neither used nor
        // defined in the inner loop — liveness must still carry it
        // around the inner back edge.
        let c = cfg.block_of(2).unwrap();
        assert!(c.live_in.contains(&Reg::S0), "{:?}", c.live_in);
        assert!(c.live_out.contains(&Reg::S0));
        // $t0 dies at the inner-loop exit: D never reads it.
        let d = cfg.block_of(4).unwrap();
        assert!(!d.live_in.contains(&Reg::T0), "{:?}", d.live_in);
    }

    #[test]
    fn unreachable_block_uses_do_not_leak_into_reachable_liveness() {
        let mut asm = Asm::new();
        asm.li(Reg::T0, 1); // @0: reachable
        asm.halt(); // @1
        asm.lw(Reg::T7, Reg::A0, 0); // @2: orphan, uses $a0
        asm.sw(Reg::T7, Reg::A0, 4);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert!(!cfg.is_reachable(2));
        // The orphan's own solution is still well-defined (its uses are
        // live on its entry)...
        let orphan = cfg.block_of(2).unwrap();
        assert!(orphan.live_in.contains(&Reg::A0), "{:?}", orphan.live_in);
        // ...but with no edge into it, nothing propagates backward into
        // the reachable entry block.
        let entry = cfg.block_of(0).unwrap();
        assert!(entry.live_out.is_empty(), "{:?}", entry.live_out);
        assert!(!entry.live_in.contains(&Reg::A0));
    }

    #[test]
    fn li_immediates_seed_reachability() {
        let mut asm = Asm::new();
        // main: pass @3 as a function pointer, then halt.
        asm.li(Reg::A0, 3); // @0
        asm.halt(); // @1
        asm.nop(); // @2: plain orphan
        asm.jr(Reg::RA); // @3: "function" only named by the li
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        assert!(!cfg.is_reachable(2));
        assert!(cfg.is_reachable(3), "li-immediate root");
    }

    #[test]
    fn calls_record_both_successors() {
        let mut asm = Asm::new();
        asm.jal_to(2); // @0
        asm.halt(); // @1
        asm.jr(Reg::RA); // @2
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let entry = cfg.block_of(0).unwrap();
        assert_eq!(entry.succs, vec![2, 1]);
    }
}
