//! # ras-analyze — static restartability verification for guest programs
//!
//! The paper's mechanisms hinge on properties the kernel *assumes* but
//! never checks: a registered sequence really is restartable (its sole
//! side effect is its final store, §3.1), the landmark no-op "is never
//! emitted under any other circumstance" (§3.2), and the template set
//! recognizes each sequence exactly one way. This crate checks all of
//! them ahead of time, over any [`ras_isa::Program`]:
//!
//! * [`mod@cfg`] — basic blocks, successors, reachability, and a register
//!   liveness fixed point; the substrate for the other passes.
//! * [`verify`] — the restartability verifier proper: every declared
//!   [`ras_isa::SeqRange`] must commit through a unique final store, keep
//!   its prefix free of side effects, branch only forward and out, never
//!   clobber a live-in register, and never be entered mid-sequence.
//! * [`landmark`] — the landmark-collision lint and the
//!   template-ambiguity check over a [`ras_kernel::DesignatedSet`].
//! * [`mod@absint`] — a forward abstract-interpretation engine (worklist
//!   fixpoint over a join-semilattice) shared by the dataflow passes.
//! * [`mod@lockset`] — which locks are provably held where, per-word
//!   race/protection verdicts, and lock-discipline lints (double acquire,
//!   release-while-not-held, leak at thread exit, inconsistent order).
//! * [`mod@infer`] — sequence inference: the widest load→modify→store
//!   windows the restartability verifier accepts, proposed as declarable
//!   [`ras_isa::SeqRange`]s (`ras-lint --infer`).
//! * [`races`] — the read-modify-write lint: the paper's motivating bug,
//!   found statically and classified three ways (protected / proven racy
//!   / unknown) using the lockset verdicts.
//! * [`mod@abort_safety`] — the rseq abort-handler safety verifier:
//!   window shape per descriptor, plus a dataflow walk from every
//!   `abort_ip` proving the handler performs no visible side effects,
//!   touches no lock-protected words, and never re-enters a window
//!   without republishing its descriptor.
//!
//! [`analyze`] runs everything and returns the findings sorted by
//! address; the `ras-lint` binary wraps it for `.s` files on disk.

pub mod abort_safety;
pub mod absint;
pub mod cfg;
pub mod diag;
pub mod infer;
pub mod landmark;
pub mod lockset;
pub mod races;
pub mod sweep;
pub mod verify;

pub use abort_safety::abort_safety;
pub use cfg::{BasicBlock, Cfg};
pub use diag::{json_escape, render_json, DiagKind, Diagnostic, Severity};
pub use infer::{infer_sequences, InferredSeq};
pub use landmark::{check_template_ambiguity, explain_landmark, lint_landmarks};
pub use lockset::{lockset, LocksetAnalysis, LocksetConfig, WordVerdict};
pub use races::{lint_races, rmw_diags};
pub use sweep::{bundled_workloads, WorkloadTarget};
pub use verify::{restartable_opcode, verify_declared, verify_sequence};

use ras_isa::Program;
use ras_kernel::DesignatedSet;

/// Everything one analysis run produces.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The control-flow graph built for the passes (kept for callers that
    /// want reachability or liveness answers alongside the findings).
    pub cfg: Cfg,
    /// All findings, sorted by address, errors before warnings at the
    /// same address.
    pub diags: Vec<Diagnostic>,
    /// The lockset run behind the race verdicts: per-word conclusions,
    /// observed read-modify-write windows, and whether race proofs were
    /// enabled. Its diagnostics are already merged into [`Self::diags`].
    pub lockset: LocksetAnalysis,
}

impl Analysis {
    /// Whether any finding is an error (a violated mechanism rule, as
    /// opposed to a suspicious-but-unprovable warning).
    pub fn has_errors(&self) -> bool {
        self.diags.iter().any(|d| d.severity() == Severity::Error)
    }

    /// The error findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// The warning findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }
}

/// Runs every pass over `program` against the given designated set.
pub fn analyze(program: &Program, set: &DesignatedSet) -> Analysis {
    let cfg = Cfg::build(program);
    let config = LocksetConfig::standard(program, set);
    let ls = lockset::lockset(program, &cfg, &config);
    let mut diags = check_template_ambiguity(set);
    diags.extend(verify_declared(program));
    diags.extend(lint_landmarks(program, set));
    diags.extend(rmw_diags(program, set, &ls));
    diags.extend(abort_safety::abort_safety(program, &cfg, &ls));
    diags.extend(ls.diags.iter().cloned());
    diags.sort_by_key(|d| (d.addr, d.severity() == Severity::Warning, d.kind.code()));
    Analysis {
        cfg,
        diags,
        lockset: ls,
    }
}

/// [`analyze`] against [`DesignatedSet::standard`], the set the kernel
/// actually runs.
pub fn analyze_standard(program: &Program) -> Analysis {
    analyze(program, &DesignatedSet::standard())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg, SeqRange};

    #[test]
    fn clean_designated_program_has_no_findings() {
        let mut asm = Asm::new();
        asm.nop();
        ras_guest::tas::emit_tas_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        let a = analyze_standard(&p);
        assert!(a.diags.is_empty(), "{:#?}", a.diags);
        assert!(!a.has_errors());
    }

    #[test]
    fn findings_are_sorted_and_classified() {
        let mut asm = Asm::new();
        // An unprotected RMW (warning, @0)...
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        // ...and a stray landmark (error, @3).
        asm.landmark();
        asm.halt();
        let p = asm.finish().unwrap();
        let a = analyze_standard(&p);
        let kinds: Vec<DiagKind> = a.diags.iter().map(|d| d.kind).collect();
        assert_eq!(
            kinds,
            vec![DiagKind::UnprotectedRmw, DiagKind::LandmarkCollision]
        );
        assert!(a.has_errors());
        assert_eq!(a.errors().count(), 1);
        assert_eq!(a.warnings().count(), 1);
    }

    #[test]
    fn declared_but_broken_sequence_is_an_error() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.syscall(); // inside the declared range: not restartable
        asm.halt();
        asm.declare_seq(SeqRange { start: 0, len: 3 });
        let p = asm.finish().unwrap();
        let a = analyze_standard(&p);
        assert!(a.has_errors());
        assert!(a
            .diags
            .iter()
            .any(|d| d.kind == DiagKind::SideEffectInPrefix));
        assert!(a.diags.iter().any(|d| d.kind == DiagKind::StoreNotLast));
    }
}
