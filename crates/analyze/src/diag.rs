//! Diagnostics — re-exported from the shared [`ras_diag`] crate so the
//! static verifier and the `ras-model` dynamic checker report findings
//! through one severity enum and one rendering path.
//!
//! Existing callers keep using `ras_analyze::{DiagKind, Diagnostic,
//! Severity}`; the types are identical.

pub use ras_diag::{json_escape, render_json, DiagKind, Diagnostic, Severity};
