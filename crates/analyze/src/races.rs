//! The read-modify-write race lint, three ways.
//!
//! The paper's motivating bug (§1): on a uniprocessor, `lw; modify; sw`
//! to a shared word is atomic only until the scheduler preempts between
//! the load and the store. The [`crate::lockset()`] pass discovers every
//! such window along with its protection context; this pass turns each
//! one into a verdict:
//!
//! * **silent** — the window is covered by a declared restartable
//!   sequence, a designated-sequence template match at the committing
//!   store (landmark + shape — the Taos recognizer would roll it back),
//!   an uncommitted `begin_atomic` hardware window (tracked across block
//!   boundaries through the dataflow facts), or a lock provably held
//!   from the load through the store;
//! * **error** ([`DiagKind::RacyRmw`]) — the window's word is proven
//!   [`WordVerdict::Racy`]: concurrent threads reach it with no possible
//!   common lock, so the lost update is not a maybe;
//! * **warning** ([`DiagKind::UnprotectedRmw`]) — everything in between:
//!   the analysis can prove neither protection nor a race, and a human
//!   must look.

use ras_isa::{CodeAddr, Inst, Program};
use ras_kernel::DesignatedSet;

use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic};
use crate::lockset::{lockset, LocksetAnalysis, LocksetConfig, WordVerdict};

/// Whether `pc` falls in a sync-runtime-internal region: code between a
/// `__`-prefixed symbol and the next symbol. The `ras-guest` runtime
/// names every helper it emits this way (`__mutex_acquire`,
/// `__cv_signal`, `__lamport_enter`, …); those bodies are the trusted
/// implementation of the mechanism — a condition variable's sequence
/// bump runs under the caller's mutex by documented convention — and the
/// unprovable-window *warning* is aimed at user code. Proven races
/// ([`DiagKind::RacyRmw`]) are never exempted.
fn runtime_internal(program: &Program, pc: CodeAddr) -> bool {
    program
        .symbols()
        .filter(|&(_, addr)| addr <= pc)
        .max_by_key(|&(_, addr)| addr)
        .is_some_and(|(name, _)| name.starts_with("__"))
}

/// Classifies every read-modify-write window `ls` observed. `set` is the
/// designated-template set the kernel will match at runtime.
pub fn rmw_diags(program: &Program, set: &DesignatedSet, ls: &LocksetAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for w in &ls.windows {
        let declared = program
            .seq_ranges()
            .iter()
            .any(|r| r.contains(w.load_pc) && r.contains(w.store_pc));
        if declared || set.stage2(program, w.store_pc).is_some() || w.hw_window || w.lock_protected
        {
            continue;
        }
        let Some(Inst::Lw { base, off, .. }) = program.fetch(w.load_pc) else {
            continue;
        };
        let proven_racy = w
            .word
            .is_some_and(|word| ls.verdicts.get(&word) == Some(&WordVerdict::Racy));
        if proven_racy {
            let word = w.word.expect("racy windows have a resolved word");
            diags.push(Diagnostic::new(
                DiagKind::RacyRmw,
                w.load_pc,
                format!(
                    "read-modify-write race on shared word 0x{word:x}: loaded at \
                     @{} and stored back at @{}, and concurrent threads reach \
                     this word holding no common lock; a preemption inside the \
                     window loses an update",
                    w.load_pc, w.store_pc
                ),
            ));
        } else {
            if runtime_internal(program, w.load_pc) {
                continue;
            }
            diags.push(Diagnostic::new(
                DiagKind::UnprotectedRmw,
                w.load_pc,
                format!(
                    "value loaded from ({base}{off:+}) at @{} is stored back at @{} \
                     with no declared sequence, designated shape, or hardware \
                     atomic bit covering the window; preemption in between loses \
                     a concurrent update",
                    w.load_pc, w.store_pc
                ),
            ));
        }
    }
    diags.sort_by_key(|d| d.addr);
    diags
}

/// Runs the lockset analysis under the standard configuration and lints
/// the windows it finds. Callers that want the lock-discipline findings
/// and word verdicts too should run [`lockset`] once and use
/// [`rmw_diags`] directly (as [`crate::analyze`] does).
pub fn lint_races(program: &Program, set: &DesignatedSet, cfg: &Cfg) -> Vec<Diagnostic> {
    let config = LocksetConfig::standard(program, set);
    let ls = lockset(program, cfg, &config);
    rmw_diags(program, set, &ls)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{abi, Asm, Reg, SeqRange};

    fn lint(p: &Program) -> Vec<Diagnostic> {
        lint_races(p, &DesignatedSet::standard(), &Cfg::build(p))
    }

    #[test]
    fn naive_counter_increment_is_flagged() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0); // @0
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].kind, DiagKind::UnprotectedRmw);
        assert_eq!(diags[0].addr, 0, "anchored at the load");
    }

    #[test]
    fn declared_sequence_suppresses_the_warning() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        asm.declare_seq(SeqRange { start: 0, len: 3 });
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn designated_shape_suppresses_the_warning() {
        // The faa template, with no declared range: the landmark itself is
        // the protection (the Taos kernel would roll the window back).
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.landmark();
        asm.sw(Reg::V0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn begin_atomic_suppresses_the_warning() {
        let mut asm = Asm::new();
        asm.begin_atomic();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.sw(Reg::V0, Reg::A0, 0);
        // A second, uncovered window after the bit cleared: flagged.
        asm.lw(Reg::T1, Reg::A0, 0);
        asm.sw(Reg::T1, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].addr, 4);
    }

    #[test]
    fn begin_atomic_covers_windows_across_block_boundaries() {
        // The hardware bit holds until the next store, *through* control
        // flow: a branch between `begin_atomic` and the window must not
        // lose it. (A block-local scan would flag this.)
        let mut asm = Asm::new();
        let go = asm.label();
        asm.begin_atomic(); // @0
        asm.beqz(Reg::T5, go); // @1: block boundary inside the window
        asm.bind(go);
        asm.lw(Reg::V0, Reg::A0, 0); // @2
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.sw(Reg::V0, Reg::A0, 0); // @4: first store clears the bit
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty(), "{:#?}", lint(&p));
    }

    #[test]
    fn lock_held_across_the_window_suppresses_the_warning() {
        // Acquire a kernel-emulated TAS lock, then an otherwise-naive
        // increment: the lockset proves the window protected.
        let mut asm = Asm::new();
        let acquired = asm.label();
        asm.li(Reg::A0, 0x0);
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.syscall();
        asm.beqz(Reg::V0, acquired);
        asm.halt();
        asm.bind(acquired);
        asm.li(Reg::T1, 0x8);
        asm.lw(Reg::T0, Reg::T1, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::T1, 0);
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty(), "{:#?}", lint(&p));
    }

    #[test]
    fn proven_concurrent_window_is_an_error_not_a_warning() {
        // Two threads (spawn discovery) increment a shared word with no
        // lock anywhere: the window upgrades to a RacyRmw error.
        let mut asm = Asm::new();
        let worker = asm.label();
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li_label(Reg::A0, worker);
        asm.syscall();
        asm.bind(worker);
        asm.li(Reg::T1, 0x4);
        asm.lw(Reg::T0, Reg::T1, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::T1, 0);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].kind, DiagKind::RacyRmw);
    }

    #[test]
    fn different_words_do_not_alias() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.sw(Reg::T0, Reg::A0, 4); // copy to the next word: not an RMW
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn redefined_base_kills_the_taint() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.li(Reg::A0, 64); // a0 now names a different word
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn calls_between_load_and_store_reset_tracking() {
        // lw; jal lock; sw — the call clobbers the caller-saved taint, so
        // no warning (and an acquire-summarized callee would protect it).
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0); // @0
        asm.jal_to(4); // @1
        asm.sw(Reg::T0, Reg::A0, 0); // @2
        asm.halt(); // @3
        asm.jr(Reg::RA); // @4 "lock"
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn taint_propagates_through_alu() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.add(Reg::T1, Reg::T0, Reg::T2); // taint flows t0 -> t1
        asm.sw(Reg::T1, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].kind, DiagKind::UnprotectedRmw);
    }

    #[test]
    fn unreachable_blocks_are_not_linted() {
        let mut asm = Asm::new();
        asm.halt(); // @0: entry halts immediately
        asm.lw(Reg::T0, Reg::A0, 0); // @1..: orphan racy window
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }
}
