//! The unprotected read-modify-write lint.
//!
//! The paper's motivating bug (§1): on a uniprocessor, `lw; modify; sw`
//! to a shared word is atomic only until the scheduler preempts between
//! the load and the store. This pass finds such windows and checks them
//! against every protection the toolchain knows about:
//!
//! * a declared restartable sequence covering the whole window;
//! * a designated-sequence template match at the committing store
//!   (landmark + shape — the Taos recognizer would roll it back);
//! * a preceding `begin_atomic` in the same block (the i860 hardware bit
//!   holds until the next store).
//!
//! Anything else is flagged as a **warning**, not an error: the analysis
//! cannot see locks, so a mutex-protected counter update looks identical
//! to a racy one. The warning marks every place a human (or the paper's
//! authors, auditing Taos) must look.

use std::collections::BTreeMap;

use ras_isa::{CodeAddr, Inst, Program, Reg};
use ras_kernel::DesignatedSet;

use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic};

/// Where a tainted register value came from: a load at `load_pc` of
/// `mem[base + off]`.
#[derive(Copy, Clone, Debug)]
struct Taint {
    load_pc: CodeAddr,
    base: Reg,
    off: i32,
}

/// Scans every reachable block for naive load-modify-store windows on the
/// same memory word with no visible protection.
pub fn lint_races(program: &Program, set: &DesignatedSet, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for block in cfg.blocks() {
        if !cfg.is_reachable(block.start) {
            continue;
        }
        // Taint per destination register, tracked only within the block:
        // control transfers (calls included, so lock acquisitions) clear
        // the state by ending the block.
        let mut taints: BTreeMap<Reg, Taint> = BTreeMap::new();
        let mut hardware_bit = false;
        for pc in block.start..block.end {
            let Some(inst) = program.fetch(pc) else { break };
            match inst {
                Inst::BeginAtomic => hardware_bit = true,
                Inst::Lw { rd, base, off } => {
                    // Redefining a register kills taints based on it.
                    taints.retain(|_, t| t.base != rd);
                    taints.insert(
                        rd,
                        Taint {
                            load_pc: pc,
                            base,
                            off,
                        },
                    );
                }
                Inst::Alu { rd, rs, rt, .. } => {
                    let carried = taints.get(&rs).or_else(|| taints.get(&rt)).copied();
                    taints.retain(|_, t| t.base != rd);
                    match carried {
                        Some(t) => {
                            taints.insert(rd, t);
                        }
                        None => {
                            taints.remove(&rd);
                        }
                    }
                }
                Inst::AluI { rd, rs, .. } => {
                    let carried = taints.get(&rs).copied();
                    taints.retain(|_, t| t.base != rd);
                    match carried {
                        Some(t) => {
                            taints.insert(rd, t);
                        }
                        None => {
                            taints.remove(&rd);
                        }
                    }
                }
                Inst::Sw { rs, base, off } => {
                    if let Some(t) = taints.get(&rs).copied() {
                        if t.base == base
                            && t.off == off
                            && !is_protected(program, set, t.load_pc, pc, hardware_bit)
                        {
                            diags.push(Diagnostic::new(
                                DiagKind::UnprotectedRmw,
                                t.load_pc,
                                format!(
                                    "value loaded from ({base}{off:+}) at @{} is stored back at @{pc} \
                                     with no declared sequence, designated shape, or hardware \
                                     atomic bit covering the window; preemption in between loses \
                                     a concurrent update",
                                    t.load_pc
                                ),
                            ));
                        }
                    }
                    // The i860 bit clears at the first store.
                    hardware_bit = false;
                }
                _ => {
                    if let Some(rd) = inst.def() {
                        taints.retain(|_, t| t.base != rd);
                        taints.remove(&rd);
                    }
                }
            }
        }
    }
    diags
}

/// Whether the `[load_pc, store_pc]` window is covered by some protection
/// the analysis can see.
fn is_protected(
    program: &Program,
    set: &DesignatedSet,
    load_pc: CodeAddr,
    store_pc: CodeAddr,
    hardware_bit: bool,
) -> bool {
    if hardware_bit {
        return true;
    }
    if program
        .seq_ranges()
        .iter()
        .any(|r| r.contains(load_pc) && r.contains(store_pc))
    {
        return true;
    }
    // The committing store of a designated sequence is interior to the
    // template match, so stage 2 recognizes it directly.
    set.stage2(program, store_pc).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg, SeqRange};

    fn lint(p: &Program) -> Vec<Diagnostic> {
        lint_races(p, &DesignatedSet::standard(), &Cfg::build(p))
    }

    #[test]
    fn naive_counter_increment_is_flagged() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0); // @0
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].kind, DiagKind::UnprotectedRmw);
        assert_eq!(diags[0].addr, 0, "anchored at the load");
    }

    #[test]
    fn declared_sequence_suppresses_the_warning() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        asm.declare_seq(SeqRange { start: 0, len: 3 });
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn designated_shape_suppresses_the_warning() {
        // The faa template, with no declared range: the landmark itself is
        // the protection (the Taos kernel would roll the window back).
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.landmark();
        asm.sw(Reg::V0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn begin_atomic_suppresses_the_warning() {
        let mut asm = Asm::new();
        asm.begin_atomic();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        // A second, uncovered window after the bit cleared: flagged.
        asm.lw(Reg::T1, Reg::A0, 0);
        asm.sw(Reg::T1, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].addr, 4);
    }

    #[test]
    fn different_words_do_not_alias() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.sw(Reg::T0, Reg::A0, 4); // copy to the next word: not an RMW
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn redefined_base_kills_the_taint() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.li(Reg::A0, 64); // a0 now names a different word
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn calls_between_load_and_store_reset_tracking() {
        // lw; jal lock; sw — the call may acquire a lock; the block break
        // clears the taint, so no warning.
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0); // @0
        asm.jal_to(4); // @1
        asm.sw(Reg::T0, Reg::A0, 0); // @2
        asm.halt(); // @3
        asm.jr(Reg::RA); // @4 "lock"
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }

    #[test]
    fn taint_propagates_through_alu() {
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.add(Reg::T1, Reg::T0, Reg::T2); // taint flows t0 -> t1
        asm.sw(Reg::T1, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = lint(&p);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].kind, DiagKind::UnprotectedRmw);
    }

    #[test]
    fn unreachable_blocks_are_not_linted() {
        let mut asm = Asm::new();
        asm.halt(); // @0: entry halts immediately
        asm.lw(Reg::T0, Reg::A0, 0); // @1..: orphan racy window
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        let p = asm.finish().unwrap();
        assert!(lint(&p).is_empty());
    }
}
