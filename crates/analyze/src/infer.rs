//! Sequence inference — discovering restartable windows instead of
//! verifying declared ones.
//!
//! §3.1 gives the rules a restartable atomic sequence must obey; the
//! [`crate::verify`] pass checks them for *declared* ranges. This pass
//! inverts the question: given a bare program, which load→modify→store
//! windows *could* be declared? For every store it scans backward for a
//! load of the same word and proposes the widest candidate range that
//! the restartability verifier accepts unchanged — so every proposal is,
//! by construction, a legal `SYS_RAS_REGISTER` argument.
//!
//! Ranges the programmer already declared come back marked
//! [`InferredSeq::already_declared`]; on the bundled guest workloads the
//! inference reproduces each hand-declared [`SeqRange`] exactly (the
//! cross-validation tests pin this down).

use ras_isa::{Inst, Program, SeqRange};

use crate::verify::verify_sequence;

/// How far back from a committing store the opening load may sit, in
/// instructions. Matches the dynamic recognizer's small-window
/// assumption: real TAS bodies are 3–5 instructions, and a wider net
/// only proposes windows no kernel template would ever match.
pub const LOOKBACK: u32 = 16;

/// One proposed restartable sequence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InferredSeq {
    /// The window, phrased exactly as a declaration would be.
    pub range: SeqRange,
    /// Whether the program already declares this exact range.
    pub already_declared: bool,
}

/// Proposes restartable sequences for every load→modify→store window in
/// `program`, sorted by start address.
///
/// For each store `sw rs, off(base)` at `S`, candidate ranges
/// `[L..S]` are formed from each earlier `lw rd, off(base)` within
/// [`LOOKBACK`] instructions — widest first, so the proposal is maximal
/// — and the first candidate that [`verify_sequence`] accepts with no
/// findings wins. A candidate that overlaps a declared range without
/// matching it, or an already-accepted proposal, is skipped: the
/// declaration is the authority on its own window, and two proposals
/// must not hand the kernel two rollback targets for one suspension.
pub fn infer_sequences(program: &Program) -> Vec<InferredSeq> {
    let declared = program.seq_ranges();
    let mut found: Vec<InferredSeq> = Vec::new();
    for pc in 0..program.code().len() as u32 {
        let Some(Inst::Sw { base, off, .. }) = program.fetch(pc) else {
            continue;
        };
        let lo = pc.saturating_sub(LOOKBACK);
        for load_pc in lo..pc {
            let opens = matches!(
                program.fetch(load_pc),
                Some(Inst::Lw {
                    base: b, off: o, ..
                }) if b == base && o == off
            );
            if !opens {
                continue;
            }
            let range = SeqRange {
                start: load_pc,
                len: pc - load_pc + 1,
            };
            let conflicts = declared.iter().any(|&d| d.overlaps(range) && d != range)
                || found.iter().any(|i| i.range.overlaps(range));
            if conflicts || !verify_sequence(program, range).is_empty() {
                continue;
            }
            found.push(InferredSeq {
                range,
                already_declared: declared.contains(&range),
            });
            break;
        }
    }
    found.sort_by_key(|i| (i.range.start, i.range.len));
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};

    fn infer(p: &Program) -> Vec<InferredSeq> {
        infer_sequences(p)
    }

    #[test]
    fn figure_4_window_is_rediscovered() {
        // lw; li; sw with no declaration: the proposal is the exact
        // Figure 4 range.
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.jr(Reg::RA);
        let p = asm.finish().unwrap();
        let got = infer(&p);
        assert_eq!(
            got,
            vec![InferredSeq {
                range: SeqRange { start: 0, len: 3 },
                already_declared: false,
            }]
        );
    }

    #[test]
    fn declared_ranges_come_back_marked() {
        let mut asm = Asm::new();
        asm.nop();
        let declared = ras_guest::tas::emit_tas_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        let got = infer(&p);
        assert_eq!(got.len(), 1, "{got:#?}");
        assert_eq!(got[0].range, declared);
        assert!(got[0].already_declared);
    }

    #[test]
    fn every_hand_written_tas_shape_is_reproduced_exactly() {
        // One program holding all five emitters' shapes; inference must
        // return each declared range verbatim and nothing else.
        let mut asm = Asm::new();
        asm.halt();
        let mut declared = Vec::new();
        let (_, r) = ras_guest::tas::emit_tas_registered(&mut asm);
        declared.push(r);
        asm.jr(Reg::RA);
        declared.push(ras_guest::tas::emit_tas_inline(&mut asm));
        asm.jr(Reg::RA);
        declared.push(ras_guest::tas::emit_xchg_inline(&mut asm));
        asm.jr(Reg::RA);
        declared.push(ras_guest::tas::emit_cas_inline(&mut asm));
        asm.jr(Reg::RA);
        declared.push(ras_guest::tas::emit_faa_inline(&mut asm, 1));
        asm.jr(Reg::RA);
        let p = asm.finish().unwrap();
        let got = infer(&p);
        let mut want: Vec<SeqRange> = declared.clone();
        want.sort_by_key(|r| r.start);
        assert_eq!(
            got.iter().map(|i| i.range).collect::<Vec<_>>(),
            want,
            "{got:#?}"
        );
        assert!(got.iter().all(|i| i.already_declared), "{got:#?}");
    }

    #[test]
    fn side_effect_in_the_window_blocks_the_proposal() {
        // lw; syscall; sw — rule 2 forbids the syscall, so no candidate
        // verifies and nothing is proposed.
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0);
        asm.syscall();
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(infer(&p).is_empty());
    }

    #[test]
    fn back_to_back_windows_split_at_the_stores() {
        // Two adjacent increments: the widest candidate for the second
        // store reaches the first load but contains two stores, so the
        // oracle rejects it and the proposal narrows to its own window.
        let mut asm = Asm::new();
        asm.lw(Reg::T0, Reg::A0, 0); // @0
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0); // @2
        asm.lw(Reg::T1, Reg::A0, 0); // @3
        asm.addi(Reg::T1, Reg::T1, 1);
        asm.sw(Reg::T1, Reg::A0, 0); // @5
        asm.halt();
        let p = asm.finish().unwrap();
        let ranges: Vec<SeqRange> = infer(&p).iter().map(|i| i.range).collect();
        assert_eq!(
            ranges,
            vec![SeqRange { start: 0, len: 3 }, SeqRange { start: 3, len: 3 },]
        );
    }

    #[test]
    fn a_jump_into_the_interior_blocks_the_proposal() {
        // Rule 5: a branch target inside the window means a thread can
        // enter mid-sequence, where a rollback would replay too much.
        let mut asm = Asm::new();
        let mid = asm.label();
        asm.lw(Reg::T0, Reg::A0, 0); // @0
        asm.bind(mid);
        asm.addi(Reg::T0, Reg::T0, 1); // @1: jump target inside
        asm.sw(Reg::T0, Reg::A0, 0); // @2
        asm.beqz(Reg::T1, mid); // @3: jumps into [0..3)
        asm.halt();
        let p = asm.finish().unwrap();
        assert!(infer(&p).is_empty(), "{:#?}", infer(&p));
    }

    #[test]
    fn candidates_overlapping_a_declaration_defer_to_it() {
        // The program declares [1..4); a second store at @5 reuses the
        // same base and would widen back across the declared window.
        // The proposal must stop at the declaration's edge.
        let mut asm = Asm::new();
        asm.nop(); // @0
        asm.lw(Reg::T0, Reg::A0, 0); // @1 ─┐ declared
        asm.addi(Reg::T0, Reg::T0, 1); // @2  │
        asm.sw(Reg::T0, Reg::A0, 0); // @3 ─┘
        asm.lw(Reg::T1, Reg::A0, 0); // @4
        asm.sw(Reg::T1, Reg::A0, 0); // @5
        asm.halt();
        asm.declare_seq(SeqRange { start: 1, len: 3 });
        let p = asm.finish().unwrap();
        let got = infer(&p);
        assert_eq!(got.len(), 2, "{got:#?}");
        assert_eq!(got[0].range, SeqRange { start: 1, len: 3 });
        assert!(got[0].already_declared);
        assert_eq!(got[1].range, SeqRange { start: 4, len: 2 });
        assert!(!got[1].already_declared);
    }
}
