//! Lockset analysis: which locks are provably held at every program
//! point, and what that implies per shared word.
//!
//! This is an abstract interpretation over the [`crate::absint`] engine.
//! The domain tracks, per register, a flat value lattice rich enough to
//! recognize the lock idioms `ras-guest` emits — constants (lock
//! addresses arrive via `li`), the stack pointer, and *Test-And-Set
//! results*: the old value of a lock word produced by any of the paper's
//! atomic mechanisms (a registered or designated restartable sequence, the
//! kernel-emulated `SYS_TAS` trap, the interlocked `tas` instruction, or
//! an `begin_atomic` hardware window, §2–§4). Alongside registers it
//! tracks *must*-held locks (intersection at joins) and *may*-held locks
//! (union), plus the hardware-atomic window bit and the load→store taints
//! the read-modify-write lint consumes.
//!
//! A lock acquisition is the zero edge of a branch testing a Test-And-Set
//! result: the "old value was zero, the lock is now mine" outcome of
//! Figure 5's `if (!tas(lock)) …`. A release is `sw $zero` back to the
//! lock word. Runtime entry points that encapsulate these idioms
//! (`__mutex_acquire`, `__lamport_enter`, …) are summarized by name at
//! call-return edges.
//!
//! Interprocedural strategy: call edges are *not* followed. Each thread
//! root (the program entry and every statically-discovered `SYS_SPAWN`
//! target) gets its own fixpoint instance, as does every other symbol
//! (library functions, analyzed with opaque arguments) — keeping one
//! caller's facts from polluting another's. Word verdicts are computed
//! from the thread-root instances only; library instances still feed the
//! lint passes.
//!
//! The per-word verdicts mirror the dynamic detector in `ras-model`
//! exactly (the cross-validation tests in this crate hold the two to
//! equality): a word with any atomic access is [`WordVerdict::Sync`]; a
//! word whose every access shares a must-held lock is
//! [`WordVerdict::Protected`]; a word touched by concurrent thread roots
//! with no possible lock anywhere is [`WordVerdict::Racy`] — provably a
//! data race; anything in between stays [`WordVerdict::Unknown`].

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use ras_isa::{abi, idiom, AluOp, CodeAddr, Cond, DataAddr, Inst, Program, Reg, SeqRange};
use ras_kernel::DesignatedSet;

use crate::absint::{self, AbsDomain, Edge, JoinSemiLattice, Solution};
use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic};

/// Lock tokens are word addresses; acquisitions whose lock address is not
/// statically resolvable get a synthetic token in a disjoint namespace,
/// tagged with this bit and keyed by the acquisition site.
const SYM_LOCK_BIT: u32 = 1 << 31;

/// Forward-scan bound for the committing store of a hardware-bit atomic
/// window (the `begin_atomic` sequences are all a handful of
/// instructions).
const HW_WINDOW_SCAN: u32 = 8;

/// Guest functions implementing Lamport's reservation protocols (§2.2).
/// Their interior accesses look like unsynchronized races but are exactly
/// the protocol's point — the dynamic detector exempts them the same way.
const PROTOCOL_FNS: [&str; 4] = [
    "__lamport_enter",
    "__lamport_exit",
    "__meta_tas",
    "__cthread_self",
];

/// Registers a callee may clobber under the o32-style convention the
/// guest runtime follows (`$at`, `$v0`-`$v1`, `$a0`-`$a3`, `$t0`-`$t9`,
/// `$ra`).
const CALLER_SAVED: [Reg; 17] = [
    Reg::AT,
    Reg::V0,
    Reg::V1,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::T8,
    Reg::T9,
];

/// One point of the per-register value lattice.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AbsVal {
    /// Unknown.
    Top,
    /// A known constant (lock and data addresses arrive this way).
    Const(i32),
    /// Derived from the stack pointer: a thread-private address.
    StackPtr,
    /// The old value of a lock word read by an atomic Test-And-Set; the
    /// token identifies which lock (`SYM_LOCK_BIT | site`).
    TasResult(u32),
}

impl AbsVal {
    fn join(self, other: AbsVal) -> AbsVal {
        if self == other {
            self
        } else {
            AbsVal::Top
        }
    }
}

/// A load whose value is still live in a register: the front half of a
/// potential read-modify-write window.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Taint {
    /// Address of the load.
    pub load_pc: CodeAddr,
    /// Base register of the load.
    pub base: Reg,
    /// Byte offset of the load.
    pub off: i32,
}

/// The dataflow fact: register values, held-lock sets, the hardware
/// window bit, and value taints.
#[derive(Clone, Debug, PartialEq)]
pub struct LockFact {
    regs: [AbsVal; 32],
    /// Locks held on *every* path reaching this point.
    must: BTreeSet<u32>,
    /// Locks held on *some* path reaching this point.
    may: BTreeSet<u32>,
    /// Inside an uncommitted `begin_atomic` hardware window.
    window: bool,
    taints: [Option<Taint>; 32],
}

impl LockFact {
    fn fresh() -> LockFact {
        let mut regs = [AbsVal::Top; 32];
        regs[Reg::ZERO.index()] = AbsVal::Const(0);
        regs[Reg::SP.index()] = AbsVal::StackPtr;
        LockFact {
            regs,
            must: BTreeSet::new(),
            may: BTreeSet::new(),
            window: false,
            taints: [None; 32],
        }
    }

    /// The must-held lock set (exposed for clients of the replay).
    pub fn must_locks(&self) -> &BTreeSet<u32> {
        &self.must
    }

    /// The may-held lock set.
    pub fn may_locks(&self) -> &BTreeSet<u32> {
        &self.may
    }
}

impl JoinSemiLattice for LockFact {
    fn join_from(&mut self, other: &Self) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
            if self.taints[i] != other.taints[i] && self.taints[i].is_some() {
                self.taints[i] = None;
                changed = true;
            }
        }
        let n = self.must.len();
        self.must.retain(|l| other.must.contains(l));
        changed |= self.must.len() != n;
        for &l in &other.may {
            changed |= self.may.insert(l);
        }
        if self.window && !other.window {
            self.window = false;
            changed = true;
        }
        changed
    }
}

/// How a known callee affects the caller's fact at the return edge.
enum CallKind {
    /// An out-of-line Test-And-Set on the word at `$a0` (the registered
    /// sequence of Figure 4, or the Lamport meta-TAS). `atomic` is false
    /// when the body has no protection (the rollback ablation), in which
    /// case the window is an ordinary racy read-modify-write.
    Tas { atomic: bool },
    /// Acquires the lock identified by `$a0`.
    Acquire,
    /// Releases the lock identified by `$a0`.
    Release,
    /// A runtime service that neither acquires nor releases caller-visible
    /// locks.
    Neutral,
    /// Anything else: assume the worst (drops all must-locks).
    Unknown,
}

/// Configuration for one lockset run.
#[derive(Clone, Debug, Default)]
pub struct LocksetConfig {
    /// Code ranges whose execution is effectively atomic: declared or
    /// registered restartable sequences plus recognized designated
    /// shapes. Must match what the kernel will actually protect — under
    /// the rollback ablation this is empty even though the binary still
    /// declares ranges, exactly as `ras-model` treats it.
    pub protected: Vec<SeqRange>,
    /// Exclusive upper bound of shared data; accesses at or above it
    /// (stacks) are ignored, mirroring the dynamic detector. `None`
    /// disables the bound.
    pub data_end: Option<DataAddr>,
}

impl LocksetConfig {
    /// The configuration matching what `ras-model` checks for a built
    /// guest: declared sequences gated on the kernel strategy (under the
    /// `None` ablation the ranges exist in the binary but protect
    /// nothing), with accesses beyond the static data segment (stacks)
    /// ignored.
    pub fn for_guest(built: &ras_guest::BuiltGuest) -> LocksetConfig {
        let protected = if matches!(built.strategy, ras_kernel::StrategyKind::None) {
            Vec::new()
        } else {
            built.program.seq_ranges().to_vec()
        };
        LocksetConfig {
            protected,
            data_end: Some(built.data.len_bytes()),
        }
    }

    /// The standard configuration for a standalone program: every
    /// declared sequence plus every designated shape `set` recognizes.
    pub fn standard(program: &Program, set: &DesignatedSet) -> LocksetConfig {
        let mut protected = program.seq_ranges().to_vec();
        for pc in 0..program.len() as CodeAddr {
            if matches!(program.fetch(pc), Some(Inst::Sw { .. })) {
                if let Some(start) = set.stage2(program, pc) {
                    let r = SeqRange {
                        start,
                        len: pc - start + 1,
                    };
                    if !protected.contains(&r) {
                        protected.push(r);
                    }
                }
            }
        }
        LocksetConfig {
            protected,
            data_end: None,
        }
    }
}

/// The abstract domain. Pure; shared by the fixpoint and every replay.
pub struct LocksetDomain<'a> {
    program: &'a Program,
    protected: &'a [SeqRange],
    /// Symbols sorted by address, for callee summaries and function
    /// regions.
    syms: Vec<(CodeAddr, &'a str)>,
}

impl<'a> LocksetDomain<'a> {
    /// Builds the domain for `program` under `config`.
    pub fn new(program: &'a Program, config: &'a LocksetConfig) -> LocksetDomain<'a> {
        let mut syms: Vec<(CodeAddr, &str)> =
            program.symbols().map(|(name, addr)| (addr, name)).collect();
        syms.sort_unstable();
        LocksetDomain {
            program,
            protected: &config.protected,
            syms,
        }
    }

    fn eval(&self, fact: &LockFact, reg: Reg) -> AbsVal {
        fact.regs[reg.index()]
    }

    fn set_reg(&self, fact: &mut LockFact, rd: Reg, val: AbsVal) {
        if rd.is_zero() {
            return;
        }
        fact.regs[rd.index()] = val;
        fact.taints[rd.index()] = None;
        // A redefined base register ends every window addressed through it.
        for t in fact.taints.iter_mut() {
            if t.is_some_and(|t| t.base == rd) {
                *t = None;
            }
        }
    }

    /// The word address `off(base)` denotes, when statically known.
    fn word_addr(&self, fact: &LockFact, base: Reg, off: i32) -> Option<DataAddr> {
        match self.eval(fact, base) {
            AbsVal::Const(c) => DataAddr::try_from(c.wrapping_add(off)).ok(),
            _ => None,
        }
    }

    fn on_stack(&self, fact: &LockFact, base: Reg) -> bool {
        self.eval(fact, base) == AbsVal::StackPtr
    }

    fn in_protected(&self, pc: CodeAddr) -> Option<SeqRange> {
        self.protected.iter().copied().find(|r| r.contains(pc))
    }

    /// Whether an access at `pc` under `fact` is atomic — mirrors the
    /// dynamic detector's rule (atomic instruction, or inside a protected
    /// sequence, or inside a hardware window).
    fn atomic_at(&self, fact: &LockFact, pc: CodeAddr) -> bool {
        fact.window || self.in_protected(pc).is_some()
    }

    /// The lock token for an acquisition of the word at `addr`, or a
    /// site-keyed symbolic token when the address is unknown.
    fn token(&self, addr: Option<DataAddr>, site: CodeAddr) -> u32 {
        match addr {
            Some(a) if a & SYM_LOCK_BIT == 0 => a,
            _ => SYM_LOCK_BIT | site,
        }
    }

    /// The symbol bound exactly at `addr`.
    fn symbol_at(&self, addr: CodeAddr) -> Option<&'a str> {
        self.syms
            .binary_search_by_key(&addr, |&(a, _)| a)
            .ok()
            .map(|i| self.syms[i].1)
    }

    /// The symbol whose region (from its address to the next symbol)
    /// contains `pc`.
    fn region_of(&self, pc: CodeAddr) -> Option<&'a str> {
        match self.syms.binary_search_by_key(&pc, |&(a, _)| a) {
            Ok(i) => Some(self.syms[i].1),
            Err(0) => None,
            Err(i) => Some(self.syms[i - 1].1),
        }
    }

    /// Whether `pc` is inside a Lamport protocol function, whose interior
    /// accesses the detectors exempt.
    fn exempt(&self, pc: CodeAddr) -> bool {
        self.region_of(pc)
            .is_some_and(|n| PROTOCOL_FNS.contains(&n))
    }

    /// Whether the function at `addr` is the kernel-emulation
    /// Test-And-Set — `li $v0, SYS_TAS; syscall` — which traps into the
    /// kernel and is therefore atomic without any rollback window.
    fn is_kernel_tas_body(&self, addr: CodeAddr) -> bool {
        matches!(
            (self.program.fetch(addr), self.program.fetch(addr + 1)),
            (Some(Inst::Li { rd, imm }), Some(Inst::Syscall))
                if rd == Reg::V0 && imm == abi::SYS_TAS as i32
        )
    }

    fn classify_call(&self, callee: Option<CodeAddr>) -> CallKind {
        let Some(addr) = callee else {
            return CallKind::Unknown;
        };
        let Some(name) = self.symbol_at(addr) else {
            return CallKind::Unknown;
        };
        match name {
            // The out-of-line Test-And-Set is only atomic when the kernel
            // will actually roll its window back — gone under ablation —
            // or when the §3.1 fallback overwrote the body with the
            // kernel-emulation trap, which is atomic under any strategy.
            "__tas_registered" => CallKind::Tas {
                atomic: self.in_protected(addr).is_some() || self.is_kernel_tas_body(addr),
            },
            // The rseq TAS is atomic when its descriptor window is in the
            // protected set (dual-declared, and the strategy honors it);
            // under the `None` ablation the window aborts nothing.
            "__rseq_tas" => CallKind::Tas {
                atomic: self.program.rseq_descs().iter().any(|d| {
                    self.region_of(d.start_ip) == Some(name)
                        && self.in_protected(d.start_ip).is_some()
                }),
            },
            "__meta_tas" => CallKind::Tas { atomic: true },
            "__mutex_acquire" | "__lamport_enter" | "__rw_write_lock" | "__rw_read_lock" => {
                CallKind::Acquire
            }
            "__mutex_release" | "__lamport_exit" | "__rw_write_unlock" | "__rw_read_unlock" => {
                CallKind::Release
            }
            "__cv_wait" | "__cv_signal" | "__cv_broadcast" | "__sem_p" | "__sem_v"
            | "__barrier_wait" | "__cthread_self" => CallKind::Neutral,
            _ => CallKind::Unknown,
        }
    }

    /// The zero-test a branch performs, syntactic (`$zero` comparand) or
    /// through the value lattice (a comparand known to be zero). Returns
    /// the tested register and whether the taken edge is the zero edge.
    fn branch_zero_test(&self, inst: &Inst, fact: &LockFact) -> Option<(Reg, bool)> {
        if let Some(t) = idiom::zero_test(inst) {
            return Some((t.reg, t.zero_when_taken));
        }
        let Inst::Branch { cond, rs, rt, .. } = *inst else {
            return None;
        };
        let reg = if self.eval(fact, rs) == AbsVal::Const(0) && !rt.is_zero() {
            rt
        } else if self.eval(fact, rt) == AbsVal::Const(0) && !rs.is_zero() {
            rs
        } else {
            return None;
        };
        match cond {
            Cond::Eq => Some((reg, true)),
            Cond::Ne => Some((reg, false)),
            _ => None,
        }
    }

    /// The acquisition a zero-edge of this branch performs, if its tested
    /// register holds a Test-And-Set result.
    fn edge_acquire(&self, inst: &Inst, edge: Edge, fact: &LockFact) -> Option<u32> {
        let (reg, zero_when_taken) = self.branch_zero_test(inst, fact)?;
        let zero_edge = match edge {
            Edge::Taken => zero_when_taken,
            Edge::NotTaken => !zero_when_taken,
            _ => return None,
        };
        match (zero_edge, self.eval(fact, reg)) {
            (true, AbsVal::TasResult(tok)) => Some(tok),
            _ => None,
        }
    }

    fn clobber_caller_saved(&self, fact: &mut LockFact) {
        for r in CALLER_SAVED {
            self.set_reg(fact, r, AbsVal::Top);
        }
        self.set_reg(fact, Reg::RA, AbsVal::Top);
    }

    fn fold(&self, op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
        use AbsVal::*;
        match op {
            // `mv` is `or rd, rs, $zero`; adding zero must likewise
            // preserve the operand exactly (including Test-And-Set
            // results and stack derivation).
            AluOp::Add | AluOp::Or | AluOp::Xor if b == Const(0) => a,
            AluOp::Add | AluOp::Or | AluOp::Xor if a == Const(0) => b,
            AluOp::Add => match (a, b) {
                (Const(x), Const(y)) => Const(x.wrapping_add(y)),
                (StackPtr, Const(_)) | (Const(_), StackPtr) => StackPtr,
                _ => Top,
            },
            AluOp::Sub => match (a, b) {
                (Const(x), Const(y)) => Const(x.wrapping_sub(y)),
                (StackPtr, Const(_)) => StackPtr,
                _ => Top,
            },
            AluOp::And => match (a, b) {
                (Const(x), Const(y)) => Const(x & y),
                _ => Top,
            },
            AluOp::Or => match (a, b) {
                (Const(x), Const(y)) => Const(x | y),
                _ => Top,
            },
            AluOp::Xor => match (a, b) {
                (Const(x), Const(y)) => Const(x ^ y),
                _ => Top,
            },
            _ => Top,
        }
    }

    /// The value a read-modify-write window's committing store writes
    /// back. A definition of the stored register *inside* the window wins
    /// (the inline TAS performs `li $t0, 1` between its load and store);
    /// only when the window leaves the register untouched does the fact
    /// at the load decide. Deciding from the interior keeps the transfer
    /// monotone: the fact at the load can sit at `Const(0)` on an early
    /// fixpoint visit (a spin-exit refinement) and widen later, and a
    /// fact-dependent answer there would leak a stale non-TAS `Top` into
    /// successor joins that no final path justifies.
    fn window_stored_value(&self, fact: &LockFact, w: &idiom::RmwWindow) -> AbsVal {
        let mut val = None;
        for pc in w.load_pc + 1..w.store_pc {
            let Some(inst) = self.program.fetch(pc) else {
                break;
            };
            if inst.def() == Some(w.stored) {
                val = Some(match inst {
                    Inst::Li { imm, .. } => AbsVal::Const(imm),
                    _ => AbsVal::Top,
                });
            }
        }
        val.unwrap_or_else(|| self.eval(fact, w.stored))
    }

    /// The syscall number at a `syscall` under `fact` (constant `$v0`).
    fn syscall_number(&self, fact: &LockFact) -> Option<u32> {
        match self.eval(fact, Reg::V0) {
            AbsVal::Const(n) => u32::try_from(n).ok(),
            _ => None,
        }
    }
}

impl AbsDomain for LocksetDomain<'_> {
    type Fact = LockFact;

    fn transfer(&self, pc: CodeAddr, inst: &Inst, fact: &mut LockFact) -> bool {
        match *inst {
            Inst::Li { rd, imm } => self.set_reg(fact, rd, AbsVal::Const(imm)),
            Inst::Alu { op, rd, rs, rt } => {
                let val = self.fold(op, self.eval(fact, rs), self.eval(fact, rt));
                let taint = fact.taints[rs.index()].or(fact.taints[rt.index()]);
                self.set_reg(fact, rd, val);
                if !rd.is_zero() {
                    fact.taints[rd.index()] = taint;
                }
            }
            Inst::AluI { op, rd, rs, imm } => {
                let val = self.fold(op, self.eval(fact, rs), AbsVal::Const(imm));
                let taint = fact.taints[rs.index()];
                self.set_reg(fact, rd, val);
                if !rd.is_zero() {
                    fact.taints[rd.index()] = taint;
                }
            }
            Inst::Lw { rd, base, off } => {
                let mut val = AbsVal::Top;
                // A load opening an atomic read-modify-write window over
                // one word yields the word's old value while the new one
                // is committed — a Test-And-Set result (Figures 4 and 5).
                if self.atomic_at(fact, pc) {
                    let limit = match self.in_protected(pc) {
                        Some(r) => r.end(),
                        None => pc + HW_WINDOW_SCAN,
                    };
                    if let Some(w) = idiom::rmw_window(self.program.code(), pc, limit) {
                        // `sw $zero` back is a clear, not a set.
                        if self.window_stored_value(fact, &w) != AbsVal::Const(0) {
                            let addr = self.word_addr(fact, base, off);
                            val = AbsVal::TasResult(self.token(addr, pc));
                        }
                    }
                }
                self.set_reg(fact, rd, val);
                if !rd.is_zero() {
                    fact.taints[rd.index()] = Some(Taint {
                        load_pc: pc,
                        base,
                        off,
                    });
                }
            }
            Inst::Sw { rs, base, off } => {
                // The first committing store closes a hardware window.
                fact.window = false;
                if rs.is_zero() {
                    if let Some(w) = self.word_addr(fact, base, off) {
                        fact.must.remove(&w);
                        fact.may.remove(&w);
                    }
                }
            }
            Inst::Tas { rd, base } => {
                let addr = self.word_addr(fact, base, 0);
                let tok = self.token(addr, pc);
                self.set_reg(fact, rd, AbsVal::TasResult(tok));
            }
            Inst::Syscall => match self.syscall_number(fact) {
                Some(abi::SYS_EXIT) => return false,
                Some(abi::SYS_TAS) => {
                    let addr = self.word_addr(fact, Reg::A0, 0);
                    let tok = self.token(addr, pc);
                    self.set_reg(fact, Reg::V0, AbsVal::TasResult(tok));
                }
                _ => self.set_reg(fact, Reg::V0, AbsVal::Top),
            },
            Inst::Jal { .. } => self.set_reg(fact, Reg::RA, AbsVal::Top),
            Inst::Jalr { rd, .. } => self.set_reg(fact, rd, AbsVal::Top),
            Inst::BeginAtomic => fact.window = true,
            Inst::Branch { .. }
            | Inst::J { .. }
            | Inst::Jr { .. }
            | Inst::Nop
            | Inst::Landmark
            | Inst::Halt => {}
        }
        true
    }

    fn refine(&self, pc: CodeAddr, inst: &Inst, edge: Edge, fact: &mut LockFact) {
        match edge {
            Edge::Taken | Edge::NotTaken => {
                if let Some(tok) = self.edge_acquire(inst, edge, fact) {
                    // Keep the TasResult: the outer retry loop re-tests
                    // the same register after interior joins dissolve the
                    // interior acquisition.
                    fact.must.insert(tok);
                    fact.may.insert(tok);
                } else if let Some((reg, zwt)) = self.branch_zero_test(inst, fact) {
                    let zero_edge = (edge == Edge::Taken) == zwt;
                    if zero_edge && !matches!(self.eval(fact, reg), AbsVal::TasResult(_)) {
                        self.set_reg(fact, reg, AbsVal::Const(0));
                    }
                }
            }
            Edge::Return { callee } => {
                let a0_addr = self.word_addr(fact, Reg::A0, 0);
                let a0 = self.eval(fact, Reg::A0);
                let kind = self.classify_call(callee);
                self.clobber_caller_saved(fact);
                // The TAS emitters and lock entry/exit helpers follow the
                // runtime convention "`$a0` (the lock address) is
                // preserved" — losing it on a spin-retry back edge would
                // degrade the acquire token to a symbolic one and break
                // the must-lock join for every later critical section.
                if matches!(
                    kind,
                    CallKind::Tas { .. } | CallKind::Acquire | CallKind::Release
                ) {
                    self.set_reg(fact, Reg::A0, a0);
                }
                match kind {
                    CallKind::Tas { atomic } => {
                        if atomic {
                            let tok = self.token(a0_addr, pc);
                            self.set_reg(fact, Reg::V0, AbsVal::TasResult(tok));
                        }
                    }
                    CallKind::Acquire => {
                        let tok = self.token(a0_addr, pc);
                        fact.must.insert(tok);
                        fact.may.insert(tok);
                    }
                    CallKind::Release => {
                        if let Some(w) = a0_addr {
                            fact.must.remove(&w);
                            fact.may.remove(&w);
                        } else {
                            // Unknown lock released: drop every
                            // acquisition we cannot name.
                            fact.must.retain(|t| t & SYM_LOCK_BIT == 0);
                        }
                    }
                    CallKind::Neutral => {}
                    CallKind::Unknown => {
                        fact.must.clear();
                        fact.window = false;
                    }
                }
            }
            Edge::Step | Edge::Call => {}
        }
    }

    fn follows_edge(&self, edge: Edge) -> bool {
        edge != Edge::Call
    }
}

/// What the analysis concluded about one shared data word.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum WordVerdict {
    /// At least one access is atomic: the word is a synchronization
    /// object (a lock word, a designated-sequence operand). Mirrors the
    /// dynamic detector's sticky sync classification.
    Sync,
    /// Only one thread ever touches it.
    ThreadLocal,
    /// Every access holds the contained lock word (the token).
    Protected(u32),
    /// Concurrent thread roots access it, at least one writes, and no
    /// lock can be held at the conflicting accesses: a proven data race.
    Racy,
    /// Nothing could be proven either way.
    Unknown,
}

/// A read-modify-write window observed with its protection context; the
/// race lint turns these into three-way verdicts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WindowObs {
    /// Address of the opening load.
    pub load_pc: CodeAddr,
    /// Address of the committing store.
    pub store_pc: CodeAddr,
    /// The word, when statically resolved.
    pub word: Option<DataAddr>,
    /// The store executes inside an uncommitted `begin_atomic` window.
    pub hw_window: bool,
    /// Some lock is provably held across the whole window.
    pub lock_protected: bool,
}

/// One shared-memory access from a thread root, with its lock context.
#[derive(Clone, Debug)]
struct Access {
    word: DataAddr,
    pc: CodeAddr,
    write: bool,
    atomic: bool,
    exempt: bool,
    /// From a thread-root instance (verdict-eligible). Library-instance
    /// accesses still participate: they can establish `Sync` and they
    /// poison `Protected`/`ThreadLocal` claims, but never prove a race
    /// (their lock context is the opaque fresh fact).
    eligible: bool,
    root: CodeAddr,
    may: BTreeSet<u32>,
    must: BTreeSet<u32>,
}

#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum RootKind {
    /// The program entry: the initial thread.
    Entry,
    /// A `SYS_SPAWN` target.
    Spawn,
    /// A symbol or otherwise-uncovered code, analyzed with opaque
    /// arguments; feeds the lints but not the word verdicts.
    Lib,
}

struct Instance<'a> {
    root: CodeAddr,
    kind: RootKind,
    /// Distinct spawn sites (an upper bound on "spawned once").
    mult: usize,
    sol: Solution<LocksetDomain<'a>>,
}

/// Everything one lockset run produces.
#[derive(Clone, Debug)]
pub struct LocksetAnalysis {
    /// Per-word conclusions, over every statically-resolved shared word.
    pub verdicts: BTreeMap<DataAddr, WordVerdict>,
    /// Read-modify-write windows with protection context, deduplicated
    /// across instances (any instance proving protection wins).
    pub windows: Vec<WindowObs>,
    /// Lock-discipline findings (double acquire, release while not held,
    /// leak on thread exit, inconsistent acquisition order) plus a
    /// [`DiagKind::DataRace`] error per [`WordVerdict::Racy`] word.
    pub diags: Vec<Diagnostic>,
    /// Whether Racy verdicts were enabled: false when a thread root
    /// stores through a statically-unresolved pointer, which could alias
    /// anything and makes race proofs unsound.
    pub reliable: bool,
}

impl LocksetAnalysis {
    /// Words proven to be data races, ascending.
    pub fn racy_words(&self) -> Vec<DataAddr> {
        self.verdicts
            .iter()
            .filter(|(_, v)| matches!(v, WordVerdict::Racy))
            .map(|(&w, _)| w)
            .collect()
    }

    /// Words proven race-free by lock discipline or thread locality
    /// (synchronization words themselves are excluded: a `Sync` verdict
    /// is not a race-freedom proof for accesses before the first atomic
    /// one).
    pub fn protected_words(&self) -> Vec<DataAddr> {
        self.verdicts
            .iter()
            .filter(|(_, v)| matches!(v, WordVerdict::Protected(_) | WordVerdict::ThreadLocal))
            .map(|(&w, _)| w)
            .collect()
    }
}

#[derive(Default)]
struct Harvest {
    accesses: Vec<Access>,
    /// (load, store) → observation; protection ORs across instances.
    windows: BTreeMap<(CodeAddr, CodeAddr), WindowObs>,
    /// (site, token) → already held on some path.
    acquires: BTreeMap<(CodeAddr, u32), bool>,
    /// (site, token) → possibly held on some path.
    releases: BTreeMap<(CodeAddr, u32), bool>,
    /// Thread-exit site → must-held locks there.
    exits: BTreeMap<CodeAddr, BTreeSet<u32>>,
    /// Nesting order: (outer, inner) → first site observed.
    pairs: BTreeMap<(u32, u32), CodeAddr>,
    /// Words named as the address of a `SYS_WAIT` or `SYS_WAKE`: the
    /// kernel orders the waiter after the waker through the scheduler, so
    /// the word is a synchronization object (a completion flag), not
    /// shared data.
    kernel_sync: BTreeSet<DataAddr>,
    /// A thread root stored through an unresolved pointer.
    unresolved_store: bool,
}

fn harvest_instance<'a>(
    program: &Program,
    cfg: &Cfg,
    domain: &LocksetDomain<'a>,
    inst: &Instance<'a>,
    config: &LocksetConfig,
    out: &mut Harvest,
) {
    let eligible = inst.kind != RootKind::Lib;
    // Pass 1: the must-set at every load, so windows whose store sits in
    // an earlier-addressed block (reached by a back edge) still find it.
    let loads_must = RefCell::new(BTreeMap::<CodeAddr, BTreeSet<u32>>::new());
    inst.sol.replay(
        program,
        cfg,
        domain,
        |pc, i, fact| {
            if matches!(i, Inst::Lw { .. }) {
                loads_must.borrow_mut().insert(pc, fact.must.clone());
            }
        },
        |_, _, _, _, _| {},
    );
    let loads_must = loads_must.into_inner();

    let in_bounds = |w: DataAddr| config.data_end.is_none_or(|end| w < end);
    let out = RefCell::new(out);
    let record =
        |word: Option<DataAddr>, pc: CodeAddr, write: bool, atomic: bool, fact: &LockFact| {
            let Some(word) = word else { return };
            if !in_bounds(word) {
                return;
            }
            out.borrow_mut().accesses.push(Access {
                word,
                pc,
                write,
                atomic,
                exempt: domain.exempt(pc),
                eligible,
                root: inst.root,
                may: fact.may.clone(),
                must: fact.must.clone(),
            });
        };

    inst.sol.replay(
        program,
        cfg,
        domain,
        |pc, i, fact| match *i {
            Inst::Lw { base, off, .. } if !domain.on_stack(fact, base) => {
                let word = domain.word_addr(fact, base, off);
                record(word, pc, false, domain.atomic_at(fact, pc), fact);
            }
            Inst::Sw { rs, base, off } => {
                let word = domain.word_addr(fact, base, off);
                let atomic = domain.atomic_at(fact, pc);
                if !domain.on_stack(fact, base) {
                    record(word, pc, true, atomic, fact);
                    if eligible && word.is_none() && !atomic && !domain.exempt(pc) {
                        out.borrow_mut().unresolved_store = true;
                    }
                }
                if rs.is_zero() {
                    if let Some(w) = word {
                        *out.borrow_mut().releases.entry((pc, w)).or_insert(false) |=
                            fact.may.contains(&w);
                    }
                } else if let Some(t) = fact.taints[rs.index()] {
                    if t.base == base && t.off == off {
                        let lock_protected = loads_must
                            .get(&t.load_pc)
                            .is_some_and(|m| m.intersection(&fact.must).next().is_some());
                        let mut o = out.borrow_mut();
                        let w = o.windows.entry((t.load_pc, pc)).or_insert(WindowObs {
                            load_pc: t.load_pc,
                            store_pc: pc,
                            word,
                            hw_window: false,
                            lock_protected: false,
                        });
                        w.hw_window |= fact.window;
                        w.lock_protected |= lock_protected;
                        if w.word.is_none() {
                            w.word = word;
                        }
                    }
                }
            }
            Inst::Tas { base, .. } => {
                let word = domain.word_addr(fact, base, 0);
                record(word, pc, true, true, fact);
            }
            Inst::Syscall => match domain.syscall_number(fact) {
                Some(abi::SYS_TAS) => {
                    let word = domain.word_addr(fact, Reg::A0, 0);
                    record(word, pc, true, true, fact);
                }
                Some(abi::SYS_EXIT) if !fact.must.is_empty() => {
                    out.borrow_mut()
                        .exits
                        .entry(pc)
                        .or_default()
                        .extend(fact.must.iter().copied());
                }
                Some(abi::SYS_WAIT) | Some(abi::SYS_WAKE) => {
                    if let Some(w) = domain.word_addr(fact, Reg::A0, 0) {
                        if in_bounds(w) {
                            out.borrow_mut().kernel_sync.insert(w);
                        }
                    }
                }
                _ => {}
            },
            Inst::Halt if !fact.must.is_empty() => {
                out.borrow_mut()
                    .exits
                    .entry(pc)
                    .or_default()
                    .extend(fact.must.iter().copied());
            }
            _ => {}
        },
        |pc, i, edge, fact, _refined| {
            let note_acquire = |tok: u32, fact: &LockFact| {
                let mut o = out.borrow_mut();
                *o.acquires.entry((pc, tok)).or_insert(false) |= fact.must.contains(&tok);
                for &outer in &fact.must {
                    if outer != tok {
                        o.pairs.entry((outer, tok)).or_insert(pc);
                    }
                }
            };
            match edge {
                Edge::Taken | Edge::NotTaken => {
                    if let Some(tok) = domain.edge_acquire(i, edge, fact) {
                        note_acquire(tok, fact);
                    }
                }
                Edge::Return { callee } => {
                    let a0_addr = domain.word_addr(fact, Reg::A0, 0);
                    match domain.classify_call(callee) {
                        CallKind::Tas { atomic } => {
                            // The callee performs the whole load→store
                            // window on the word at `$a0`; surface it as
                            // an access pair here, where the address is
                            // known.
                            if let Some(w) = a0_addr {
                                record(Some(w), pc, true, atomic, fact);
                            }
                        }
                        CallKind::Acquire => {
                            // The callee read-modify-writes the lock word
                            // atomically (its own TAS or reservation).
                            record(a0_addr, pc, true, true, fact);
                            note_acquire(domain.token(a0_addr, pc), fact);
                        }
                        CallKind::Release => {
                            record(a0_addr, pc, true, true, fact);
                            if let Some(w) = a0_addr {
                                let mut o = out.borrow_mut();
                                *o.releases.entry((pc, w)).or_insert(false) |=
                                    fact.may.contains(&w);
                            }
                        }
                        _ => {}
                    }
                }
                _ => {}
            }
        },
    );
}

/// Runs the lockset analysis over `program`.
pub fn lockset(program: &Program, cfg: &Cfg, config: &LocksetConfig) -> LocksetAnalysis {
    let domain = LocksetDomain::new(program, config);

    // Discover thread roots: the entry, then SYS_SPAWN targets to a fixed
    // point (spawn sites live in `main`, itself reached through a call).
    let mut spawns: BTreeMap<CodeAddr, BTreeSet<CodeAddr>> = BTreeMap::new();
    let mut instances: Vec<Instance<'_>>;
    loop {
        instances = build_instances(program, cfg, &domain, &spawns);
        let mut found: BTreeMap<CodeAddr, BTreeSet<CodeAddr>> = BTreeMap::new();
        for inst in &instances {
            collect_spawns(program, cfg, &domain, inst, &mut found);
        }
        if found == spawns {
            break;
        }
        spawns = found;
    }

    let mut harvest = Harvest::default();
    for inst in &instances {
        harvest_instance(program, cfg, &domain, inst, config, &mut harvest);
    }

    let mult: BTreeMap<CodeAddr, usize> = instances
        .iter()
        .filter(|i| i.kind != RootKind::Lib)
        .map(|i| (i.root, i.mult))
        .collect();

    let reliable = !harvest.unresolved_store;
    let verdicts = word_verdicts(&harvest.accesses, &harvest.kernel_sync, &mult, reliable);
    let diags = discipline_diags(&harvest, &verdicts);

    LocksetAnalysis {
        verdicts,
        windows: harvest.windows.into_values().collect(),
        diags,
        reliable,
    }
}

fn build_instances<'a>(
    program: &Program,
    cfg: &Cfg,
    domain: &LocksetDomain<'a>,
    spawns: &BTreeMap<CodeAddr, BTreeSet<CodeAddr>>,
) -> Vec<Instance<'a>> {
    let mut instances = Vec::new();
    let mut thread_roots = BTreeSet::new();
    let entry = program.entry();
    thread_roots.insert(entry);
    instances.push(Instance {
        root: entry,
        kind: RootKind::Entry,
        mult: 1,
        sol: absint::forward(program, cfg, domain, &[(entry, LockFact::fresh())]),
    });
    for (&target, sites) in spawns {
        if !thread_roots.insert(target) {
            continue;
        }
        instances.push(Instance {
            root: target,
            kind: RootKind::Spawn,
            mult: sites.len().max(1),
            sol: absint::forward(program, cfg, domain, &[(target, LockFact::fresh())]),
        });
    }
    // Library instances: every symbol not already a thread root, analyzed
    // with opaque arguments.
    for &(addr, _) in &domain.syms {
        if thread_roots.contains(&addr) {
            continue;
        }
        instances.push(Instance {
            root: addr,
            kind: RootKind::Lib,
            mult: 1,
            sol: absint::forward(program, cfg, domain, &[(addr, LockFact::fresh())]),
        });
    }
    // Orphan coverage: reachable blocks served by no instance (code only
    // reached through computed jumps) still get linted.
    loop {
        let covered: BTreeSet<CodeAddr> = instances
            .iter()
            .flat_map(|i| i.sol.reached_blocks())
            .collect();
        let Some(orphan) = cfg.reachable_blocks().find(|s| !covered.contains(s)) else {
            break;
        };
        instances.push(Instance {
            root: orphan,
            kind: RootKind::Lib,
            mult: 1,
            sol: absint::forward(program, cfg, domain, &[(orphan, LockFact::fresh())]),
        });
    }
    instances
}

fn collect_spawns<'a>(
    program: &Program,
    cfg: &Cfg,
    domain: &LocksetDomain<'a>,
    inst: &Instance<'a>,
    found: &mut BTreeMap<CodeAddr, BTreeSet<CodeAddr>>,
) {
    let found = RefCell::new(found);
    inst.sol.replay(
        program,
        cfg,
        domain,
        |pc, i, fact| {
            if matches!(i, Inst::Syscall) && domain.syscall_number(fact) == Some(abi::SYS_SPAWN) {
                if let AbsVal::Const(t) = domain.eval(fact, Reg::A0) {
                    if let Ok(t) = CodeAddr::try_from(t) {
                        if (t as usize) < program.len() {
                            found.borrow_mut().entry(t).or_default().insert(pc);
                        }
                    }
                }
            }
        },
        |_, _, _, _, _| {},
    );
}

fn word_verdicts(
    accesses: &[Access],
    kernel_sync: &BTreeSet<DataAddr>,
    mult: &BTreeMap<CodeAddr, usize>,
    reliable: bool,
) -> BTreeMap<DataAddr, WordVerdict> {
    let mut by_word: BTreeMap<DataAddr, Vec<&Access>> = BTreeMap::new();
    for a in accesses {
        by_word.entry(a.word).or_default().push(a);
    }
    let mut verdicts = BTreeMap::new();
    for (word, accs) in by_word {
        let elig: Vec<&Access> = accs.iter().filter(|a| a.eligible).copied().collect();
        let verdict = if accs.iter().any(|a| a.atomic) || kernel_sync.contains(&word) {
            WordVerdict::Sync
        } else if elig.is_empty() {
            // Only library code names this word with a resolved address;
            // no thread-root context to judge it in.
            WordVerdict::Unknown
        } else {
            // Accesses from library instances run in an opaque lock
            // context: they cannot support a race-freedom claim, only
            // undermine one.
            let no_lib_access = accs.iter().all(|a| a.eligible || a.exempt);
            let roots: BTreeSet<CodeAddr> = elig.iter().map(|a| a.root).collect();
            let single =
                roots.len() == 1 && roots.iter().all(|r| mult.get(r).copied().unwrap_or(1) <= 1);
            // A lock every access agrees on, concrete tokens only:
            // symbolic tokens name "the lock acquired at site S", which
            // different dynamic locks can share.
            let mut common: Option<BTreeSet<u32>> = None;
            for a in &elig {
                let concrete: BTreeSet<u32> = a
                    .must
                    .iter()
                    .copied()
                    .filter(|t| t & SYM_LOCK_BIT == 0)
                    .collect();
                common = Some(match common {
                    None => concrete,
                    Some(c) => c.intersection(&concrete).copied().collect(),
                });
            }
            let common = common.unwrap_or_default();
            if single && no_lib_access {
                WordVerdict::ThreadLocal
            } else if no_lib_access && !common.is_empty() {
                WordVerdict::Protected(*common.iter().next().expect("nonempty"))
            } else if reliable && has_race(&elig, mult) {
                WordVerdict::Racy
            } else {
                WordVerdict::Unknown
            }
        };
        verdicts.insert(word, verdict);
    }
    verdicts
}

fn has_race(accs: &[&Access], mult: &BTreeMap<CodeAddr, usize>) -> bool {
    let candidates: Vec<&&Access> = accs.iter().filter(|a| !a.exempt && !a.atomic).collect();
    for (i, a) in candidates.iter().enumerate() {
        for b in &candidates[i..] {
            if !a.write && !b.write {
                continue;
            }
            let concurrent = a.root != b.root || mult.get(&a.root).copied().unwrap_or(1) > 1;
            if !concurrent {
                continue;
            }
            if a.may.intersection(&b.may).next().is_none() {
                return true;
            }
        }
    }
    false
}

fn fmt_token(tok: u32) -> String {
    if tok & SYM_LOCK_BIT == 0 {
        format!("0x{tok:x}")
    } else {
        format!("acquired at @{}", tok & !SYM_LOCK_BIT)
    }
}

fn discipline_diags(
    harvest: &Harvest,
    verdicts: &BTreeMap<DataAddr, WordVerdict>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let acquired: BTreeSet<u32> = harvest.acquires.keys().map(|&(_, t)| t).collect();

    for (&(pc, tok), &held) in &harvest.acquires {
        if held {
            diags.push(Diagnostic::new(
                DiagKind::DoubleAcquire,
                pc,
                format!(
                    "lock {} is acquired again at @{pc} while already held; \
                     the inner acquisition can never succeed and the outer \
                     one is never released on this path",
                    fmt_token(tok)
                ),
            ));
        }
    }
    for (&(pc, word), &may_held) in &harvest.releases {
        if acquired.contains(&word) && !may_held {
            diags.push(Diagnostic::new(
                DiagKind::ReleaseNotHeld,
                pc,
                format!(
                    "lock 0x{word:x} is released at @{pc} on a path where it \
                     was never acquired; a concurrent holder's critical \
                     section is silently broken open"
                ),
            ));
        }
    }
    for (&pc, locks) in &harvest.exits {
        let names: Vec<String> = locks.iter().map(|&t| fmt_token(t)).collect();
        diags.push(Diagnostic::new(
            DiagKind::LockLeak,
            pc,
            format!(
                "thread exits at @{pc} still holding {}; no other thread \
                 can ever enter the critical section again",
                names.join(", ")
            ),
        ));
    }
    for (&(a, b), &pc) in &harvest.pairs {
        if a < b && harvest.pairs.contains_key(&(b, a)) {
            diags.push(Diagnostic::new(
                DiagKind::LockOrderInversion,
                pc,
                format!(
                    "locks {} and {} are acquired in both orders; two \
                     threads interleaving the two orders deadlock",
                    fmt_token(a),
                    fmt_token(b)
                ),
            ));
        }
    }
    for (&word, v) in verdicts {
        if matches!(v, WordVerdict::Racy) {
            // Anchor at the first write to the word (falling back to the
            // first access): the store is where the update gets lost.
            let site = harvest
                .accesses
                .iter()
                .filter(|a| a.word == word)
                .map(|a| (!a.write, a.pc))
                .min()
                .map(|(_, pc)| pc)
                .unwrap_or(0);
            diags.push(Diagnostic::new(
                DiagKind::DataRace,
                site,
                format!(
                    "word 0x{word:x} is accessed by concurrent threads with \
                     no common lock and no atomic mechanism; updates can be \
                     lost under preemption"
                ),
            ));
        }
    }
    diags.sort_by(|a, b| (a.addr, a.kind.code()).cmp(&(b.addr, b.kind.code())));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_guest::workloads::{model_counter, ModelSpec, TasFlavor};
    use ras_guest::{BuiltGuest, Mechanism};
    use ras_isa::Asm;
    use ras_kernel::StrategyKind;

    fn run(built: &BuiltGuest) -> LocksetAnalysis {
        let cfg = Cfg::build(&built.program);
        let config = LocksetConfig::for_guest(built);
        lockset(&built.program, &cfg, &config)
    }

    fn spec() -> ModelSpec {
        ModelSpec {
            iterations: 2,
            workers: 2,
        }
    }

    #[test]
    fn safe_counter_proves_cs_words_protected_by_the_lock() {
        for mechanism in Mechanism::all() {
            for flavor in TasFlavor::all() {
                if !flavor.supported_by(mechanism) {
                    continue;
                }
                let built = model_counter(mechanism, flavor, &spec());
                let a = run(&built);
                let lock = built.data.symbol("lock").unwrap();
                let label = format!("{mechanism:?}/{flavor:?}");
                assert!(a.racy_words().is_empty(), "{label}: {:#?}", a.verdicts);
                assert!(a.diags.is_empty(), "{label}: {:#?}", a.diags);
                if flavor == TasFlavor::Faa {
                    // Lock-free: the counter itself is the atomic object.
                    let counter = built.data.symbol("counter").unwrap();
                    assert_eq!(
                        a.verdicts.get(&counter),
                        Some(&WordVerdict::Sync),
                        "{label}"
                    );
                    continue;
                }
                assert_eq!(a.verdicts.get(&lock), Some(&WordVerdict::Sync), "{label}");
                for word in ["counter", "cs_owner", "violations"] {
                    let addr = built.data.symbol(word).unwrap();
                    assert_eq!(
                        a.verdicts.get(&addr),
                        Some(&WordVerdict::Protected(lock)),
                        "{label}: {word}"
                    );
                }
            }
        }
    }

    #[test]
    fn ablated_counter_is_provably_racy_on_every_shared_word() {
        // The rollback ablation: the binary still declares its sequences
        // but the kernel strategy will not restart them — the paper's
        // motivating lost-update bug, statically.
        let mut built = model_counter(Mechanism::RasInline, TasFlavor::Tas, &spec());
        built.strategy = StrategyKind::None;
        let a = run(&built);
        assert!(a.reliable);
        let expect: Vec<DataAddr> = ["lock", "counter", "cs_owner", "violations"]
            .iter()
            .map(|w| built.data.symbol(w).unwrap())
            .collect();
        assert_eq!(a.racy_words(), expect, "{:#?}", a.verdicts);
        let race_diags = a
            .diags
            .iter()
            .filter(|d| d.kind == DiagKind::DataRace)
            .count();
        assert_eq!(race_diags, expect.len());
        assert!(a.protected_words().is_empty(), "{:#?}", a.verdicts);
    }

    /// A hand-built two-thread program: spawn one worker, both threads
    /// bump a shared word under a kernel-emulated TAS lock.
    fn spawn_guarded(bump_locked: bool) -> Program {
        let mut asm = Asm::new();
        let lock = 0x0;
        let shared = 0x4;
        // Entry: spawn the worker, run the same body, exit.
        let worker = asm.label();
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li_label(Reg::A0, worker);
        asm.syscall();
        asm.j(worker);
        asm.bind(worker);
        if bump_locked {
            let acquired = asm.label();
            let retry = asm.bind_new();
            asm.li(Reg::A0, lock);
            asm.li(Reg::V0, abi::SYS_TAS as i32);
            asm.syscall();
            asm.beqz(Reg::V0, acquired);
            asm.j(retry);
            asm.bind(acquired);
        }
        asm.li(Reg::T1, shared);
        asm.lw(Reg::T0, Reg::T1, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::T1, 0);
        if bump_locked {
            asm.li(Reg::A0, lock);
            asm.sw(Reg::ZERO, Reg::A0, 0);
        }
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        asm.finish().unwrap()
    }

    #[test]
    fn spawn_discovery_finds_the_race_and_the_lock_fixes_it() {
        let racy = spawn_guarded(false);
        let cfg = Cfg::build(&racy);
        let a = lockset(&racy, &cfg, &LocksetConfig::default());
        assert_eq!(a.racy_words(), vec![0x4], "{:#?}", a.verdicts);
        assert!(a.diags.iter().any(|d| d.kind == DiagKind::DataRace));

        let safe = spawn_guarded(true);
        let cfg = Cfg::build(&safe);
        let a = lockset(&safe, &cfg, &LocksetConfig::default());
        assert!(a.racy_words().is_empty(), "{:#?}", a.verdicts);
        assert_eq!(a.verdicts.get(&0x4), Some(&WordVerdict::Protected(0x0)));
        assert!(a.diags.is_empty(), "{:#?}", a.diags);
    }

    #[test]
    fn spin_exit_refinement_does_not_defeat_inline_tas_recognition() {
        // A counted busy-wait leaves its counter refined to `Const(0)` on
        // the exit edge, and the inline TAS that follows reuses the same
        // register as its stored value — setting it with `li $t0, 1`
        // *inside* the window. An early fixpoint visit therefore sees
        // `$t0 = 0` at the load; if the sw-$zero-is-a-clear check read
        // the fact there, recognition would fail once, and the stale
        // non-TAS `Top` joined into the acquire branch's entry could
        // never be un-joined (the malloc-stress worker hits exactly this
        // shape). The stored value must come from the window interior.
        let mut asm = Asm::new();
        asm.li(Reg::T0, 3); // @0
        let spin = asm.bind_new(); // @1
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, spin); // @2: exit edge refines $t0 to 0
        asm.li(Reg::A0, 0x0); // @3: the lock
        let retry = asm.bind_new(); // @4: inline TAS, declared below
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1); // @5: the stored value, set in-window
        let busy = asm.label();
        asm.bnez(Reg::V0, busy); // @6
        asm.landmark(); // @7
        asm.sw(Reg::T0, Reg::A0, 0); // @8
        asm.bind(busy);
        let cs = asm.label();
        asm.beqz(Reg::V0, cs); // @9: the acquire edge
        asm.li(Reg::V0, abi::SYS_YIELD as i32);
        asm.syscall();
        asm.j(retry);
        asm.bind(cs);
        asm.li(Reg::T1, 0x8); // @13: critical-section increment
        asm.lw(Reg::T2, Reg::T1, 0); // @14
        asm.addi(Reg::T2, Reg::T2, 1);
        asm.sw(Reg::T2, Reg::T1, 0); // @16
        asm.sw(Reg::ZERO, Reg::A0, 0); // release
        asm.halt();
        asm.declare_seq(SeqRange { start: 4, len: 5 });
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let config = LocksetConfig::standard(&p, &DesignatedSet::standard());
        let a = lockset(&p, &cfg, &config);
        let window = a
            .windows
            .iter()
            .find(|w| w.load_pc == 14)
            .expect("the critical-section window is observed");
        assert!(
            window.lock_protected,
            "the TAS acquired through the spin-refined register must \
             still protect the window: {:#?}",
            a.windows
        );
        assert_eq!(a.verdicts.get(&0x0), Some(&WordVerdict::Sync));
    }

    #[test]
    fn double_acquire_is_reported() {
        let mut asm = Asm::new();
        let acquired = asm.label();
        asm.li(Reg::A0, 0x0);
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.syscall();
        asm.beqz(Reg::V0, acquired);
        asm.halt();
        asm.bind(acquired);
        // Acquire the same lock again while holding it.
        let inner = asm.label();
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.syscall();
        asm.beqz(Reg::V0, inner);
        asm.halt();
        asm.bind(inner);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let a = lockset(&p, &cfg, &LocksetConfig::default());
        assert!(
            a.diags.iter().any(|d| d.kind == DiagKind::DoubleAcquire),
            "{:#?}",
            a.diags
        );
    }

    #[test]
    fn release_on_an_unacquired_path_is_reported() {
        let mut asm = Asm::new();
        let acquired = asm.label();
        let out = asm.label();
        asm.li(Reg::A0, 0x0);
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.syscall();
        asm.beqz(Reg::V0, acquired);
        // Failure path: releases a lock it never got.
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.j(out);
        asm.bind(acquired);
        asm.bind(out);
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let a = lockset(&p, &cfg, &LocksetConfig::default());
        let kinds: Vec<DiagKind> = a.diags.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DiagKind::ReleaseNotHeld), "{:#?}", a.diags);
    }

    #[test]
    fn lock_leaked_at_thread_exit_is_reported() {
        let mut asm = Asm::new();
        let acquired = asm.label();
        asm.li(Reg::A0, 0x0);
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.syscall();
        asm.beqz(Reg::V0, acquired);
        asm.halt();
        asm.bind(acquired);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall(); // exits still holding the lock
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let a = lockset(&p, &cfg, &LocksetConfig::default());
        assert!(
            a.diags.iter().any(|d| d.kind == DiagKind::LockLeak),
            "{:#?}",
            a.diags
        );
    }

    #[test]
    fn inconsistent_lock_order_is_reported() {
        // Two locks taken A-then-B on one path and B-then-A on another.
        let mut asm = Asm::new();
        let take = |asm: &mut Asm, lock: i32| {
            let got = asm.label();
            asm.li(Reg::A0, lock);
            asm.li(Reg::V0, abi::SYS_TAS as i32);
            asm.syscall();
            asm.beqz(Reg::V0, got);
            asm.halt();
            asm.bind(got);
        };
        let second = asm.label();
        let join = asm.label();
        asm.li(Reg::T0, 1);
        asm.beqz(Reg::T0, second);
        take(&mut asm, 0x0);
        take(&mut asm, 0x4);
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.li(Reg::A0, 0x0);
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.j(join);
        asm.bind(second);
        take(&mut asm, 0x4);
        take(&mut asm, 0x0);
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.li(Reg::A0, 0x4);
        asm.sw(Reg::ZERO, Reg::A0, 0);
        asm.bind(join);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let a = lockset(&p, &cfg, &LocksetConfig::default());
        assert!(
            a.diags
                .iter()
                .any(|d| d.kind == DiagKind::LockOrderInversion),
            "{:#?}",
            a.diags
        );
    }

    #[test]
    fn unresolved_stores_disable_race_proofs() {
        // A store through an opaque pointer could alias anything: no
        // Racy verdict may survive it.
        let mut asm = Asm::new();
        let worker = asm.label();
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li_label(Reg::A0, worker);
        asm.syscall();
        asm.bind(worker);
        asm.sw(Reg::T0, Reg::T1, 0); // T1 is Top: unresolved store
        asm.li(Reg::T1, 0x8);
        asm.lw(Reg::T0, Reg::T1, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::T1, 0);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let a = lockset(&p, &cfg, &LocksetConfig::default());
        assert!(!a.reliable);
        assert!(a.racy_words().is_empty(), "{:#?}", a.verdicts);
    }

    #[test]
    fn emulation_fallback_binary_stays_race_free() {
        // §3.1's fallback story: a registered-RAS binary whose sequence
        // body is overwritten with the kernel-emulation trap must still
        // analyze clean — the patch drops the declared range, but the
        // `li $v0, SYS_TAS; syscall` body is atomic through the kernel
        // on any strategy, so `__tas_registered` calls stay atomic.
        let spec = ras_guest::workloads::CounterSpec {
            iterations: 10,
            workers: 2,
            body: ras_guest::workloads::CounterBody::LockAndCounter,
        };
        let mut built =
            ras_guest::workloads::counter_loop(ras_guest::Mechanism::RasRegistered, &spec);
        built.apply_emulation_fallback();
        assert!(built.program.seq_ranges().is_empty());
        let a = crate::analyze_standard(&built.program);
        assert!(!a.has_errors(), "{:#?}", a.errors().collect::<Vec<_>>());
        let lock = built.data.symbol("lock").unwrap();
        assert_eq!(a.lockset.verdicts.get(&lock), Some(&WordVerdict::Sync));
    }
}
