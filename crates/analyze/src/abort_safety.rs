//! The rseq abort-handler safety verifier.
//!
//! The kernel's side of the rseq contract is small: preempt a thread whose
//! PC sits inside a published window and it resumes at `abort_ip`. For
//! that dispatch to be *safe* the descriptor must uphold properties the
//! kernel never checks — exactly the situation of the paper's §3.1
//! restartable sequences, so this pass is their static verifier's sibling:
//!
//! * **Window shape** (syntactic, per descriptor): the window lies inside
//!   the code image and is non-empty; its last instruction — the commit
//!   point — is a plain store, and it is the *only* store; no syscall,
//!   call, or indirect jump sits inside; every branch exits forward past
//!   the commit point; no two windows overlap; `abort_ip` lies strictly
//!   outside the window and is reachable only via kernel abort dispatch
//!   (no fallthrough into it, no jump to it).
//! * **Handler behavior** (dataflow, over the [`crate::absint`] worklist
//!   engine): walking forward from every `abort_ip` with a
//!   constant-propagation lattice, the handler must re-establish the
//!   invariants the abort tore down. It must not perform visible side
//!   effects (stores other than republishing a descriptor, calls,
//!   interlocked ops), must not touch words the lockset analysis proved
//!   lock-protected (the abort path runs without the lock), may only make
//!   `rseq` or thread-exit syscalls, and must not re-enter a window
//!   without first republishing its descriptor — a stale retry would make
//!   the second preemption invisible.
//!
//! The pass is self-contained: it re-checks window shape even when the
//! window is also declared as an ordinary [`ras_isa::SeqRange`] (the
//! guest emitters declare both so the restartability verifier and the
//! differential tests see the window too), because a descriptor need not
//! be dual-declared to be dispatched by the kernel.

use std::collections::{BTreeMap, BTreeSet};

use ras_isa::{abi, CodeAddr, Inst, Program, Reg, RseqCs};

use crate::absint::{forward, AbsDomain, Edge, JoinSemiLattice};
use crate::cfg::Cfg;
use crate::diag::{DiagKind, Diagnostic};
use crate::lockset::{LocksetAnalysis, WordVerdict};

/// What the handler walk knows at one program point: registers with
/// statically-known constant values, and the set of descriptors
/// (identified by `cs_addr`) provably republished on every path since the
/// abort.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
struct HandlerFact {
    consts: BTreeMap<Reg, u32>,
    published: BTreeSet<u32>,
}

impl HandlerFact {
    fn get(&self, r: Reg) -> Option<u32> {
        if r.is_zero() {
            return Some(0);
        }
        self.consts.get(&r).copied()
    }

    fn set(&mut self, r: Reg, v: Option<u32>) {
        if r.is_zero() {
            return;
        }
        match v {
            Some(v) => {
                self.consts.insert(r, v);
            }
            None => {
                self.consts.remove(&r);
            }
        }
    }
}

impl JoinSemiLattice for HandlerFact {
    fn join_from(&mut self, other: &Self) -> bool {
        let before = (self.consts.len(), self.published.len());
        self.consts.retain(|r, v| other.consts.get(r) == Some(v));
        self.published.retain(|cs| other.published.contains(cs));
        before != (self.consts.len(), self.published.len())
    }
}

/// The abort-handler domain: flat constant propagation, plus the
/// republication predicate. Pure — diagnostics are collected during
/// replay, never here.
struct HandlerDomain<'a> {
    descs: &'a [RseqCs],
}

impl HandlerDomain<'_> {
    fn in_window(&self, pc: CodeAddr) -> bool {
        self.descs.iter().any(|d| d.contains(pc))
    }
}

impl AbsDomain for HandlerDomain<'_> {
    type Fact = HandlerFact;

    fn transfer(&self, pc: CodeAddr, inst: &Inst, fact: &mut HandlerFact) -> bool {
        // Window interiors are checked syntactically; the walk stops at
        // the boundary (the replay still sees the entry instruction, which
        // is where the stale-retry check fires).
        if self.in_window(pc) {
            return false;
        }
        match *inst {
            Inst::Li { rd, imm } => fact.set(rd, Some(imm as u32)),
            Inst::AluI { op, rd, rs, imm } => {
                let v = fact.get(rs).map(|v| op.apply(v, imm as u32));
                fact.set(rd, v);
            }
            Inst::Alu { op, rd, rs, rt } => {
                let v = match (fact.get(rs), fact.get(rt)) {
                    (Some(a), Some(b)) => Some(op.apply(a, b)),
                    _ => None,
                };
                fact.set(rd, v);
            }
            Inst::Sw { rs, .. } => {
                // Storing a descriptor's address — anywhere — is how the
                // guest republishes; the per-thread area slot itself is
                // computed and rarely constant, so the *value* is the
                // recognizable half of the store.
                if let Some(v) = fact.get(rs) {
                    if self.descs.iter().any(|d| d.cs_addr == v) {
                        fact.published.insert(v);
                    }
                }
            }
            Inst::Syscall => {
                let exits = fact.get(Reg::V0) == Some(abi::SYS_EXIT);
                fact.set(Reg::V0, None);
                if exits {
                    return false; // a clean thread exit ends the path
                }
            }
            Inst::Halt => return false,
            // A register return leaves the handler's function entirely;
            // the caller sees an ordinary (failed) call and retries or
            // gives up by its own logic.
            Inst::Jr { .. } => return false,
            _ => {
                if let Some(d) = inst.def() {
                    fact.set(d, None);
                }
            }
        }
        true
    }

    fn refine(&self, _pc: CodeAddr, _inst: &Inst, edge: Edge, fact: &mut HandlerFact) {
        if matches!(edge, Edge::Return { .. }) {
            // An unknown callee clobbers everything it could write; calls
            // are flagged as handler side effects anyway, so precision
            // past this point is moot.
            fact.consts.clear();
        }
    }

    fn follows_edge(&self, edge: Edge) -> bool {
        edge != Edge::Call
    }
}

/// Verifies every rseq descriptor of `program`: window shape
/// syntactically, handler behavior via a forward dataflow walk from each
/// `abort_ip`. `lockset` supplies the per-word protection verdicts the
/// handler checks consult.
pub fn abort_safety(program: &Program, cfg: &Cfg, lockset: &LocksetAnalysis) -> Vec<Diagnostic> {
    let descs = program.rseq_descs();
    if descs.is_empty() {
        return Vec::new();
    }
    let mut diags = Vec::new();
    let len = program.len() as CodeAddr;

    for (i, d) in descs.iter().enumerate() {
        window_diags(program, len, d, &mut diags);
        for other in &descs[i + 1..] {
            let (a, b) = (d.window(), other.window());
            if a.start < b.start + b.len && b.start < a.start + a.len {
                diags.push(Diagnostic::new(
                    DiagKind::RseqOverlappingWindows,
                    b.start.max(a.start),
                    format!(
                        "rseq windows [@{}..@{}) and [@{}..@{}) overlap: a preemption \
                         in the overlap has two candidate abort handlers",
                        a.start,
                        a.start + a.len,
                        b.start,
                        b.start + b.len
                    ),
                ));
            }
        }
    }

    // The handler walk: one fixpoint rooted at every in-bounds abort_ip
    // that starts its own block. (A handler that does *not* start a block
    // is fallthrough-reachable, which the syntactic checks already flag;
    // walking the surrounding block from its start would only manufacture
    // noise on instructions the abort never executes.)
    let domain = HandlerDomain { descs };
    let roots: Vec<(CodeAddr, HandlerFact)> = descs
        .iter()
        .map(|d| d.abort_ip)
        .filter(|&ip| ip < len && cfg.block_of(ip).is_some_and(|b| b.start == ip))
        .map(|ip| (ip, HandlerFact::default()))
        .collect();
    if roots.is_empty() {
        return diags;
    }
    let sol = forward(program, cfg, &domain, &roots);

    let resolve = |fact: &HandlerFact, base: Reg, off: i32| {
        fact.get(base)
            .and_then(|b| ras_isa::DataAddr::try_from(b.wrapping_add(off as u32)).ok())
    };
    let protected = |addr: Option<ras_isa::DataAddr>| {
        addr.is_some_and(|a| matches!(lockset.verdicts.get(&a), Some(WordVerdict::Protected(_))))
    };

    sol.replay(
        program,
        cfg,
        &domain,
        |pc, inst, fact| {
            if let Some(d) = descs.iter().find(|d| d.contains(pc)) {
                if !fact.published.contains(&d.cs_addr) {
                    diags.push(Diagnostic::new(
                        DiagKind::RseqStaleRetry,
                        pc,
                        format!(
                            "abort path re-enters the window [@{}..@{}) without first \
                             republishing the descriptor at data {}: a second preemption \
                             here would not be detected",
                            d.start_ip,
                            d.post_commit_ip(),
                            d.cs_addr
                        ),
                    ));
                }
                return; // the walk cuts here; the window is checked above
            }
            match *inst {
                Inst::Sw { rs, base, off } => {
                    let republishes = fact
                        .get(rs)
                        .is_some_and(|v| descs.iter().any(|d| d.cs_addr == v));
                    if republishes {
                        return;
                    }
                    let addr = resolve(fact, base, off);
                    if protected(addr) {
                        diags.push(Diagnostic::new(
                            DiagKind::RseqHandlerTouchesProtected,
                            pc,
                            format!(
                                "abort handler stores to lock-protected word {} without \
                                 holding the lock",
                                addr.unwrap()
                            ),
                        ));
                    } else {
                        diags.push(Diagnostic::new(
                            DiagKind::RseqHandlerSideEffect,
                            pc,
                            "abort handler performs a store that is not a descriptor \
                             republication: the side effect survives even though the \
                             aborted section did not"
                                .to_string(),
                        ));
                    }
                }
                Inst::Lw { base, off, .. } => {
                    let addr = resolve(fact, base, off);
                    if protected(addr) {
                        diags.push(Diagnostic::new(
                            DiagKind::RseqHandlerTouchesProtected,
                            pc,
                            format!(
                                "abort handler reads lock-protected word {} without \
                                 holding the lock",
                                addr.unwrap()
                            ),
                        ));
                    }
                }
                Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Tas { .. } => {
                    diags.push(Diagnostic::new(
                        DiagKind::RseqHandlerSideEffect,
                        pc,
                        format!(
                            "abort handler executes `{inst}`: calls and interlocked \
                             ops are side effects the abort protocol cannot undo"
                        ),
                    ));
                }
                Inst::Syscall => {
                    let num = fact.get(Reg::V0);
                    if num != Some(abi::SYS_RSEQ) && num != Some(abi::SYS_EXIT) {
                        diags.push(Diagnostic::new(
                            DiagKind::RseqHandlerSyscall,
                            pc,
                            "abort handler makes a syscall that is neither rseq \
                             re-registration nor a clean thread exit"
                                .to_string(),
                        ));
                    }
                }
                _ => {}
            }
        },
        |_, _, _, _, _| {},
    );

    diags
}

/// The syntactic per-descriptor checks: bounds, commit shape, window
/// purity, and abort placement/reachability.
fn window_diags(program: &Program, len: CodeAddr, d: &RseqCs, diags: &mut Vec<Diagnostic>) {
    if d.post_commit_offset == 0 {
        diags.push(Diagnostic::new(
            DiagKind::RseqEmptyWindow,
            d.start_ip.min(len.saturating_sub(1)),
            format!(
                "rseq descriptor at data {} has post_commit_offset 0: the window \
                 contains no instructions and protects nothing",
                d.cs_addr
            ),
        ));
        return;
    }
    if d.start_ip >= len || d.post_commit_ip() > len {
        diags.push(Diagnostic::new(
            DiagKind::RseqWindowOutOfBounds,
            d.start_ip.min(len.saturating_sub(1)),
            format!(
                "rseq window [@{}..@{}) extends past the end of the code image \
                 (length {len})",
                d.start_ip,
                d.post_commit_ip()
            ),
        ));
        return;
    }
    if d.abort_ip >= len {
        diags.push(Diagnostic::new(
            DiagKind::RseqWindowOutOfBounds,
            d.start_ip,
            format!(
                "abort_ip @{} lies past the end of the code image (length {len})",
                d.abort_ip
            ),
        ));
    } else if d.contains(d.abort_ip) {
        diags.push(Diagnostic::new(
            DiagKind::RseqAbortInsideWindow,
            d.abort_ip,
            format!(
                "abort_ip @{} lies inside its own window [@{}..@{}): the abort \
                 dispatch would land back in the aborted region",
                d.abort_ip,
                d.start_ip,
                d.post_commit_ip()
            ),
        ));
    }

    let commit_pc = d.post_commit_ip() - 1;
    match program.fetch(commit_pc) {
        Some(Inst::Sw { .. }) => {}
        Some(inst) => diags.push(Diagnostic::new(
            DiagKind::RseqCommitNotStore,
            commit_pc,
            format!(
                "the last instruction of the rseq window is `{inst}`, not a plain \
                 store: there is no single commit point for the abort to cut before"
            ),
        )),
        None => {}
    }

    for pc in d.start_ip..commit_pc {
        let Some(inst) = program.fetch(pc) else { break };
        match inst {
            Inst::Sw { .. } | Inst::Tas { .. } | Inst::BeginAtomic | Inst::Halt => {
                diags.push(Diagnostic::new(
                    DiagKind::RseqSideEffectBeforeCommit,
                    pc,
                    format!(
                        "`{inst}` before the commit point: an abort after it leaves \
                         the side effect behind with no rollback"
                    ),
                ));
            }
            Inst::Syscall => diags.push(Diagnostic::new(
                DiagKind::RseqSyscallInWindow,
                pc,
                "syscall inside an rseq window: the kernel boundary is itself a \
                 preemption point and its effects cannot be aborted"
                    .to_string(),
            )),
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Jr { .. } => {
                diags.push(Diagnostic::new(
                    DiagKind::RseqCallInWindow,
                    pc,
                    format!(
                        "`{inst}` inside an rseq window: the callee runs outside \
                         the descriptor's declared bounds"
                    ),
                ));
            }
            Inst::Branch { target, .. } | Inst::J { target } if target < d.post_commit_ip() => {
                diags.push(Diagnostic::new(
                    DiagKind::RseqBranchInWindow,
                    pc,
                    format!(
                        "branch to @{target} stays inside (or jumps backward \
                         into) the window [@{}..@{}): every early exit must \
                         jump forward past the commit point",
                        d.start_ip,
                        d.post_commit_ip()
                    ),
                ));
            }
            _ => {}
        }
    }

    // Abort reachability by normal control flow. The handler must be an
    // island: entered only by kernel dispatch.
    if d.abort_ip < len && !d.contains(d.abort_ip) {
        if d.abort_ip > 0 {
            if let Some(prev) = program.fetch(d.abort_ip - 1) {
                if prev.falls_through() {
                    diags.push(Diagnostic::new(
                        DiagKind::RseqAbortReachable,
                        d.abort_ip,
                        format!(
                            "`{prev}` at @{} falls through into the abort handler: \
                             normal execution would run the abort path",
                            d.abort_ip - 1
                        ),
                    ));
                }
            }
        }
        for (pc, inst) in program.code().iter().enumerate() {
            if inst.branch_target() == Some(d.abort_ip) {
                diags.push(Diagnostic::new(
                    DiagKind::RseqAbortReachable,
                    pc as CodeAddr,
                    format!(
                        "`{inst}` targets the abort handler at @{}: the handler \
                         must be reachable only via kernel abort dispatch",
                        d.abort_ip
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_guest::rseq::{emit_rseq_tas, emit_rseq_tas_broken};
    use ras_isa::{Asm, DataLayout, Label};
    use ras_kernel::DesignatedSet;

    fn analyze_with_lockset(program: &Program) -> Vec<Diagnostic> {
        let cfg = Cfg::build(program);
        let config = crate::lockset::LocksetConfig::standard(program, &DesignatedSet::standard());
        let ls = crate::lockset::lockset(program, &cfg, &config);
        abort_safety(program, &cfg, &ls)
    }

    /// A hand-built single-descriptor program: publish, a 3-instruction
    /// window committing through `sw`, a `jr` return, then the handler.
    /// `patch` gets to deface the descriptor before `finish`.
    fn toy(patch: impl FnOnce(&mut RseqCs), body: impl FnOnce(&mut Asm, Label)) -> Program {
        let mut data = DataLayout::new();
        let cs = data.array("cs", 4, 0);
        let lock = data.word("lock", 0);
        let mut asm = Asm::new();
        asm.set_entry_here();
        asm.li(Reg::A0, lock as i32);
        let retry = asm.bind_new();
        asm.li(Reg::T0, 64);
        asm.li(Reg::V0, cs as i32);
        asm.sw(Reg::V0, Reg::T0, 0); // publish
        let start_ip = asm.here();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T2, 1);
        asm.sw(Reg::T2, Reg::A0, 0); // commit
        asm.jr(Reg::RA);
        let abort_ip = asm.here();
        body(&mut asm, retry);
        let mut d = RseqCs {
            start_ip,
            post_commit_offset: 3,
            abort_ip,
            flags: 0,
            cs_addr: cs,
        };
        patch(&mut d);
        asm.declare_rseq(d);
        asm.finish().unwrap()
    }

    fn kinds(diags: &[Diagnostic]) -> Vec<DiagKind> {
        diags.iter().map(|d| d.kind).collect()
    }

    #[test]
    fn the_bundled_emitter_is_abort_safe() {
        let mut data = DataLayout::new();
        let lock = data.word("lock", 0);
        let mut asm = Asm::new();
        let t = emit_rseq_tas(&mut asm, &mut data, 4);
        asm.set_entry_here();
        asm.li(Reg::A0, lock as i32);
        asm.jal_to(t.entry);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = analyze_with_lockset(&p);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn the_broken_emitter_is_flagged_for_its_pre_republication_store() {
        let mut data = DataLayout::new();
        let lock = data.word("lock", 0);
        let scratch = data.word("scratch", 0);
        let mut asm = Asm::new();
        let t = emit_rseq_tas_broken(&mut asm, &mut data, 4, scratch);
        asm.set_entry_here();
        asm.li(Reg::A0, lock as i32);
        asm.jal_to(t.entry);
        asm.halt();
        let p = asm.finish().unwrap();
        let diags = analyze_with_lockset(&p);
        assert!(
            kinds(&diags).contains(&DiagKind::RseqHandlerSideEffect),
            "{diags:#?}"
        );
    }

    #[test]
    fn a_clean_toy_descriptor_passes() {
        let p = toy(
            |_| {},
            |asm, retry| {
                asm.j(retry);
            },
        );
        let diags = analyze_with_lockset(&p);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn retry_without_republication_is_stale() {
        // The handler jumps straight back to the window start, skipping
        // the publish store.
        let p = toy(
            |_| {},
            |asm, _| {
                asm.j_to(4); // start_ip of the toy layout
            },
        );
        let diags = analyze_with_lockset(&p);
        assert!(
            kinds(&diags).contains(&DiagKind::RseqStaleRetry),
            "{diags:#?}"
        );
    }

    #[test]
    fn handler_syscalls_other_than_rseq_and_exit_are_flagged() {
        let p = toy(
            |_| {},
            |asm, retry| {
                asm.li(Reg::V0, abi::SYS_PRINT as i32);
                asm.syscall();
                asm.j(retry);
            },
        );
        let diags = analyze_with_lockset(&p);
        assert!(
            kinds(&diags).contains(&DiagKind::RseqHandlerSyscall),
            "{diags:#?}"
        );
    }

    #[test]
    fn handler_calls_are_side_effects() {
        let p = toy(
            |_| {},
            |asm, retry| {
                asm.jal_to(0);
                asm.j(retry);
            },
        );
        let diags = analyze_with_lockset(&p);
        assert!(
            kinds(&diags).contains(&DiagKind::RseqHandlerSideEffect),
            "{diags:#?}"
        );
    }

    #[test]
    fn window_shape_violations_are_reported() {
        // Empty window.
        let p = toy(
            |d| d.post_commit_offset = 0,
            |asm, r| {
                asm.j(r);
            },
        );
        assert!(kinds(&analyze_with_lockset(&p)).contains(&DiagKind::RseqEmptyWindow));

        // Out-of-bounds window.
        let p = toy(
            |d| d.post_commit_offset = 1000,
            |asm, r| {
                asm.j(r);
            },
        );
        assert!(kinds(&analyze_with_lockset(&p)).contains(&DiagKind::RseqWindowOutOfBounds));

        // Window ending one early: the "commit" is the li, not the sw.
        let p = toy(
            |d| d.post_commit_offset = 2,
            |asm, r| {
                asm.j(r);
            },
        );
        assert!(kinds(&analyze_with_lockset(&p)).contains(&DiagKind::RseqCommitNotStore));

        // Abort inside the window.
        let p = toy(
            |d| d.abort_ip = d.start_ip + 1,
            |asm, r| {
                asm.j(r);
            },
        );
        assert!(kinds(&analyze_with_lockset(&p)).contains(&DiagKind::RseqAbortInsideWindow));

        // Window stretched over the publish store *and* the jr: a store
        // before the commit point and a call-class op inside.
        let p = toy(
            |d| {
                d.start_ip -= 1;
                d.post_commit_offset += 3;
            },
            |asm, r| {
                asm.j(r);
            },
        );
        let ks = kinds(&analyze_with_lockset(&p));
        assert!(ks.contains(&DiagKind::RseqSideEffectBeforeCommit), "{ks:?}");
        assert!(ks.contains(&DiagKind::RseqCommitNotStore), "{ks:?}");
        assert!(ks.contains(&DiagKind::RseqCallInWindow), "{ks:?}");
    }

    #[test]
    fn overlapping_windows_are_reported_once_per_pair() {
        let mut data = DataLayout::new();
        let cs = data.array("cs", 8, 0);
        let lock = data.word("lock", 0);
        let mut asm = Asm::new();
        asm.set_entry_here();
        asm.li(Reg::A0, lock as i32);
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T2, 1);
        asm.sw(Reg::T2, Reg::A0, 0);
        asm.jr(Reg::RA);
        let abort = asm.here();
        asm.j_to(1);
        let d1 = RseqCs {
            start_ip: 1,
            post_commit_offset: 3,
            abort_ip: abort,
            flags: 0,
            cs_addr: cs,
        };
        let d2 = RseqCs {
            start_ip: 2,
            post_commit_offset: 2,
            abort_ip: abort,
            flags: 0,
            cs_addr: cs + 16,
        };
        asm.declare_rseq(d1);
        asm.declare_rseq(d2);
        let p = asm.finish().unwrap();
        let ks = kinds(&analyze_with_lockset(&p));
        assert_eq!(
            ks.iter()
                .filter(|k| **k == DiagKind::RseqOverlappingWindows)
                .count(),
            1,
            "{ks:?}"
        );
    }

    #[test]
    fn fallthrough_and_jumps_into_the_handler_are_flagged() {
        // Fallthrough: the instruction before the handler is a plain li.
        let mut data = DataLayout::new();
        let cs = data.array("cs", 4, 0);
        let lock = data.word("lock", 0);
        let mut asm = Asm::new();
        asm.set_entry_here();
        asm.li(Reg::A0, lock as i32);
        let start = asm.here();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T2, 1);
        asm.sw(Reg::T2, Reg::A0, 0);
        asm.li(Reg::T3, 0); // falls through into the handler
        let abort = asm.here();
        asm.halt();
        asm.declare_rseq(RseqCs {
            start_ip: start,
            post_commit_offset: 3,
            abort_ip: abort,
            flags: 0,
            cs_addr: cs,
        });
        let p = asm.finish().unwrap();
        assert!(
            kinds(&analyze_with_lockset(&p)).contains(&DiagKind::RseqAbortReachable),
            "fallthrough"
        );
    }
}
