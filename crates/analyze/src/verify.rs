//! The restartability verifier: proves, per declared sequence, that the
//! kernel's rollback recovery (set the PC back to the sequence start) is
//! always safe.
//!
//! A suspended thread keeps its full register file; rollback only rewrites
//! the PC. Re-executing the sequence from the top is therefore safe iff
//!
//! 1. the committing store is the **only** store and the **last**
//!    instruction — the single point at which the sequence takes effect
//!    (§3 of the paper: "its sole side effect occurs in its final store");
//! 2. the body contains no other side-effecting or non-restartable
//!    instruction (syscall, call, indirect jump, interlocked op, halt);
//! 3. control inside the sequence only moves forward, and every exit
//!    branch jumps past the committing store (a partial execution that
//!    leaves early must look like the sequence never ran);
//! 4. no instruction overwrites a register the sequence reads on entry —
//!    otherwise the re-execution reads a value the first partial execution
//!    already replaced;
//! 5. nothing outside the sequence jumps into its interior, since a thread
//!    that entered mid-sequence could be rolled back over code it never
//!    ran.

use std::collections::BTreeSet;

use ras_isa::{CodeAddr, Inst, Opcode, Program, Reg, SeqRange};

use crate::diag::{DiagKind, Diagnostic};

/// Verifies one declared sequence; returns every violation found.
pub fn verify_sequence(program: &Program, range: SeqRange) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let len = program.len() as CodeAddr;
    if range.len == 0 || range.start >= len || range.end() > len {
        diags.push(Diagnostic::new(
            DiagKind::InvalidRange,
            range.start.min(len.saturating_sub(1)),
            format!(
                "declared sequence [{}..{}) is empty or out of bounds (program has {} instructions)",
                range.start,
                range.end(),
                len
            ),
        ));
        return diags;
    }

    // Rule 1: exactly one store, and it is the final instruction.
    let stores: Vec<CodeAddr> = (range.start..range.end())
        .filter(|&pc| matches!(program.fetch(pc).map(|i| i.opcode()), Some(Opcode::Sw)))
        .collect();
    let commit = range.end() - 1;
    match stores.as_slice() {
        [] => diags.push(Diagnostic::new(
            DiagKind::NoCommittingStore,
            commit,
            format!(
                "sequence [{}..{}) contains no store; a restartable sequence commits through exactly one",
                range.start,
                range.end()
            ),
        )),
        [only] if *only == commit => {}
        [only] => diags.push(Diagnostic::new(
            DiagKind::StoreNotLast,
            *only,
            format!(
                "committing store at @{only} is followed by {} more instruction(s) inside the sequence; \
                 a suspension after it would repeat the store on restart",
                commit - only
            ),
        )),
        [_, extra, ..] => diags.push(Diagnostic::new(
            DiagKind::MultipleStores,
            *extra,
            format!(
                "second store at @{extra}: a rollback past the first store would repeat a memory write"
            ),
        )),
    }

    // Rules 2 and 3: instruction legality and forward-only control.
    for pc in range.start..range.end() {
        let Some(inst) = program.fetch(pc) else { break };
        match inst.opcode() {
            Opcode::Syscall
            | Opcode::Jal
            | Opcode::Jalr
            | Opcode::Jr
            | Opcode::J
            | Opcode::Tas
            | Opcode::BeginAtomic
            | Opcode::Halt => diags.push(Diagnostic::new(
                DiagKind::SideEffectInPrefix,
                pc,
                format!(
                    "`{inst}` inside the sequence is not restartable; \
                     only loads, register operations, landmarks, and forward exit branches may precede the commit"
                ),
            )),
            Opcode::Branch => {
                let target = inst.branch_target().expect("branches have targets");
                if target <= pc {
                    diags.push(Diagnostic::new(
                        DiagKind::BackwardBranch,
                        pc,
                        format!(
                            "branch at @{pc} targets @{target}, an earlier address; \
                             re-executed iterations make the prefix non-idempotent"
                        ),
                    ));
                } else if target < range.end() {
                    diags.push(Diagnostic::new(
                        DiagKind::InternalBranch,
                        pc,
                        format!(
                            "branch at @{pc} lands at @{target}, still inside the sequence; \
                             exit branches must jump past the committing store at @{commit}"
                        ),
                    ));
                }
            }
            _ => {}
        }
    }

    // Rule 4: live-in registers are never overwritten. The body is
    // straight-line (rules 2–3 reject everything else), so a single
    // forward scan computes exact first-use/first-def order.
    let mut defined: BTreeSet<Reg> = BTreeSet::new();
    let mut live_in: BTreeSet<Reg> = BTreeSet::new();
    for pc in range.start..range.end() {
        let Some(inst) = program.fetch(pc) else { break };
        for r in inst.uses() {
            if r != Reg::ZERO && !defined.contains(&r) {
                live_in.insert(r);
            }
        }
        if let Some(d) = inst.def() {
            if d != Reg::ZERO {
                if live_in.contains(&d) {
                    diags.push(Diagnostic::new(
                        DiagKind::LiveInClobbered,
                        pc,
                        format!(
                            "`{inst}` overwrites {d}, which the sequence reads on entry; \
                             after rollback the re-execution would see the clobbered value"
                        ),
                    ));
                }
                defined.insert(d);
            }
        }
    }

    // Rule 5: no control transfer from outside targets the interior.
    for (pc, inst) in program.code().iter().enumerate() {
        let pc = pc as CodeAddr;
        if range.contains(pc) {
            continue;
        }
        if let Some(target) = inst.branch_target() {
            if range.contains(target) && target != range.start {
                diags.push(Diagnostic::new(
                    DiagKind::JumpIntoSequence,
                    pc,
                    format!(
                        "`{inst}` at @{pc} enters the sequence [{}..{}) at @{target}, past its first instruction; \
                         a thread entering here could be rolled back over code it never executed",
                        range.start,
                        range.end()
                    ),
                ));
            }
        }
    }

    diags
}

/// Verifies every declared sequence of `program`, plus the pairwise
/// overlap rule between declarations.
pub fn verify_declared(program: &Program) -> Vec<Diagnostic> {
    let ranges = program.seq_ranges();
    let mut diags = Vec::new();
    for (i, &a) in ranges.iter().enumerate() {
        for &b in &ranges[i + 1..] {
            if a.overlaps(b) {
                diags.push(Diagnostic::new(
                    DiagKind::OverlappingRanges,
                    a.start.max(b.start),
                    format!(
                        "sequences [{}..{}) and [{}..{}) overlap; \
                         a suspension in the overlap has two candidate rollback targets",
                        a.start,
                        a.end(),
                        b.start,
                        b.end()
                    ),
                ));
            }
        }
    }
    for &r in ranges {
        diags.extend(verify_sequence(program, r));
    }
    diags
}

/// Whether an instruction may legally appear in a restartable sequence
/// body (everything the verifier's rule 2 permits).
pub fn restartable_opcode(inst: &Inst) -> bool {
    !matches!(
        inst.opcode(),
        Opcode::Syscall
            | Opcode::Jal
            | Opcode::Jalr
            | Opcode::Jr
            | Opcode::J
            | Opcode::Tas
            | Opcode::BeginAtomic
            | Opcode::Halt
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::Asm;

    fn assert_kinds(diags: &[Diagnostic], kinds: &[DiagKind]) {
        let got: Vec<DiagKind> = diags.iter().map(|d| d.kind).collect();
        assert_eq!(got, kinds, "diags: {diags:#?}");
    }

    #[test]
    fn figure_4_sequence_is_clean() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.jr(Reg::RA);
        asm.declare_seq(SeqRange { start: 0, len: 3 });
        let p = asm.finish().unwrap();
        assert_kinds(&verify_declared(&p), &[]);
    }

    #[test]
    fn out_of_bounds_and_empty_ranges_are_invalid() {
        let mut asm = Asm::new();
        asm.nop();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 0 }),
            &[DiagKind::InvalidRange],
        );
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 5 }),
            &[DiagKind::InvalidRange],
        );
    }

    #[test]
    fn missing_store_is_reported() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.nop();
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 3 }),
            &[DiagKind::NoCommittingStore],
        );
    }

    #[test]
    fn early_store_is_reported() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.nop();
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 3 }),
            &[DiagKind::StoreNotLast],
        );
    }

    #[test]
    fn double_store_is_reported() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.sw(Reg::T0, Reg::A0, 4);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 3 }),
            &[DiagKind::MultipleStores],
        );
    }

    #[test]
    fn syscall_and_call_in_body_are_side_effects() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.syscall();
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 3 }),
            &[DiagKind::SideEffectInPrefix],
        );
    }

    #[test]
    fn backward_branch_is_reported() {
        let mut asm = Asm::new();
        let top = asm.bind_new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.bnez(Reg::V0, top);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 3 }),
            &[DiagKind::BackwardBranch],
        );
    }

    #[test]
    fn internal_branch_is_distinct_from_exit() {
        // Branch to the store itself (interior) vs past it (exit).
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0); // @0
        asm.emit(Inst::Branch {
            cond: ras_isa::Cond::Ne,
            rs: Reg::V0,
            rt: Reg::ZERO,
            target: 2,
        }); // @1 -> @2: interior
        asm.sw(Reg::T0, Reg::A0, 0); // @2
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 3 }),
            &[DiagKind::InternalBranch],
        );
    }

    #[test]
    fn live_in_clobber_is_reported() {
        // lw $a0, ($a0) destroys the base address the re-execution needs.
        let mut asm = Asm::new();
        asm.lw(Reg::A0, Reg::A0, 0);
        asm.sw(Reg::A0, Reg::A0, 0);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 0, len: 2 }),
            &[DiagKind::LiveInClobbered],
        );
    }

    #[test]
    fn jump_into_sequence_is_reported() {
        let mut asm = Asm::new();
        asm.j_to(3); // @0: jumps into the middle of the sequence
        asm.lw(Reg::V0, Reg::A0, 0); // @1
        asm.li(Reg::T0, 1); // @2
        asm.sw(Reg::T0, Reg::A0, 0); // @3
        asm.halt();
        let p = asm.finish().unwrap();
        assert_kinds(
            &verify_sequence(&p, SeqRange { start: 1, len: 3 }),
            &[DiagKind::JumpIntoSequence],
        );
    }

    #[test]
    fn overlapping_declarations_are_reported() {
        let mut asm = Asm::new();
        asm.lw(Reg::V0, Reg::A0, 0);
        asm.li(Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.halt();
        asm.declare_seq(SeqRange { start: 0, len: 3 });
        asm.declare_seq(SeqRange { start: 2, len: 1 });
        let p = asm.finish().unwrap();
        let diags = verify_declared(&p);
        assert!(diags.iter().any(|d| d.kind == DiagKind::OverlappingRanges));
    }

    #[test]
    fn restartable_opcode_is_the_rule_2_set() {
        assert!(restartable_opcode(&Inst::Nop));
        assert!(restartable_opcode(&Inst::Landmark));
        assert!(!restartable_opcode(&Inst::Syscall));
        assert!(!restartable_opcode(&Inst::Halt));
    }
}
