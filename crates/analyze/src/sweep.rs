//! The bundled-workload sweep: every guest workload under every
//! mechanism, enumerated in one fixed order so `ras-lint --workloads`,
//! the CI lint job, and the benchmark trajectory all analyze the same
//! target list and their outputs stay comparable run to run.

use ras_guest::workloads::{
    afs_bench, counter_loop, fork_test, malloc_stress, model_counter, mutex_bench, parthenon,
    ping_pong, proton64, spinlock_bench, text_format, treiber_stack, AfsSpec, CounterSpec,
    MallocSpec, ModelSpec, ParthenonSpec, Proton64Spec, StackSpec, Table2Spec, TasFlavor,
    TextFormatSpec,
};
use ras_guest::Mechanism;
use ras_isa::Program;

/// One bundled program to analyze, named `workload://NAME/MECHANISM`.
pub struct WorkloadTarget {
    /// Stable display name (doubles as the JSON report key).
    pub name: String,
    /// The built program image.
    pub program: Program,
}

/// Every bundled guest workload under every mechanism, in a fixed
/// order: workload enumeration order × [`Mechanism::all`] order, with
/// the model-counter flavors a mechanism supports at the end.
pub fn bundled_workloads() -> Vec<WorkloadTarget> {
    let mut out = Vec::new();
    for m in Mechanism::all() {
        let mut push = |tag: String, program: Program| {
            out.push(WorkloadTarget {
                name: format!("workload://{tag}/{}", m.id()),
                program,
            });
        };
        push(
            "counter-loop".into(),
            counter_loop(m, &CounterSpec::default()).program,
        );
        push(
            "malloc-stress".into(),
            malloc_stress(m, &MallocSpec::default()).program,
        );
        if m == Mechanism::RasInline {
            // The lock-free stack is built on designated CAS sequences.
            push(
                "treiber-stack".into(),
                treiber_stack(m, &StackSpec::default()).program,
            );
        }
        push(
            "spinlock-bench".into(),
            spinlock_bench(m, &Table2Spec::default()).program,
        );
        push(
            "mutex-bench".into(),
            mutex_bench(m, &Table2Spec::default()).program,
        );
        push(
            "fork-test".into(),
            fork_test(m, &Table2Spec::default()).program,
        );
        push(
            "ping-pong".into(),
            ping_pong(m, &Table2Spec::default()).program,
        );
        push(
            "parthenon".into(),
            parthenon(m, &ParthenonSpec::default()).program,
        );
        push(
            "proton64".into(),
            proton64(m, &Proton64Spec::default()).program,
        );
        push(
            "text-format".into(),
            text_format(m, &TextFormatSpec::default()).program,
        );
        push(
            "afs-bench".into(),
            afs_bench(m, &AfsSpec::default()).program,
        );
        for f in TasFlavor::all() {
            if f.supported_by(m) {
                push(
                    format!("model-counter-{}", f.id()),
                    model_counter(m, f, &ModelSpec::default()).program,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_covers_every_mechanism() {
        let a = bundled_workloads();
        let b = bundled_workloads();
        let names: Vec<&str> = a.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, b.iter().map(|t| t.name.as_str()).collect::<Vec<_>>());
        for m in Mechanism::all() {
            let suffix = format!("/{}", m.id());
            assert!(
                names.iter().any(|n| n.ends_with(&suffix)),
                "no targets for {m}"
            );
        }
        let unique: std::collections::BTreeSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "names are unique");
    }
}
