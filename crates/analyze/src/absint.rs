//! A forward abstract-interpretation engine over the [`Cfg`]: a
//! join-semilattice trait, per-instruction transfer functions with
//! edge-sensitive refinement, and a deterministic worklist fixpoint.
//!
//! The engine is deliberately small: a domain supplies a fact type (the
//! lattice element), a transfer function (the effect of one instruction),
//! and an optional refinement applied along outgoing control edges (how a
//! taken branch narrows what is known — the hook that lets a lockset
//! analysis observe "the Test-And-Set returned zero on this path").
//! Everything else — block walking, join-until-stable, and the
//! deterministic replay used to extract observations once the facts have
//! converged — lives here and is shared by every client pass.
//!
//! Facts are kept per *block entry*; instruction-level facts are
//! recomputed on demand by replaying the block from its entry fact, which
//! keeps memory proportional to the block count while giving clients
//! instruction-granularity answers.

use std::collections::{BTreeMap, BTreeSet};

use ras_isa::{CodeAddr, Inst, Program};

use crate::cfg::Cfg;

/// A join-semilattice: facts merge at control-flow joins via least upper
/// bound. The engine only terminates for lattices of finite height (every
/// chain of strictly-growing joins is finite), which all clients here
/// satisfy: register lattices are flat and lock sets are bounded by the
/// words a program names.
pub trait JoinSemiLattice: Clone {
    /// In-place least upper bound; returns `true` iff `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// How control reaches a successor — the context a domain may refine on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Edge {
    /// Fall-through or an unconditional jump: nothing learned.
    Step,
    /// A conditional branch, taken.
    Taken,
    /// A conditional branch, not taken.
    NotTaken,
    /// Into a callee via `jal` (the only statically-resolvable call).
    Call,
    /// Past a call site, to the instruction the callee returns to. The
    /// callee's entry address is carried so domains can apply per-function
    /// summaries (known runtime functions) or a conservative clobber.
    Return {
        /// Entry address of the callee, when statically known.
        callee: Option<CodeAddr>,
    },
}

/// One client analysis: the lattice plus its transfer/refine functions.
///
/// Methods take `&self` and must be pure — the engine calls them an
/// unspecified number of times during the fixpoint and again during
/// replay, and correctness of the final facts depends on the answers
/// never changing.
pub trait AbsDomain {
    /// The lattice element tracked at each program point.
    type Fact: JoinSemiLattice;

    /// Applies one instruction's effect to `fact` (the state *before* the
    /// instruction becomes the state after). Returning `false` cuts the
    /// flow: nothing propagates past `pc` — the hook for thread-exit
    /// syscalls, which fall through syntactically but never dynamically.
    fn transfer(&self, pc: CodeAddr, inst: &Inst, fact: &mut Self::Fact) -> bool;

    /// Refines the post-instruction fact along one outgoing edge.
    fn refine(&self, pc: CodeAddr, inst: &Inst, edge: Edge, fact: &mut Self::Fact) {
        let _ = (pc, inst, edge, fact);
    }

    /// Whether facts propagate along `edge` at all. An interprocedural
    /// domain returns `false` for [`Edge::Call`] to keep callee entry
    /// facts from being polluted by every caller (callees get their own
    /// fixpoint instances with fresh entry facts instead); the effect of
    /// the call is then applied on the matching [`Edge::Return`].
    fn follows_edge(&self, edge: Edge) -> bool {
        let _ = edge;
        true
    }
}

/// The outgoing edges of a block's last instruction, paired with the
/// successor each leads to. This is the single place successor-edge kinds
/// are decided; the fixpoint and every replaying client share it.
pub fn out_edges(program: &Program, cfg: &Cfg, block_start: CodeAddr) -> Vec<(CodeAddr, Edge)> {
    let Some(block) = cfg.block_of(block_start) else {
        return Vec::new();
    };
    let last_pc = block.end - 1;
    let Some(last) = program.fetch(last_pc) else {
        return Vec::new();
    };
    let mut edges = Vec::new();
    for &succ in &block.succs {
        let edge = match last {
            Inst::Branch { target, .. } => {
                if succ == target && succ != block.end {
                    Edge::Taken
                } else if succ == block.end && succ != target {
                    Edge::NotTaken
                } else {
                    // Degenerate branch to its own fall-through: both
                    // outcomes land here; nothing is learned.
                    Edge::Step
                }
            }
            Inst::Jal { target } => {
                if succ == target {
                    Edge::Call
                } else {
                    Edge::Return {
                        callee: Some(target),
                    }
                }
            }
            Inst::Jalr { .. } => Edge::Return { callee: None },
            _ => Edge::Step,
        };
        edges.push((succ, edge));
    }
    edges
}

/// The stabilized facts of one fixpoint run: a fact per reachable block
/// entry. Blocks never reached from the roots have no fact.
pub struct Solution<D: AbsDomain> {
    entry: BTreeMap<CodeAddr, D::Fact>,
}

impl<D: AbsDomain> Solution<D> {
    /// The fact at a block's entry, if the block was reached.
    pub fn entry_fact(&self, block_start: CodeAddr) -> Option<&D::Fact> {
        self.entry.get(&block_start)
    }

    /// Block starts that were reached, in address order.
    pub fn reached_blocks(&self) -> impl Iterator<Item = CodeAddr> + '_ {
        self.entry.keys().copied()
    }

    /// Replays every reached block in address order, invoking `on_inst`
    /// with the fact *before* each instruction, then `on_edge` for each
    /// outgoing edge with the refined post-block fact. Deterministic: the
    /// iteration order depends only on the program.
    pub fn replay(
        &self,
        program: &Program,
        cfg: &Cfg,
        domain: &D,
        mut on_inst: impl FnMut(CodeAddr, &Inst, &D::Fact),
        mut on_edge: impl FnMut(CodeAddr, &Inst, Edge, &D::Fact, &D::Fact),
    ) {
        for (&start, entry_fact) in &self.entry {
            let Some(block) = cfg.block_of(start) else {
                continue;
            };
            let mut fact = entry_fact.clone();
            let mut cut = false;
            for pc in block.start..block.end {
                let Some(inst) = program.fetch(pc) else { break };
                on_inst(pc, &inst, &fact);
                if !domain.transfer(pc, &inst, &mut fact) {
                    cut = true;
                    break;
                }
            }
            if cut {
                continue;
            }
            let last_pc = block.end - 1;
            let Some(last) = program.fetch(last_pc) else {
                continue;
            };
            for (_, edge) in out_edges(program, cfg, start) {
                if !domain.follows_edge(edge) {
                    continue;
                }
                let mut refined = fact.clone();
                domain.refine(last_pc, &last, edge, &mut refined);
                on_edge(last_pc, &last, edge, &fact, &refined);
            }
        }
    }
}

/// Runs the forward worklist fixpoint from the given roots.
///
/// Each root is a code address (snapped to its containing block) seeded
/// with an initial fact. Facts are joined at block entries; a block is
/// re-walked whenever its entry fact grows. The worklist is an ordered
/// set, so the iteration order — and therefore the (unique) fixpoint —
/// is deterministic.
pub fn forward<D: AbsDomain>(
    program: &Program,
    cfg: &Cfg,
    domain: &D,
    roots: &[(CodeAddr, D::Fact)],
) -> Solution<D> {
    let mut entry: BTreeMap<CodeAddr, D::Fact> = BTreeMap::new();
    let mut worklist: BTreeSet<CodeAddr> = BTreeSet::new();

    for (addr, fact) in roots {
        let Some(block) = cfg.block_of(*addr) else {
            continue;
        };
        let start = block.start;
        let changed = match entry.get_mut(&start) {
            Some(existing) => existing.join_from(fact),
            None => {
                entry.insert(start, fact.clone());
                true
            }
        };
        if changed {
            worklist.insert(start);
        }
    }

    while let Some(&start) = worklist.iter().next() {
        worklist.remove(&start);
        let Some(block) = cfg.block_of(start) else {
            continue;
        };
        let mut fact = entry
            .get(&start)
            .expect("worklist entries always have facts")
            .clone();
        let mut cut = false;
        for pc in block.start..block.end {
            let Some(inst) = program.fetch(pc) else {
                cut = true;
                break;
            };
            if !domain.transfer(pc, &inst, &mut fact) {
                cut = true;
                break;
            }
        }
        if cut {
            continue;
        }
        let last_pc = block.end - 1;
        let Some(last) = program.fetch(last_pc) else {
            continue;
        };
        for (succ, edge) in out_edges(program, cfg, start) {
            if !domain.follows_edge(edge) {
                continue;
            }
            let Some(succ_block) = cfg.block_of(succ) else {
                continue;
            };
            let succ_start = succ_block.start;
            let mut refined = fact.clone();
            domain.refine(last_pc, &last, edge, &mut refined);
            let changed = match entry.get_mut(&succ_start) {
                Some(existing) => existing.join_from(&refined),
                None => {
                    entry.insert(succ_start, refined);
                    true
                }
            };
            if changed {
                worklist.insert(succ_start);
            }
        }
    }

    Solution { entry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};

    /// A flat constant domain over a single register's sign, tiny enough
    /// to exercise joins, refinement, and cuts.
    #[derive(Clone, PartialEq, Debug)]
    enum Sign {
        Bottomless, // unknown
        Zero,
        NonZero,
    }

    impl JoinSemiLattice for Sign {
        fn join_from(&mut self, other: &Self) -> bool {
            if self == other || *self == Sign::Bottomless {
                return false;
            }
            *self = Sign::Bottomless;
            true
        }
    }

    struct SignOfV0;

    impl AbsDomain for SignOfV0 {
        type Fact = Sign;
        fn transfer(&self, _pc: CodeAddr, inst: &Inst, fact: &mut Sign) -> bool {
            if let Inst::Li { rd, imm } = *inst {
                if rd == Reg::V0 {
                    *fact = if imm == 0 { Sign::Zero } else { Sign::NonZero };
                }
            }
            !matches!(inst, Inst::Halt)
        }
        fn refine(&self, _pc: CodeAddr, inst: &Inst, edge: Edge, fact: &mut Sign) {
            if let Some(t) = ras_isa::idiom::zero_test(inst) {
                if t.reg == Reg::V0 {
                    let zero_edge = (edge == Edge::Taken) == t.zero_when_taken;
                    if zero_edge && matches!(edge, Edge::Taken | Edge::NotTaken) {
                        *fact = Sign::Zero;
                    }
                }
            }
        }
    }

    #[test]
    fn fixpoint_joins_and_refines() {
        // v0 := 1; beqz v0, zero_path (statically dead but explored);
        // fallthrough keeps NonZero, taken edge refines to Zero.
        let mut asm = Asm::new();
        let zero_path = asm.label();
        asm.li(Reg::V0, 1); // @0
        asm.beqz(Reg::V0, zero_path); // @1
        asm.nop(); // @2: not-taken side
        asm.bind(zero_path);
        asm.nop(); // @3: taken side joins with fallthrough
        asm.halt(); // @4
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let sol = forward(&p, &cfg, &SignOfV0, &[(0, Sign::Bottomless)]);
        // Entry of @2 (not-taken): still NonZero.
        assert_eq!(sol.entry_fact(2), Some(&Sign::NonZero));
        // Entry of @3: join of refined-Zero (taken) and NonZero
        // (fallthrough from @2) = unknown.
        assert_eq!(sol.entry_fact(3), Some(&Sign::Bottomless));
    }

    #[test]
    fn cuts_stop_propagation() {
        let mut asm = Asm::new();
        asm.li(Reg::V0, 0); // @0
        asm.halt(); // @1: cut — nothing flows past
        asm.li(Reg::V0, 1); // @2: unreached from the root
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let sol = forward(&p, &cfg, &SignOfV0, &[(0, Sign::Bottomless)]);
        assert!(sol.entry_fact(0).is_some());
        assert_eq!(sol.entry_fact(2), None, "halt cut the only path in");
    }

    #[test]
    fn replay_visits_in_address_order_with_entry_facts() {
        let mut asm = Asm::new();
        let out = asm.label();
        asm.li(Reg::V0, 7);
        asm.beqz(Reg::V0, out);
        asm.nop();
        asm.bind(out);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        let sol = forward(&p, &cfg, &SignOfV0, &[(0, Sign::Bottomless)]);
        let mut pcs = Vec::new();
        let mut edges = Vec::new();
        sol.replay(
            &p,
            &cfg,
            &SignOfV0,
            |pc, _, _| pcs.push(pc),
            |pc, _, edge, _, _| edges.push((pc, edge)),
        );
        let mut sorted = pcs.clone();
        sorted.sort_unstable();
        assert_eq!(pcs, sorted, "deterministic address order");
        assert!(edges.contains(&(1, Edge::Taken)));
        assert!(edges.contains(&(1, Edge::NotTaken)));
    }

    #[test]
    fn loops_reach_a_fixed_point() {
        let mut asm = Asm::new();
        let top = asm.bind_new();
        asm.li(Reg::V0, 1); // loop body keeps redefining v0
        asm.bnez(Reg::V0, top);
        asm.halt();
        let p = asm.finish().unwrap();
        let cfg = Cfg::build(&p);
        // Terminates (finite lattice) and the back-edge join is stable.
        let sol = forward(&p, &cfg, &SignOfV0, &[(0, Sign::Bottomless)]);
        assert_eq!(sol.entry_fact(0), Some(&Sign::Bottomless));
    }
}
