//! Golden-file test for `ras-lint --json`: the JSON report is a CI
//! artifact, so its bytes must be deterministic — targets in argument
//! order, findings sorted by address, proposals sorted by start. Any
//! intentional format change regenerates the goldens with the command
//! each file names.

use std::process::Command;

fn run_lint(args: &[&str]) -> (String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_ras-lint"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("ras-lint runs");
    let code = out.status.code().expect("exit code");
    (String::from_utf8(out.stdout).expect("utf-8 output"), code)
}

#[test]
fn json_report_matches_the_golden_file() {
    // ras-lint --json --infer tests/fixtures/naive_counter.s
    let (stdout, code) = run_lint(&["--json", "--infer", "tests/fixtures/naive_counter.s"]);
    assert_eq!(stdout, include_str!("golden/naive_counter.json"));
    assert_eq!(code, 3, "one warning, no errors");
}

#[test]
fn json_report_with_declared_sequence_matches_the_golden_file() {
    // ras-lint --json --infer --seq 1:3 tests/fixtures/naive_counter.s
    let (stdout, code) = run_lint(&[
        "--json",
        "--infer",
        "--seq",
        "1:3",
        "tests/fixtures/naive_counter.s",
    ]);
    assert_eq!(stdout, include_str!("golden/naive_counter_declared.json"));
    assert_eq!(code, 0, "the declared range silences the window");
}

/// The well-formed bundled-style rseq section is proven abort-safe: the
/// report names the `rseq` strategy, counts the descriptor, and carries
/// no diagnostics.
#[test]
fn clean_rseq_fixture_is_proven_abort_safe() {
    // ras-lint --json tests/fixtures/rseq_tas.s
    let (stdout, code) = run_lint(&["--json", "tests/fixtures/rseq_tas.s"]);
    assert_eq!(stdout, include_str!("golden/rseq_tas.json"));
    assert_eq!(code, 0, "the clean abort handler verifies");
}

/// The deliberately broken abort handler — a visible store before the
/// descriptor republication — is flagged as an error, pinned byte for
/// byte.
#[test]
fn broken_abort_handler_is_flagged_as_an_error() {
    // ras-lint --json tests/fixtures/rseq_broken_abort.s
    let (stdout, code) = run_lint(&["--json", "tests/fixtures/rseq_broken_abort.s"]);
    assert_eq!(stdout, include_str!("golden/rseq_broken_abort.json"));
    assert!(
        stdout.contains("\"code\":\"rseq-handler-side-effect\""),
        "{stdout}"
    );
    assert_eq!(code, 1, "an abort-safety error must fail the lint");
}

#[test]
fn json_report_is_byte_identical_across_runs() {
    let args = ["--json", "--infer", "tests/fixtures/naive_counter.s"];
    let (first, _) = run_lint(&args);
    let (second, _) = run_lint(&args);
    assert_eq!(first, second);
}
