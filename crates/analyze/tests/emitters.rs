//! Cross-crate acceptance: every sequence the `ras-guest` emitters
//! generate must (a) pass the static restartability verifier with zero
//! findings and (b) — for the designated shapes — be recognized by the
//! kernel's two-stage matcher at every interior suspension point, rolling
//! back to the declared start. This pins the three crates (guest
//! generators, kernel recognizer, static verifier) to one definition of
//! "restartable atomic sequence".

use proptest::prelude::*;
use ras_analyze::analyze;
use ras_guest::tas;
use ras_isa::{Asm, SeqRange};
use ras_kernel::DesignatedSet;

/// Emits a sequence behind `pad` nops, closes the program, and checks
/// verifier acceptance; for designated shapes, also checks the stage-2
/// match at every interior pc and the non-match at both boundaries.
fn accept(name: &str, pad: u32, designated: bool, emit: impl FnOnce(&mut Asm) -> SeqRange) {
    let mut asm = Asm::new();
    for _ in 0..pad {
        asm.nop();
    }
    let range = emit(&mut asm);
    asm.halt();
    let p = asm.finish().unwrap();
    assert_eq!(p.seq_ranges(), &[range], "{name}: emitter declares itself");

    let set = DesignatedSet::standard();
    let analysis = analyze(&p, &set);
    assert!(
        analysis.diags.is_empty(),
        "{name}: expected a clean bill, got {:#?}",
        analysis.diags
    );

    if designated {
        for pc in range.start + 1..range.end() {
            assert_eq!(
                set.stage2(&p, pc),
                Some(range.start),
                "{name}: interior pc {pc} must roll back to {}",
                range.start
            );
        }
        assert_eq!(
            set.stage2(&p, range.start),
            None,
            "{name}: nothing executed at the first instruction"
        );
        assert_eq!(
            set.stage2(&p, range.end()),
            None,
            "{name}: the sequence is complete past its store"
        );
    }
}

#[test]
fn registered_tas_is_accepted() {
    // Registered (Figure 4) sequences have no landmark; the kernel checks
    // a PC range, so only verifier acceptance applies.
    accept("tas-registered", 0, false, |asm| {
        tas::emit_tas_registered(asm).1
    });
}

#[test]
fn inline_tas_is_accepted_and_matched() {
    accept("tas-inline", 1, true, tas::emit_tas_inline);
}

#[test]
fn xchg_is_accepted_and_matched() {
    accept("xchg", 2, true, tas::emit_xchg_inline);
}

#[test]
fn cas_is_accepted_and_matched() {
    accept("cas", 3, true, tas::emit_cas_inline);
}

#[test]
fn faa_is_accepted_and_matched() {
    accept("faa", 1, true, |asm| tas::emit_faa_inline(asm, 1));
}

proptest! {
    #[test]
    fn faa_verifies_for_any_delta_and_padding(
        delta in -1000i32..1000,
        pad in 0u32..8,
    ) {
        accept("faa-prop", pad, true, |asm| tas::emit_faa_inline(asm, delta));
    }

    #[test]
    fn every_designated_emitter_verifies_at_any_padding(pad in 0u32..16) {
        accept("tas-prop", pad, true, tas::emit_tas_inline);
        accept("xchg-prop", pad, true, tas::emit_xchg_inline);
        accept("cas-prop", pad, true, tas::emit_cas_inline);
    }
}
