# A well-formed rseq test-and-set: the retry path publishes the
# descriptor (stores its address 0x50 into the registered area slot),
# the three-instruction window commits through its final store, and the
# abort handler's only act is to jump back to the publishing retry
# path. The abort-safety pass must prove this clean.
.entry main
.rseq win 3 abort 0x50
main:
  li   $a0, 0x40        # @0 lock address
retry:
  li   $t0, 0x60        # @1 registered rseq area slot
  li   $v0, 0x50        # @2 descriptor address
  sw   $v0, 0($t0)      # @3 publish
win:
  lw   $v0, 0($a0)      # @4 observe the lock
  li   $t2, 1           # @5
  sw   $t2, 0($a0)      # @6 commit: take the lock
  jr   $ra              # @7 return the observed value
abort:
  j    retry            # @8 republish and retry — nothing else
