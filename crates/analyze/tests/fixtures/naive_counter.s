# A deliberately naive shared-counter increment: the paper's motivating
# lost-update window (§1), as a parseable fixture for the golden test.
.entry main
main:
  li   $a0, 0x40
  lw   $t0, 0($a0)      # @1: opens the window — flagged, and inferable
  addi $t0, $t0, 1
  sw   $t0, 0($a0)      # @3: commits it
  halt
