# The same rseq test-and-set as rseq_tas.s, except the abort handler
# performs a visible store *before* republishing the descriptor. An
# abort lands here with the descriptor already consumed, so a second
# preemption inside the handler replays that store — it is not
# restart-safe, and the abort-safety pass must flag it as an error.
.entry main
.rseq win 3 abort 0x50
main:
  li   $a0, 0x40        # @0 lock address
retry:
  li   $t0, 0x60        # @1 registered rseq area slot
  li   $v0, 0x50        # @2 descriptor address
  sw   $v0, 0($t0)      # @3 publish
win:
  lw   $v0, 0($a0)      # @4 observe the lock
  li   $t2, 1           # @5
  sw   $t2, 0($a0)      # @6 commit: take the lock
  jr   $ra              # @7 return the observed value
abort:
  li   $t3, 1           # @8
  sw   $t3, 0($a0)      # @9 BROKEN: side effect before republication
  j    retry            # @10
