//! Mutation coverage for the verifier: start from the emitters' correct
//! shapes, apply one restartability-breaking mutation each, and demand
//! that the analysis rejects the mutant with the *right* diagnostic at
//! the *right* address. A verifier that merely says "bad" would pass a
//! weaker version of these; pinning (kind, addr) keeps each rule
//! independently honest.

use ras_analyze::{analyze_standard, DiagKind, Diagnostic};
use ras_isa::{Asm, CodeAddr, Reg, SeqRange};

fn diags(asm: Asm) -> Vec<Diagnostic> {
    let p = asm.finish().unwrap();
    let analysis = analyze_standard(&p);
    assert!(
        analysis.has_errors(),
        "mutant must be rejected, got {:#?}",
        analysis.diags
    );
    analysis.diags
}

fn assert_has(diags: &[Diagnostic], kind: DiagKind, addr: CodeAddr) {
    assert!(
        diags.iter().any(|d| d.kind == kind && d.addr == addr),
        "expected {kind:?} at @{addr}, got {diags:#?}"
    );
}

#[test]
fn store_swapped_earlier_is_store_not_last() {
    // Figure 4 with the commit hoisted above the modify step: a suspension
    // at the nop repeats the store on restart.
    let mut asm = Asm::new();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.sw(Reg::T0, Reg::A0, 0); // mutated: store moved up
    asm.nop();
    asm.jr(Reg::RA);
    asm.declare_seq(SeqRange { start: 0, len: 3 });
    assert_has(&diags(asm), DiagKind::StoreNotLast, 1);
}

#[test]
fn second_store_is_multiple_stores() {
    let mut asm = Asm::new();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 4); // mutated: an extra store slipped in
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.jr(Reg::RA);
    asm.declare_seq(SeqRange { start: 0, len: 4 });
    assert_has(&diags(asm), DiagKind::MultipleStores, 3);
}

#[test]
fn moved_landmark_is_a_collision() {
    // The inline TAS with its landmark hoisted before the branch: the
    // shape no longer matches any template, so the landmark violates the
    // never-emitted-otherwise convention and the kernel would not
    // recognize (or roll back) the sequence.
    let mut asm = Asm::new();
    let out = asm.label();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.landmark(); // mutated: landmark moved one slot early
    asm.bnez(Reg::V0, out);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.bind(out);
    asm.halt();
    asm.declare_seq(SeqRange { start: 0, len: 5 });
    assert_has(&diags(asm), DiagKind::LandmarkCollision, 2);
}

#[test]
fn retry_loop_inside_the_sequence_is_a_backward_branch() {
    // A "helpful" optimization that retries the load inside the sequence:
    // re-executing the prefix is no longer idempotent bookkeeping.
    let mut asm = Asm::new();
    let top = asm.bind_new();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.bnez(Reg::V0, top); // mutated: spin until free, inside the range
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.halt();
    asm.declare_seq(SeqRange { start: 0, len: 3 });
    assert_has(&diags(asm), DiagKind::BackwardBranch, 1);
}

#[test]
fn syscall_in_the_body_is_a_side_effect() {
    let mut asm = Asm::new();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.syscall(); // mutated: a trap mid-sequence
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.halt();
    asm.declare_seq(SeqRange { start: 0, len: 3 });
    assert_has(&diags(asm), DiagKind::SideEffectInPrefix, 1);
}

#[test]
fn clobbered_base_register_is_live_in_clobbered() {
    // Loading into the base register destroys the address the restarted
    // execution must re-read.
    let mut asm = Asm::new();
    asm.lw(Reg::A0, Reg::A0, 0); // mutated: rd aliases the base
    asm.sw(Reg::A0, Reg::A0, 0);
    asm.halt();
    asm.declare_seq(SeqRange { start: 0, len: 2 });
    assert_has(&diags(asm), DiagKind::LiveInClobbered, 0);
}

#[test]
fn branch_into_the_interior_is_jump_into_sequence() {
    let mut asm = Asm::new();
    asm.j_to(3); // mutated: fast path jumps straight to the store
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.halt();
    asm.declare_seq(SeqRange { start: 1, len: 3 });
    assert_has(&diags(asm), DiagKind::JumpIntoSequence, 0);
}

#[test]
fn mutation_classes_produce_distinct_located_diagnostics() {
    // The acceptance bar: at least four mutation classes, each rejected
    // with its own (kind, addr) pair — no catch-all diagnostic.
    let expected = [
        (DiagKind::StoreNotLast, 1),
        (DiagKind::MultipleStores, 3),
        (DiagKind::LandmarkCollision, 2),
        (DiagKind::BackwardBranch, 1),
        (DiagKind::SideEffectInPrefix, 1),
        (DiagKind::LiveInClobbered, 0),
        (DiagKind::JumpIntoSequence, 0),
    ];
    let kinds: std::collections::BTreeSet<_> =
        expected.iter().map(|(k, _)| format!("{k:?}")).collect();
    assert_eq!(kinds.len(), expected.len(), "every class has its own kind");
}
