//! Static↔dynamic cross-validation: the lockset pass's race verdicts
//! against the model checker's happens-before sanitizer, over every
//! race-checked bundled model target.
//!
//! The two analyses must agree exactly:
//!
//! * **no false positives** — a word the lockset proves `Racy` is
//!   witnessed by the sanitizer in some explored schedule;
//! * **no false negatives** — a word the sanitizer reports raced is
//!   `Racy` statically;
//! * **no contradiction** — no statically-`Protected` word ever appears
//!   in a dynamic race report.
//!
//! The Lamport mechanisms are exempt on both sides for the same reason
//! ([`ModelTarget::races_checked`]): their protocols synchronize through
//! plain loads and stores, which a happens-before analysis cannot see.

use ras_analyze::{lockset, Cfg, LocksetAnalysis, LocksetConfig};
use ras_guest::workloads::{model_counter, ModelSpec, TasFlavor};
use ras_guest::{BuiltGuest, Mechanism};
use ras_kernel::StrategyKind;
use ras_model::{check_target, race_report, CheckConfig, ModelTarget};

/// The exploration depth. Bound 3 is the shallowest at which the ablated
/// target's dynamic race set saturates to every shared word the static
/// pass names (at bound 2 the `violations` tally is only reached by one
/// thread in any explored schedule), and no target hits the schedule cap.
fn config() -> CheckConfig {
    CheckConfig {
        preemption_bound: 3,
        ..CheckConfig::default()
    }
}

/// Rebuilds exactly the guest [`race_report`] explores for `target`.
fn build(target: ModelTarget, config: &CheckConfig) -> BuiltGuest {
    let spec = ModelSpec {
        iterations: config.iterations,
        workers: config.workers,
    };
    let mut built = model_counter(target.mechanism, target.flavor, &spec);
    if target.ablated {
        built.strategy = StrategyKind::None;
    }
    built
}

fn analyze(built: &BuiltGuest) -> LocksetAnalysis {
    let cfg = Cfg::build(&built.program);
    let config = LocksetConfig::for_guest(built);
    lockset(&built.program, &cfg, &config)
}

#[test]
fn static_and_dynamic_race_sets_agree_on_every_target() {
    let config = config();
    for target in ModelTarget::all() {
        if !target.races_checked() {
            continue;
        }
        let built = build(target, &config);
        let a = analyze(&built);
        let report = race_report(target, &config);
        assert!(
            !report.hit_schedule_cap,
            "{target}: capped exploration cannot certify a race set"
        );
        assert!(
            a.reliable,
            "{target}: the static pass must resolve every store to certify"
        );
        assert_eq!(
            a.racy_words(),
            report.raced_words(),
            "{target}: static racy words vs dynamically witnessed words \
             (verdicts: {:#?})",
            a.verdicts
        );
    }
}

#[test]
fn no_statically_protected_word_is_ever_dynamically_raced() {
    let config = config();
    for target in ModelTarget::all() {
        if !target.races_checked() {
            continue;
        }
        let built = build(target, &config);
        let a = analyze(&built);
        let report = race_report(target, &config);
        for word in a.protected_words() {
            assert!(
                !report.raced_words().contains(&word),
                "{target}: word 0x{word:x} is statically protected yet \
                 raced in an explored schedule"
            );
        }
    }
}

#[test]
fn ablated_target_races_exactly_the_words_the_lockset_names() {
    // The refutation target, pinned concretely: stripping the kernel
    // strategy makes every shared word — lock, counter, cs_owner,
    // violations — racy, and both analyses name precisely those.
    let config = config();
    let target = *ModelTarget::all()
        .iter()
        .find(|t| t.ablated)
        .expect("the ablation is bundled");
    let built = build(target, &config);
    let expect: Vec<u32> = ["lock", "counter", "cs_owner", "violations"]
        .iter()
        .map(|w| built.data.symbol(w).expect("workload symbol"))
        .collect();
    let a = analyze(&built);
    let report = race_report(target, &config);
    assert_eq!(a.racy_words(), expect);
    assert_eq!(report.raced_words(), expect);
    assert!(
        report.protected.is_empty(),
        "the ablation strips rollback: nothing is protected dynamically"
    );
}

/// Static↔dynamic agreement for the abort-safety verdict itself: the
/// full static pipeline proves the bundled rseq guest's abort handler
/// safe (no `rseq-*` finding of any severity), and the model checker's
/// exhaustive search — which provably drives preemptions into the
/// published window and through that very handler — finds no violation,
/// no race, and no livelock on the same binary.
#[test]
fn static_abort_safety_verdict_agrees_with_exhaustive_abort_exploration() {
    let config = config();
    let target = ModelTarget {
        mechanism: Mechanism::Rseq,
        flavor: TasFlavor::Tas,
        ablated: false,
    };
    let built = build(target, &config);

    let analysis = ras_analyze::analyze_standard(&built.program);
    let rseq_findings: Vec<_> = analysis
        .diags
        .iter()
        .filter(|d| d.kind.code().starts_with("rseq-"))
        .collect();
    assert!(
        rseq_findings.is_empty(),
        "the bundled rseq guest must verify abort-safe statically: {rseq_findings:#?}"
    );
    assert!(
        !built.program.rseq_descs().is_empty(),
        "the verdict must not be vacuous — the guest publishes a descriptor"
    );

    let report = check_target(target, &config);
    assert!(report.ok(), "{:#?}", report.violations);
    assert!(!report.hit_schedule_cap);
    assert_eq!(report.livelock_suspects, 0);
    assert!(
        report.rseq_aborts > 0,
        "the dynamic half must actually exercise the abort handler"
    );
}

#[test]
fn safe_targets_report_no_races_on_either_side() {
    let config = config();
    for target in ModelTarget::all() {
        if !target.races_checked() || target.ablated {
            continue;
        }
        let built = build(target, &config);
        let a = analyze(&built);
        let report = race_report(target, &config);
        assert!(a.racy_words().is_empty(), "{target}: {:#?}", a.verdicts);
        assert!(report.races.is_empty(), "{target}: {:?}", report.races);
        assert_eq!(
            report.protected,
            built.program.seq_ranges().to_vec(),
            "{target}: the detector protects exactly the declared ranges"
        );
    }
}
