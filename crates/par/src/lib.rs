//! `ras-par` — deterministic fork-join fan-out for independent
//! experiment cells.
//!
//! Every experiment in this workspace is a grid of *cells* — one
//! mechanism of Table 1, one architecture of Table 4, one target of the
//! model checker — and every cell is a self-contained deterministic
//! simulation: it boots its own kernel, owns its own machine, and shares
//! nothing with its siblings. That makes the grid embarrassingly
//! parallel, but only if the fan-out preserves two properties the
//! harness relies on:
//!
//! * **per-cell determinism** — a cell computes exactly what it would
//!   have computed serially (guaranteed here trivially: the closure runs
//!   unchanged, once, on one item);
//! * **stable output ordering** — results come back in input order, not
//!   completion order, so rendered tables and claim evidence are
//!   byte-identical to a serial run regardless of worker count.
//!
//! [`parallel_map`] provides exactly that: input order in, input order
//! out, workers pulling cells from a shared index. The worker count
//! comes from [`worker_count`] — the `RAS_THREADS` environment variable
//! when set, otherwise [`std::thread::available_parallelism`] — and a
//! count of one (or a single-cell grid) degrades to a plain serial map
//! on the calling thread, with no threads spawned at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of workers a fan-out will use for `items` cells: the
/// smaller of the available parallelism and the cell count.
///
/// `RAS_THREADS` overrides the detected parallelism (values `0` and `1`
/// both mean "serial"), which is how the byte-identity tests and CI pin
/// the harness to a deterministic single-worker configuration — and how
/// a user can keep the harness off N-1 of their cores.
pub fn worker_count(items: usize) -> usize {
    available_workers().min(items).max(1)
}

/// The configured parallelism before clamping to a cell count: the
/// `RAS_THREADS` environment variable when set, otherwise
/// [`std::thread::available_parallelism`]. Callers that split work
/// dynamically (the model checker's subtree fan-out) consult this to
/// decide whether splitting is worth doing at all.
pub fn available_workers() -> usize {
    match std::env::var("RAS_THREADS") {
        Ok(v) => v.parse::<usize>().ok().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, usize::from),
    }
}

/// Maps `f` over `items` on a pool of [`worker_count`] threads,
/// returning results in input order.
///
/// Cells are claimed from a shared atomic cursor, so an expensive cell
/// does not leave a whole stripe idle; each result lands in the slot of
/// its input index, so the output `Vec` is ordered exactly as a serial
/// `items.iter().map(f).collect()` — the property the table renderers
/// and verification claims depend on.
///
/// # Panics
///
/// Panics if `f` panics on any item (the panic is propagated when the
/// worker threads join).
pub fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let workers = worker_count(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell computed")
        })
        .collect()
}

/// Like [`parallel_map`] but consumes the items, handing each cell to
/// the closure by value — for work units that carry owned state (the
/// model checker's subtree tasks own a kernel snapshot each).
///
/// Uses [`worker_count`] workers; see [`parallel_map_owned_with`] to pin
/// the count explicitly.
///
/// # Panics
///
/// Panics if `f` panics on any item.
pub fn parallel_map_owned<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = worker_count(items.len());
    parallel_map_owned_with(workers, items, f)
}

/// [`parallel_map_owned`] with an explicit worker count, ignoring
/// `RAS_THREADS` and the detected parallelism. The byte-identity tests
/// use this to force a genuinely threaded fan-out without mutating
/// process-global environment state.
///
/// A count of one (or zero) degrades to a serial map on the calling
/// thread.
///
/// # Panics
///
/// Panics if `f` panics on any item.
pub fn parallel_map_owned_with<T, U, F>(workers: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<U>>> = cells.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(cells.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(cell) = cells.get(i) else { break };
                let item = cell
                    .lock()
                    .expect("input cell poisoned")
                    .take()
                    .expect("each cell claimed once");
                let result = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every cell computed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_order_matches_input_order() {
        let items: Vec<u64> = (0..257).collect();
        // Uneven per-cell cost so completion order differs from input
        // order whenever more than one worker runs.
        let out = parallel_map(&items, |&n| {
            let spin = (n * 2_654_435_761) % 1_000;
            let mut acc = n;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            }
            (n, acc)
        });
        assert_eq!(out.len(), items.len());
        for (i, (n, _)) in out.iter().enumerate() {
            assert_eq!(*n, items[i]);
        }
    }

    #[test]
    fn matches_a_serial_map_exactly() {
        let items: Vec<i32> = (-40..40).collect();
        let f = |&n: &i32| n.wrapping_mul(n).wrapping_sub(7);
        let serial: Vec<i32> = items.iter().map(f).collect();
        assert_eq!(parallel_map(&items, f), serial);
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let none: Vec<u8> = Vec::new();
        assert!(parallel_map(&none, |&b| b).is_empty());
        assert_eq!(parallel_map(&[9u8], |&b| b + 1), vec![10]);
    }

    #[test]
    fn worker_count_never_exceeds_the_cell_count() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(64) >= 1);
        assert!(worker_count(2) <= 2);
        assert!(available_workers() >= 1);
    }

    #[test]
    fn owned_map_matches_a_serial_map_for_any_worker_count() {
        let f = |s: String| format!("{s}!");
        let serial: Vec<String> = (0..37).map(|n| f(n.to_string())).collect();
        for workers in [0, 1, 2, 3, 8] {
            let items: Vec<String> = (0..37).map(|n| n.to_string()).collect();
            assert_eq!(parallel_map_owned_with(workers, items, f), serial);
        }
        let items: Vec<String> = (0..37).map(|n| n.to_string()).collect();
        assert_eq!(parallel_map_owned(items, f), serial);
        assert!(parallel_map_owned_with(4, Vec::<u8>::new(), |b| b).is_empty());
    }
}
