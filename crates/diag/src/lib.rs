//! Shared diagnostics for the analysis tools: one severity enum, one set of
//! finding kinds, and one rendering path used by both the static verifier
//! (`ras-analyze`) and the dynamic model checker (`ras-model`).
//!
//! A finding is a [`Diagnostic`]: a [`DiagKind`] (which fixes the
//! [`Severity`] and a stable short code), an instruction address, and a
//! human-readable message. Findings can be rendered as plain text with a
//! disassembly window ([`Diagnostic::render`]) or as JSON objects
//! ([`Diagnostic::to_json`], [`render_json`]) for programmatic consumers
//! such as CI and `ras-check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use ras_isa::{CodeAddr, Program};

/// How serious a finding is.
///
/// Errors are violations of the restartability rules, of the landmark
/// convention, or of a verified runtime property — running the program
/// under preemption can corrupt state or roll a thread back to the wrong
/// place. Warnings flag code or behavior that is *suspicious* (a naive
/// read-modify-write window, a schedule that hit the exploration depth
/// bound) but that the analysis cannot prove broken.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Might be fine in context; a human should look.
    Warning,
    /// A rule of the atomicity mechanism is violated.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The distinct findings the analyses can produce. Each maps to a stable
/// code (printed in brackets) so tests and tooling can match on the class
/// rather than the message text.
///
/// The first group comes from the static passes in `ras-analyze`; the
/// group starting at [`DiagKind::DataRace`] comes from the dynamic model
/// checker in `ras-model`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DiagKind {
    /// A declared sequence is empty or extends past the end of the image.
    InvalidRange,
    /// Two declared sequences share instructions; a suspension inside the
    /// overlap has two candidate rollback targets.
    OverlappingRanges,
    /// A declared sequence contains no store: there is nothing to commit,
    /// so the code has no business being a sequence.
    NoCommittingStore,
    /// The committing store is not the last instruction of the sequence, so
    /// a suspension after it would repeat the store's side effect.
    StoreNotLast,
    /// More than one store in the sequence: rolling back after the first
    /// store repeats a memory write.
    MultipleStores,
    /// A non-restartable instruction (syscall, call, indirect jump,
    /// interlocked or hardware-atomic op, halt) sits in the sequence body.
    SideEffectInPrefix,
    /// A branch inside the sequence targets an earlier address: re-executed
    /// loop iterations make the prefix non-idempotent (and the designated
    /// matcher cannot describe it).
    BackwardBranch,
    /// A branch inside the sequence lands on another interior instruction
    /// instead of exiting past the committing store.
    InternalBranch,
    /// An instruction overwrites a register the sequence reads on entry;
    /// re-execution after rollback would see the clobbered value.
    LiveInClobbered,
    /// A control transfer from outside the sequence targets an interior
    /// instruction; a thread entering mid-sequence can be rolled back over
    /// code it never executed.
    JumpIntoSequence,
    /// A landmark instruction that no designated-sequence template
    /// explains. The whole two-stage matcher is sound only because "the
    /// landmark is never emitted under any other circumstance" (§3.2).
    LandmarkCollision,
    /// Two templates in a designated set can match overlapping instruction
    /// streams with different rollback starts.
    AmbiguousTemplates,
    /// A load and a store to the same word with no visible protection —
    /// a naive read-modify-write that preemption can tear.
    UnprotectedRmw,
    /// A read-modify-write window the lockset analysis *proved* racy:
    /// concurrently-running threads reach conflicting plain accesses to
    /// the same word with no common lock, atomic sequence, or hardware
    /// window — the paper's §2 lost-update hazard, as a verdict rather
    /// than a suspicion.
    RacyRmw,
    /// A lock is acquired on a path where the analysis proves it is
    /// already held; the re-acquire can never succeed and the thread
    /// spins against itself.
    DoubleAcquire,
    /// A release-shaped store (clearing a known lock word) on a path
    /// where the lock cannot be held; the clear hands the lock to a
    /// thread that never owned it.
    ReleaseNotHeld,
    /// A thread-exit path on which a lock is still provably held; no
    /// other thread can ever acquire it again.
    LockLeak,
    /// Two locks are nested in both orders somewhere in the program —
    /// the classic deadlock recipe, flagged at the second acquisition.
    LockOrderInversion,
    /// Two unordered conflicting accesses to the same shared word, found
    /// by the happens-before race sanitizer during model checking.
    DataRace,
    /// Two threads were observed inside the same critical section under
    /// some explored schedule.
    MutexViolation,
    /// A completed schedule lost a counter increment: the final value
    /// disagrees with the number of operations performed.
    LostUpdate,
    /// An explored schedule reached a state where no thread can make
    /// progress.
    DeadlockFound,
    /// Exploration hit its depth bound on a schedule that never revisited
    /// a state — possibly a livelock, possibly just a bound set too low.
    LivelockSuspect,
    /// The guest crashed (bad memory access, illegal instruction, bad PC,
    /// or an unexpected halt) under some explored schedule.
    GuestFault,
    /// An rseq descriptor's window is empty-by-construction or extends
    /// past the end of the code image.
    RseqWindowOutOfBounds,
    /// An rseq descriptor's `post_commit_offset` is zero: the window
    /// contains no instructions, so the descriptor protects nothing.
    RseqEmptyWindow,
    /// The last instruction of an rseq window (the commit point) is not a
    /// plain store — there is no single visible effect for the abort
    /// protocol to make atomic.
    RseqCommitNotStore,
    /// A store before the commit point of an rseq window: an abort after
    /// it leaves the side effect behind with no rollback.
    RseqSideEffectBeforeCommit,
    /// A syscall inside an rseq window; the kernel boundary is itself a
    /// preemption point and its effects cannot be aborted.
    RseqSyscallInWindow,
    /// A call (or indirect jump) inside an rseq window; the callee runs
    /// outside the descriptor's declared bounds.
    RseqCallInWindow,
    /// A branch inside an rseq window that is backward or lands on another
    /// interior instruction: every early exit must jump forward past the
    /// commit point.
    RseqBranchInWindow,
    /// `abort_ip` lies inside the window it handles; dispatching the
    /// abort would land back in the aborted region.
    RseqAbortInsideWindow,
    /// The abort handler is reachable by normal control flow (fallthrough
    /// or a jump from outside the window) rather than only via kernel
    /// abort dispatch.
    RseqAbortReachable,
    /// Two rseq windows share instructions; a preemption in the overlap
    /// has two candidate abort handlers.
    RseqOverlappingWindows,
    /// A path from the abort handler re-enters the window without first
    /// republishing the descriptor; a second preemption there would not
    /// be detected.
    RseqStaleRetry,
    /// The abort handler performs a visible side effect (an unresolvable
    /// store or a call) before re-entering the window or exiting.
    RseqHandlerSideEffect,
    /// The abort handler reads or writes a word the lockset analysis
    /// proved lock-protected — the abort path runs without the lock.
    RseqHandlerTouchesProtected,
    /// The abort handler makes a syscall other than `rseq`
    /// re-registration or a clean thread exit.
    RseqHandlerSyscall,
}

impl DiagKind {
    /// Every kind, in declaration order — for exhaustiveness tests.
    pub fn all() -> [DiagKind; 38] {
        [
            DiagKind::InvalidRange,
            DiagKind::OverlappingRanges,
            DiagKind::NoCommittingStore,
            DiagKind::StoreNotLast,
            DiagKind::MultipleStores,
            DiagKind::SideEffectInPrefix,
            DiagKind::BackwardBranch,
            DiagKind::InternalBranch,
            DiagKind::LiveInClobbered,
            DiagKind::JumpIntoSequence,
            DiagKind::LandmarkCollision,
            DiagKind::AmbiguousTemplates,
            DiagKind::UnprotectedRmw,
            DiagKind::RacyRmw,
            DiagKind::DoubleAcquire,
            DiagKind::ReleaseNotHeld,
            DiagKind::LockLeak,
            DiagKind::LockOrderInversion,
            DiagKind::DataRace,
            DiagKind::MutexViolation,
            DiagKind::LostUpdate,
            DiagKind::DeadlockFound,
            DiagKind::LivelockSuspect,
            DiagKind::GuestFault,
            DiagKind::RseqWindowOutOfBounds,
            DiagKind::RseqEmptyWindow,
            DiagKind::RseqCommitNotStore,
            DiagKind::RseqSideEffectBeforeCommit,
            DiagKind::RseqSyscallInWindow,
            DiagKind::RseqCallInWindow,
            DiagKind::RseqBranchInWindow,
            DiagKind::RseqAbortInsideWindow,
            DiagKind::RseqAbortReachable,
            DiagKind::RseqOverlappingWindows,
            DiagKind::RseqStaleRetry,
            DiagKind::RseqHandlerSideEffect,
            DiagKind::RseqHandlerTouchesProtected,
            DiagKind::RseqHandlerSyscall,
        ]
    }

    /// The stable short code printed with the finding.
    pub fn code(self) -> &'static str {
        match self {
            DiagKind::InvalidRange => "invalid-range",
            DiagKind::OverlappingRanges => "overlapping-ranges",
            DiagKind::NoCommittingStore => "no-committing-store",
            DiagKind::StoreNotLast => "store-not-last",
            DiagKind::MultipleStores => "multiple-stores",
            DiagKind::SideEffectInPrefix => "side-effect-in-prefix",
            DiagKind::BackwardBranch => "backward-branch",
            DiagKind::InternalBranch => "internal-branch",
            DiagKind::LiveInClobbered => "live-in-clobbered",
            DiagKind::JumpIntoSequence => "jump-into-sequence",
            DiagKind::LandmarkCollision => "landmark-collision",
            DiagKind::AmbiguousTemplates => "ambiguous-templates",
            DiagKind::UnprotectedRmw => "unprotected-rmw",
            DiagKind::RacyRmw => "racy-rmw",
            DiagKind::DoubleAcquire => "double-acquire",
            DiagKind::ReleaseNotHeld => "release-not-held",
            DiagKind::LockLeak => "lock-leak",
            DiagKind::LockOrderInversion => "lock-order-inversion",
            DiagKind::DataRace => "data-race",
            DiagKind::MutexViolation => "mutex-violation",
            DiagKind::LostUpdate => "lost-update",
            DiagKind::DeadlockFound => "deadlock",
            DiagKind::LivelockSuspect => "livelock-suspect",
            DiagKind::GuestFault => "guest-fault",
            DiagKind::RseqWindowOutOfBounds => "rseq-window-out-of-bounds",
            DiagKind::RseqEmptyWindow => "rseq-empty-window",
            DiagKind::RseqCommitNotStore => "rseq-commit-not-store",
            DiagKind::RseqSideEffectBeforeCommit => "rseq-side-effect-before-commit",
            DiagKind::RseqSyscallInWindow => "rseq-syscall-in-window",
            DiagKind::RseqCallInWindow => "rseq-call-in-window",
            DiagKind::RseqBranchInWindow => "rseq-branch-in-window",
            DiagKind::RseqAbortInsideWindow => "rseq-abort-inside-window",
            DiagKind::RseqAbortReachable => "rseq-abort-reachable",
            DiagKind::RseqOverlappingWindows => "rseq-overlapping-windows",
            DiagKind::RseqStaleRetry => "rseq-stale-retry",
            DiagKind::RseqHandlerSideEffect => "rseq-handler-side-effect",
            DiagKind::RseqHandlerTouchesProtected => "rseq-handler-touches-protected",
            DiagKind::RseqHandlerSyscall => "rseq-handler-syscall",
        }
    }

    /// The severity this kind always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagKind::UnprotectedRmw
            | DiagKind::LivelockSuspect
            | DiagKind::LockLeak
            | DiagKind::LockOrderInversion => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

/// One finding, anchored to an instruction address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The finding class.
    pub kind: DiagKind,
    /// The instruction the finding is about.
    pub addr: CodeAddr,
    /// Human-readable explanation with the relevant operands.
    pub message: String,
}

impl Diagnostic {
    /// Creates a finding.
    pub fn new(kind: DiagKind, addr: CodeAddr, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            kind,
            addr,
            message: message.into(),
        }
    }

    /// The severity (derived from the kind).
    pub fn severity(&self) -> Severity {
        self.kind.severity()
    }

    /// Renders the finding with a three-instruction window of disassembly
    /// around its address, the offending line marked.
    pub fn render(&self, program: &Program) -> String {
        let mut out = format!(
            "{}[{}] @{}: {}\n",
            self.severity(),
            self.kind.code(),
            self.addr,
            self.message
        );
        let lo = self.addr.saturating_sub(2);
        let hi = (self.addr + 3).min(program.len() as CodeAddr);
        for pc in lo..hi {
            let Some(inst) = program.fetch(pc) else { break };
            let marker = if pc == self.addr { ">" } else { " " };
            out.push_str(&format!("  {marker} @{pc:<6} {inst}\n"));
        }
        out
    }

    /// Renders the finding as a single JSON object:
    /// `{"severity":…,"code":…,"addr":…,"message":…}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"addr\":{},\"message\":\"{}\"}}",
            self.severity(),
            self.kind.code(),
            self.addr,
            json_escape(&self.message)
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] @{}: {}",
            self.severity(),
            self.kind.code(),
            self.addr,
            self.message
        )
    }
}

/// Renders a slice of findings as a JSON array (one object per finding,
/// in slice order).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let items: Vec<String> = diags.iter().map(Diagnostic::to_json).collect();
    format!("[{}]", items.join(","))
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::{Asm, Reg};

    #[test]
    fn severities_are_fixed_per_kind() {
        assert_eq!(DiagKind::UnprotectedRmw.severity(), Severity::Warning);
        assert_eq!(DiagKind::LivelockSuspect.severity(), Severity::Warning);
        assert_eq!(DiagKind::StoreNotLast.severity(), Severity::Error);
        assert_eq!(DiagKind::DataRace.severity(), Severity::Error);
        assert_eq!(DiagKind::LostUpdate.severity(), Severity::Error);
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn render_marks_the_offending_line() {
        let mut asm = Asm::new();
        asm.li(Reg::T0, 1);
        asm.nop();
        asm.halt();
        let p = asm.finish().unwrap();
        let d = Diagnostic::new(DiagKind::StoreNotLast, 1, "demo");
        let text = d.render(&p);
        assert!(text.contains("error[store-not-last] @1: demo"));
        assert!(text.contains("> @1"));
        assert!(text.contains("  @0") || text.contains("   @0"));
    }

    #[test]
    fn codes_are_unique() {
        let kinds = DiagKind::all();
        let codes: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.code()).collect();
        assert_eq!(codes.len(), kinds.len());
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let d = Diagnostic::new(DiagKind::DataRace, 7, "write of \"x\"\nvs read");
        let json = d.to_json();
        assert_eq!(
            json,
            "{\"severity\":\"error\",\"code\":\"data-race\",\"addr\":7,\
             \"message\":\"write of \\\"x\\\"\\nvs read\"}"
        );
        let arr = render_json(&[d.clone(), d]);
        assert!(arr.starts_with('[') && arr.ends_with(']'));
        assert_eq!(arr.matches("data-race").count(), 2);
    }

    #[test]
    fn json_escape_handles_control_chars() {
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }
}
