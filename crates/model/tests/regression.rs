//! Regression tests for the model checker's headline results: the
//! ablated sequence is refuted quickly with a tiny counterexample, the
//! safe matrix verifies clean with observable pruning, and exploration
//! is fully deterministic.

use proptest::prelude::*;
use ras_diag::DiagKind;
use ras_guest::workloads::TasFlavor;
use ras_guest::Mechanism;
use ras_model::{check_target, model_check, CheckConfig, ModelTarget};

fn ablated_target() -> ModelTarget {
    ModelTarget {
        mechanism: Mechanism::RasInline,
        flavor: TasFlavor::Tas,
        ablated: true,
    }
}

/// The checker must find the Strategy::None lost update within a small,
/// logged number of schedules, and the counterexample must be minimal:
/// the hazard needs exactly two preemptions (one into the Test-And-Set
/// window, one into the critical section), no more.
#[test]
fn strategy_none_lost_update_is_found_within_bounded_schedules() {
    let report = check_target(ablated_target(), &CheckConfig::default());
    assert!(report.ok(), "the ablation must be refuted");
    assert!(!report.hit_schedule_cap);

    let lost = report
        .violations
        .iter()
        .find(|v| v.diag.kind == DiagKind::LostUpdate)
        .expect("lost update must be found");
    assert!(
        lost.found_after <= 1_000,
        "lost update took {} schedules, expected well under 1000",
        lost.found_after
    );
    assert!(
        (1..=3).contains(&lost.schedule.len()),
        "minimized counterexample has {} decisions, expected 1..=3:\n{}",
        lost.schedule.len(),
        lost.schedule.render()
    );

    let mutex = report
        .violations
        .iter()
        .find(|v| v.diag.kind == DiagKind::MutexViolation)
        .expect("mutual-exclusion violation must be found");
    assert!(mutex.found_after <= 1_000);

    // Stripping the strategy also strips the sequences' protected status,
    // so the happens-before sanitizer must see the lock-word races.
    assert!(
        !report.races.is_empty(),
        "the ablated target must be racy under happens-before"
    );
}

/// Every safe target verifies clean, and the sleep-set reduction prunes
/// real work on each lock-based one.
#[test]
fn safe_matrix_verifies_clean_with_observable_pruning() {
    let config = CheckConfig::default();
    let report = model_check(&config);
    assert!(report.ok(), "matrix must verify: {:#?}", report.targets);
    assert_eq!(report.targets.len(), 13, "12 safe targets + the ablation");
    for t in &report.targets {
        assert!(!t.hit_schedule_cap, "{} hit the schedule cap", t.target);
        assert!(t.schedules > 0);
        assert!(t.pruned > 0, "{} explored with no pruning", t.target);
        if !t.target.expects_violations() {
            assert!(t.violations.is_empty(), "{} has violations", t.target);
            assert!(t.races.is_empty(), "{} has races", t.target);
        }
    }
}

/// The rseq target is not verified vacuously: under the default
/// preemption bound the search must drive preemptions into published
/// rseq windows and through the abort handlers — and still find no
/// violation, no race, and no livelock. This is the dynamic half of the
/// static abort-safety verdict on the same emitter.
#[test]
fn rseq_exploration_exercises_abort_handlers_and_verifies_clean() {
    let target = ModelTarget {
        mechanism: Mechanism::Rseq,
        flavor: TasFlavor::Tas,
        ablated: false,
    };
    let report = check_target(target, &CheckConfig::default());
    assert!(report.ok(), "{:#?}", report.violations);
    assert!(!report.hit_schedule_cap);
    assert!(report.races.is_empty(), "{:?}", report.races);
    assert_eq!(report.livelock_suspects, 0);
    assert!(
        report.rseq_aborts > 0,
        "exhaustive exploration never dispatched an abort handler — \
         the rseq window was not exercised"
    );
}

/// The fan-out over targets must be invisible: [`model_check`] (which
/// may run targets on a worker pool) reports, target for target, exactly
/// what serial [`check_target`] calls report, in [`ModelTarget::all`]
/// order.
#[test]
fn target_fan_out_matches_serial_checks_exactly() {
    let config = CheckConfig::default();
    let report = model_check(&config);
    let targets = ModelTarget::all();
    assert_eq!(report.targets.len(), targets.len());
    for (got, want) in report.targets.iter().zip(&targets) {
        assert_eq!(got.target, *want, "target order must be stable");
        assert_eq!(report_fingerprint(got), fingerprint(*want, &config));
    }
}

/// A compact, order-insensitive fingerprint of an exploration.
fn fingerprint(target: ModelTarget, config: &CheckConfig) -> String {
    report_fingerprint(&check_target(target, config))
}

fn report_fingerprint(r: &ras_model::TargetReport) -> String {
    let mut out = format!(
        "schedules={} pruned={} cycles={} livelock={} cap={}",
        r.schedules, r.pruned, r.cycles, r.livelock_suspects, r.hit_schedule_cap
    );
    for v in &r.violations {
        out.push_str(&format!(
            " {}@{}:{:?}",
            v.diag.kind.code(),
            v.found_after,
            v.schedule.decisions
        ));
    }
    for race in &r.races {
        out.push_str(&format!(" {race}"));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The explored-schedule set is a pure function of the configuration:
    /// two runs with identical parameters produce identical counts,
    /// identical pruning, and identical counterexamples.
    #[test]
    fn exploration_is_deterministic(bound in 1u32..=2, ablated in any::<bool>()) {
        let config = CheckConfig {
            preemption_bound: bound,
            ..CheckConfig::default()
        };
        let target = ModelTarget {
            mechanism: Mechanism::RasInline,
            flavor: TasFlavor::Tas,
            ablated,
        };
        let first = fingerprint(target, &config);
        let second = fingerprint(target, &config);
        prop_assert_eq!(first, second);
    }
}
