//! Golden fingerprints for the explorer over every bundled model
//! target, pinned before the kernel's O(1) scheduler refactor. The
//! intrusive ready queue and futex-style wait buckets must reproduce
//! the exact dispatch and wake order the VecDeque/HashMap structures
//! produced, so every counter of every exploration — schedules,
//! pruning, dedup, snapshot bytes, violations with their minimized
//! schedules — must match these strings byte for byte.
//!
//! Regenerate (only when the *search itself* legitimately changes, e.g.
//! a new model target) with:
//!
//! ```sh
//! cargo test -p ras-model --test sched_golden -- --nocapture print_fingerprints
//! ```

use ras_model::{check_target, CheckConfig, ModelTarget, TargetReport};

/// Everything dispatch-order-sensitive about an exploration. The one
/// field deliberately absent is `snapshot_bytes`: the checkpoint
/// footprint is an honest size report, and shrinking it is the point
/// of the flat-slab checkpoint refactor, so it is asserted separately
/// (smaller-or-equal) rather than pinned.
fn fingerprint(r: &TargetReport) -> String {
    let mut out = format!(
        "schedules={} pruned={} cycles={} livelock={} cap={} \
         checkpoints={} undo={} deduped={} rseq={}",
        r.schedules,
        r.pruned,
        r.cycles,
        r.livelock_suspects,
        r.hit_schedule_cap,
        r.checkpoints,
        r.undo_replayed,
        r.states_deduped,
        r.rseq_aborts
    );
    for v in &r.violations {
        out.push_str(&format!(
            " {}@{}:{:?}",
            v.diag.kind.code(),
            v.found_after,
            v.schedule.decisions
        ));
    }
    for race in &r.races {
        out.push_str(&format!(" {race}"));
    }
    out
}

/// Prints the current fingerprints in GOLDEN-table form; ignored in
/// normal runs, used only to regenerate the table below.
#[test]
#[ignore = "generator for the GOLDEN table"]
fn print_fingerprints() {
    for target in ModelTarget::all() {
        let r = check_target(target, &CheckConfig::default());
        println!("    (\"{target}\", \"{}\"),", fingerprint(&r));
    }
}

#[test]
fn explorer_results_match_pre_refactor_golden() {
    const GOLDEN: &[(&str, &str)] = &[
        ("ras-registered+tas", "schedules=806 pruned=104 cycles=198 livelock=0 cap=false checkpoints=909 undo=3247 deduped=198 rseq=0"),
        ("ras-inline+tas", "schedules=803 pruned=94 cycles=198 livelock=0 cap=false checkpoints=896 undo=3230 deduped=198 rseq=0"),
        ("ras-inline+cas", "schedules=803 pruned=94 cycles=198 livelock=0 cap=false checkpoints=896 undo=3230 deduped=198 rseq=0"),
        ("ras-inline+xchg", "schedules=806 pruned=104 cycles=198 livelock=0 cap=false checkpoints=909 undo=3247 deduped=198 rseq=0"),
        ("ras-inline+faa", "schedules=181 pruned=24 cycles=0 livelock=0 cap=false checkpoints=204 undo=229 deduped=0 rseq=0"),
        ("kernel-emulation+tas", "schedules=864 pruned=30 cycles=216 livelock=0 cap=false checkpoints=893 undo=3499 deduped=216 rseq=0"),
        ("interlocked+tas", "schedules=709 pruned=86 cycles=186 livelock=0 cap=false checkpoints=794 undo=2718 deduped=186 rseq=0"),
        ("lamport-a+tas", "schedules=1422 pruned=330 cycles=346 livelock=0 cap=false checkpoints=1751 undo=8377 deduped=346 rseq=0"),
        ("lamport-b+tas", "schedules=1994 pruned=402 cycles=469 livelock=0 cap=false checkpoints=2395 undo=16337 deduped=469 rseq=0"),
        ("user-level+tas", "schedules=1364 pruned=104 cycles=258 livelock=0 cap=false checkpoints=1467 undo=9384 deduped=258 rseq=0"),
        ("hardware-bit+tas", "schedules=806 pruned=104 cycles=198 livelock=0 cap=false checkpoints=909 undo=3247 deduped=198 rseq=0"),
        ("rseq+tas", "schedules=1743 pruned=78 cycles=336 livelock=0 cap=false checkpoints=1820 undo=12749 deduped=336 rseq=132"),
        ("ras-inline+tas+none", "schedules=785 pruned=98 cycles=186 livelock=0 cap=false checkpoints=882 undo=3139 deduped=188 rseq=0 mutex-violation@192:[(8, Preempt(ThreadId(2))), (14, Preempt(ThreadId(1)))] lost-update@194:[(8, Preempt(ThreadId(2))), (13, Preempt(ThreadId(1)))] error[data-race] @119: unordered read of shared word 0x4 (conflicting access at pc 139) error[data-race] @123: unordered write of shared word 0x4 (conflicting access at pc 139) error[data-race] @128: unordered write of shared word 0xc (conflicting access at pc 137) error[data-race] @129: unordered read of shared word 0x8 (conflicting access at pc 131) error[data-race] @131: unordered write of shared word 0x8 (conflicting access at pc 131) error[data-race] @132: unordered read of shared word 0xc (conflicting access at pc 128) error[data-race] @137: unordered write of shared word 0xc (conflicting access at pc 128) error[data-race] @139: unordered write of shared word 0x4 (conflicting access at pc 123) error[data-race] @119: unordered read of shared word 0x4 (conflicting access at pc 123) error[data-race] @139: unordered write of shared word 0x4 (conflicting access at pc 119) error[data-race] @123: unordered write of shared word 0x4 (conflicting access at pc 119) error[data-race] @123: unordered write of shared word 0x4 (conflicting access at pc 123) error[data-race] @139: unordered write of shared word 0x4 (conflicting access at pc 139) error[data-race] @128: unordered write of shared word 0xc (conflicting access at pc 128) error[data-race] @137: unordered write of shared word 0xc (conflicting access at pc 137) error[data-race] @132: unordered read of shared word 0xc (conflicting access at pc 137) error[data-race] @131: unordered write of shared word 0x8 (conflicting access at pc 129)"),
    ];
    // Pre-refactor snapshot footprint per target: the flat-slab
    // checkpoints must never be larger than the HashMap clones were.
    const SNAPSHOT_CEILING: &[u64] = &[
        1036296, 1021424, 1021424, 1036296, 231672, 1018668, 905152, 1997124, 2733404, 1675392,
        1036296, 2076904, 1005364,
    ];
    let targets = ModelTarget::all();
    assert_eq!(targets.len(), GOLDEN.len(), "target set changed");
    for (i, (target, (name, expected))) in targets.into_iter().zip(GOLDEN).enumerate() {
        assert_eq!(&target.to_string(), name, "target order changed");
        let r = check_target(target, &CheckConfig::default());
        assert_eq!(
            &fingerprint(&r),
            expected,
            "exploration of {target} diverged from the pre-refactor golden"
        );
        assert!(
            r.snapshot_bytes <= SNAPSHOT_CEILING[i],
            "checkpoint footprint of {target} grew: {} > {}",
            r.snapshot_bytes,
            SNAPSHOT_CEILING[i]
        );
    }
}
