//! Differential tests for the checkpoint engine and the deterministic
//! root-splitting: undo-log rewinding, incremental hashing, and subtree
//! fan-out are *performance* features — every observable search result
//! (schedule counts, pruning, cycle truncations, violations with their
//! minimized replayable schedules, races) must be byte-identical to the
//! clone-per-branch sequential search they replace.

use proptest::prelude::*;
use ras_guest::workloads::TasFlavor;
use ras_guest::Mechanism;
use ras_model::{
    check_target, check_target_split, check_targets_split, CheckConfig, ModelTarget, TargetReport,
};

/// Everything observable about an exploration except the checkpoint
/// counters (which legitimately differ between snapshotting strategies):
/// counts, cap state, every violation with its exact minimized schedule
/// and discovery index, every race diagnostic, in order.
fn fingerprint(r: &TargetReport) -> String {
    let mut out = format!(
        "schedules={} pruned={} cycles={} livelock={} cap={}",
        r.schedules, r.pruned, r.cycles, r.livelock_suspects, r.hit_schedule_cap
    );
    for v in &r.violations {
        out.push_str(&format!(
            " {}@{}:{:?}",
            v.diag.kind.code(),
            v.found_after,
            v.schedule.decisions
        ));
    }
    for race in &r.races {
        out.push_str(&format!(" {race}"));
    }
    out
}

fn with_checkpoints(on: bool) -> CheckConfig {
    CheckConfig {
        checkpoints: on,
        ..CheckConfig::default()
    }
}

/// The tentpole equivalence: for every target in the matrix, rewinding
/// sibling branches through the undo log explores exactly the schedules
/// that cloning the kernel explored.
#[test]
fn checkpointed_search_matches_cloning_search_on_every_target() {
    for target in ModelTarget::all() {
        let cloned = check_target(target, &with_checkpoints(false));
        let checkpointed = check_target(target, &with_checkpoints(true));
        assert_eq!(
            fingerprint(&cloned),
            fingerprint(&checkpointed),
            "checkpoint rewinding changed the search on {target}"
        );
        assert!(
            checkpointed.undo_replayed > 0 || checkpointed.checkpoints == 0,
            "{target}: checkpoints were taken but nothing was ever rewound"
        );
        assert!(
            cloned.snapshot_bytes > checkpointed.snapshot_bytes,
            "{target}: undo-log snapshots ({} bytes) must be smaller than \
             kernel clones ({} bytes)",
            checkpointed.snapshot_bytes,
            cloned.snapshot_bytes
        );
    }
}

/// Root-splitting is invisible: for any worker count, the merged report
/// equals the sequential one — same totals, same violations at the same
/// global discovery indices, same minimized schedules, same races.
#[test]
fn split_search_is_byte_identical_to_sequential_for_any_worker_count() {
    let config = CheckConfig::default();
    for target in [
        ModelTarget {
            mechanism: Mechanism::RasInline,
            flavor: TasFlavor::Tas,
            ablated: false,
        },
        // The ablated target exercises the violation/race re-basing:
        // subtrees find violations locally and the merge must restore
        // global first-of-kind selection and `found_after` numbering.
        ModelTarget {
            mechanism: Mechanism::RasInline,
            flavor: TasFlavor::Tas,
            ablated: true,
        },
    ] {
        let sequential = fingerprint(&check_target(target, &config));
        for workers in [2, 3, 8] {
            let split = check_target_split(target, &config, workers);
            assert_eq!(
                sequential,
                fingerprint(&split),
                "{target} with {workers} workers diverged from sequential"
            );
        }
    }
}

/// The whole-matrix fan-out (shared worker pool across targets) matches
/// serial per-target runs, target for target, in order.
#[test]
fn matrix_split_matches_serial_target_runs() {
    let config = CheckConfig::default();
    let targets = ModelTarget::all();
    let split = check_targets_split(&targets, &config, 2);
    assert_eq!(split.len(), targets.len());
    for (report, &target) in split.iter().zip(&targets) {
        assert_eq!(report.target, target, "target order must be stable");
        assert_eq!(
            fingerprint(report),
            fingerprint(&check_target(target, &config)),
            "{target} diverged under the shared-pool split"
        );
    }
}

/// Deeper split points move work between the expansion and the subtrees;
/// none of it may show in the report.
#[test]
fn split_depth_is_unobservable() {
    let target = ModelTarget {
        mechanism: Mechanism::RasInline,
        flavor: TasFlavor::Tas,
        ablated: true,
    };
    let sequential = fingerprint(&check_target(target, &CheckConfig::default()));
    for depth in [1, 2, 5, 9] {
        let config = CheckConfig {
            split_depth: depth,
            ..CheckConfig::default()
        };
        assert_eq!(
            sequential,
            fingerprint(&check_target_split(target, &config, 2)),
            "split depth {depth} changed the search"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential exploration across the whole configuration lattice:
    /// any target, preemption bound, and snapshotting strategy — the
    /// checkpointed and cloning searches agree, and so does the split
    /// search on top of whichever strategy was drawn.
    #[test]
    fn checkpoints_and_splitting_never_change_a_search(
        target_index in 0usize..12,
        bound in 1u32..=2,
        checkpoints in any::<bool>(),
        workers in 2usize..=4,
    ) {
        let targets = ModelTarget::all();
        let target = targets[target_index % targets.len()];
        let base = CheckConfig {
            preemption_bound: bound,
            checkpoints,
            ..CheckConfig::default()
        };
        let flipped = CheckConfig { checkpoints: !checkpoints, ..base.clone() };
        let reference = fingerprint(&check_target(target, &base));
        prop_assert_eq!(
            &reference,
            &fingerprint(&check_target(target, &flipped)),
            "snapshotting strategy changed the search on {}", target
        );
        prop_assert_eq!(
            &reference,
            &fingerprint(&check_target_split(target, &base, workers)),
            "root-splitting changed the search on {}", target
        );
    }
}
