//! Differential smoke test for the translation tier under the model
//! checker: exploration is instruction-granular (the kernel is
//! single-stepped in oracle mode), and instruction-granular observation
//! is a standing deoptimization point, so the explorer's results must be
//! byte-identical whichever engine the explored kernels boot with. This
//! is the equivalence `ras-check --engine translated` relies on.

use proptest::prelude::*;
use ras_machine::EngineKind;
use ras_model::{check_target, check_target_split, CheckConfig, ModelTarget, TargetReport};

/// Everything observable about an exploration, including the checkpoint
/// counters: the translation cache is derived state outside the
/// checkpoint footprint, so even the snapshot byte counts must agree.
fn fingerprint(r: &TargetReport) -> String {
    let mut out = format!(
        "schedules={} pruned={} cycles={} livelock={} cap={} \
         checkpoints={} undo={} snapshot={} deduped={} rseq={}",
        r.schedules,
        r.pruned,
        r.cycles,
        r.livelock_suspects,
        r.hit_schedule_cap,
        r.checkpoints,
        r.undo_replayed,
        r.snapshot_bytes,
        r.states_deduped,
        r.rseq_aborts
    );
    for v in &r.violations {
        out.push_str(&format!(
            " {}@{}:{:?}",
            v.diag.kind.code(),
            v.found_after,
            v.schedule.decisions
        ));
    }
    for race in &r.races {
        out.push_str(&format!(" {race}"));
    }
    out
}

fn with_engine(engine: EngineKind) -> CheckConfig {
    CheckConfig {
        engine,
        ..CheckConfig::default()
    }
}

/// The smoke equivalence: every target in the matrix explores exactly
/// the same schedules, finds the same violations with the same minimized
/// replayable schedules, and takes the same snapshots under either
/// engine.
#[test]
fn translated_engine_explores_byte_identically_on_every_target() {
    for target in ModelTarget::all() {
        let interp = check_target(target, &with_engine(EngineKind::Interpreter));
        let translated = check_target(target, &with_engine(EngineKind::Translated));
        assert_eq!(
            fingerprint(&interp),
            fingerprint(&translated),
            "engine choice changed the search on {target}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Engine equivalence across the configuration lattice: any target,
    /// preemption bound, snapshotting strategy, and split fan-out.
    #[test]
    fn engine_choice_never_changes_a_search(
        target_index in 0usize..12,
        bound in 1u32..=2,
        checkpoints in any::<bool>(),
        workers in 1usize..=3,
    ) {
        let targets = ModelTarget::all();
        let target = targets[target_index % targets.len()];
        let base = CheckConfig {
            preemption_bound: bound,
            checkpoints,
            engine: EngineKind::Interpreter,
            ..CheckConfig::default()
        };
        let translated = CheckConfig { engine: EngineKind::Translated, ..base.clone() };
        let reference = fingerprint(&check_target(target, &base));
        prop_assert_eq!(
            &reference,
            &fingerprint(&check_target(target, &translated)),
            "engine choice changed the search on {}", target
        );
        // Split searches replay different checkpoint prefixes than the
        // sequential one, so compare split against split: the engines
        // must agree counter for counter when the fan-out is held fixed.
        if workers > 1 {
            prop_assert_eq!(
                &fingerprint(&check_target_split(target, &base, workers)),
                &fingerprint(&check_target_split(target, &translated, workers)),
                "engine choice changed the split search on {}", target
            );
        }
    }
}
