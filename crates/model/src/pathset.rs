//! An open-addressing set of `u64` state hashes for on-path cycle
//! detection.
//!
//! The explorer keeps the exact-state hashes of every kernel state on the
//! *current* DFS path and asks, at each node, whether the new state closes
//! a cycle. The path grows and shrinks stack-wise, so the set needs three
//! operations — `insert`, `contains`, `remove` — all O(1) expected,
//! replacing the previous `Vec::contains` linear scan (O(depth) per node,
//! O(depth²) per schedule).
//!
//! Implementation: linear probing over a power-of-two table with slot
//! value `0` reserved as the empty sentinel (a real hash of `0` is
//! remapped to an arbitrary odd constant, which is safe because the set
//! only ever answers questions about hashes — a collision between `0` and
//! the constant is no different from any other 64-bit hash collision).
//! Removal uses backward-shift deletion, so no tombstones accumulate
//! across the millions of push/pop pairs of a long search.

/// Empty-slot sentinel. Real zero hashes are remapped to [`ZERO_ALIAS`].
const EMPTY: u64 = 0;
/// Stand-in stored for a genuine hash value of zero.
const ZERO_ALIAS: u64 = 0x9E37_79B9_7F4A_7C15;
/// Initial table size (slots); must be a power of two.
const INITIAL_SLOTS: usize = 64;

/// A set of on-path state hashes with O(1) insert/contains/remove.
#[derive(Debug, Clone)]
pub struct PathSet {
    slots: Vec<u64>,
    /// Occupied slot count.
    len: usize,
    /// `slots.len() - 1`, for masking hashes into slot indices.
    mask: usize,
}

impl Default for PathSet {
    fn default() -> Self {
        Self::new()
    }
}

impl PathSet {
    /// An empty set.
    pub fn new() -> Self {
        Self {
            slots: vec![EMPTY; INITIAL_SLOTS],
            len: 0,
            mask: INITIAL_SLOTS - 1,
        }
    }

    /// Number of hashes currently in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_of(&self, key: u64) -> usize {
        // The stored hashes are already well-mixed (splitmix-finalized), so
        // masking the low bits is a fine slot function.
        (key as usize) & self.mask
    }

    fn remap(key: u64) -> u64 {
        if key == EMPTY {
            ZERO_ALIAS
        } else {
            key
        }
    }

    /// Whether `key` is in the set.
    pub fn contains(&self, key: u64) -> bool {
        let key = Self::remap(key);
        let mut i = self.slot_of(key);
        loop {
            let v = self.slots[i];
            if v == key {
                return true;
            }
            if v == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Inserts `key`; returns `true` if it was newly added, `false` if it
    /// was already present.
    pub fn insert(&mut self, key: u64) -> bool {
        let key = Self::remap(key);
        // Grow at ~3/4 load to keep probe chains short.
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.slot_of(key);
        loop {
            let v = self.slots[i];
            if v == key {
                return false;
            }
            if v == EMPTY {
                self.slots[i] = key;
                self.len += 1;
                return true;
            }
            i = (i + 1) & self.mask;
        }
    }

    /// Removes `key`; returns `true` if it was present. Uses backward-shift
    /// deletion, so the table never accumulates tombstones.
    pub fn remove(&mut self, key: u64) -> bool {
        let key = Self::remap(key);
        let mut i = self.slot_of(key);
        loop {
            let v = self.slots[i];
            if v == EMPTY {
                return false;
            }
            if v == key {
                break;
            }
            i = (i + 1) & self.mask;
        }
        self.len -= 1;
        // Backward-shift: walk the probe chain after `i`, moving back any
        // entry whose home slot precedes the hole (cyclically).
        let mut hole = i;
        let mut j = (i + 1) & self.mask;
        loop {
            let v = self.slots[j];
            if v == EMPTY {
                break;
            }
            let home = self.slot_of(v);
            // `v` may move into the hole iff the hole lies cyclically
            // between its home slot and its current slot.
            let between = if hole <= j {
                home <= hole || home > j
            } else {
                home <= hole && home > j
            };
            if between {
                self.slots[hole] = v;
                hole = j;
            }
            j = (j + 1) & self.mask;
        }
        self.slots[hole] = EMPTY;
        true
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; doubled]);
        self.mask = self.slots.len() - 1;
        self.len = 0;
        for v in old {
            if v != EMPTY {
                self.insert(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::PathSet;
    use std::collections::HashSet;

    /// Deterministic pseudo-random stream for the mirror test.
    fn rng_stream(seed: u64, n: usize) -> Vec<u64> {
        let mut z = seed;
        (0..n)
            .map(|_| {
                z = z
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Keep the key space small so collisions/removals actually
                // exercise probe chains.
                z >> 56
            })
            .collect()
    }

    #[test]
    fn insert_contains_remove_roundtrip() {
        let mut s = PathSet::new();
        assert!(s.is_empty());
        assert!(s.insert(42));
        assert!(!s.insert(42), "double insert reports already-present");
        assert!(s.contains(42));
        assert!(!s.contains(43));
        assert!(s.remove(42));
        assert!(!s.remove(42), "double remove reports absent");
        assert!(!s.contains(42));
        assert!(s.is_empty());
    }

    #[test]
    fn zero_hash_is_a_first_class_member() {
        let mut s = PathSet::new();
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(s.contains(0));
        assert!(!s.insert(0));
        assert_eq!(s.len(), 1);
        assert!(s.remove(0));
        assert!(!s.contains(0));
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut s = PathSet::new();
        for k in 1..=10_000u64 {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), 10_000);
        for k in 1..=10_000u64 {
            assert!(s.contains(k), "{k} lost in growth");
        }
        for k in (1..=10_000u64).step_by(2) {
            assert!(s.remove(k));
        }
        for k in 1..=10_000u64 {
            assert_eq!(s.contains(k), k % 2 == 0);
        }
    }

    #[test]
    fn mirrors_a_hashset_under_random_workload() {
        let mut s = PathSet::new();
        let mut model = HashSet::new();
        for (i, k) in rng_stream(0xDEAD_BEEF, 40_000).into_iter().enumerate() {
            match i % 3 {
                0 | 1 => assert_eq!(s.insert(k), model.insert(k), "insert {k} at step {i}"),
                _ => assert_eq!(s.remove(k), model.remove(&k), "remove {k} at step {i}"),
            }
            assert_eq!(s.len(), model.len(), "len diverged at step {i}");
        }
        for k in 0..256u64 {
            assert_eq!(s.contains(k), model.contains(&k), "final contains {k}");
        }
    }

    #[test]
    fn stack_discipline_like_the_dfs_path() {
        // The explorer pushes on descent and pops on return; removal must
        // leave earlier path entries findable even with probe collisions.
        let mut s = PathSet::new();
        let keys = rng_stream(7, 512);
        for &key in &keys {
            s.insert(key);
        }
        // Pop in reverse, checking all remaining survivors at each step.
        let mut live: Vec<u64> = {
            let mut seen = HashSet::new();
            keys.iter().copied().filter(|k| seen.insert(*k)).collect()
        };
        while let Some(k) = live.pop() {
            assert!(s.remove(k), "pop {k}");
            for other in &live {
                assert!(s.contains(*other), "{other} lost after removing {k}");
            }
        }
        assert!(s.is_empty());
    }
}
