//! Vector-clock happens-before race sanitizer.
//!
//! Fed the machine's shared-memory access log after every kernel step, it
//! maintains one vector clock per thread and, per shared word, the clocks
//! of the last writes and reads plus a "lock clock" used for
//! acquire/release edges.
//!
//! What makes a word a *synchronization* word here is observed behavior,
//! not annotation: any access performed atomically — a hardware `tas`, a
//! kernel-emulated Test-And-Set, an access inside the i860 atomic window,
//! or an access whose PC lies inside a protected restartable sequence —
//! marks its address as a sync word. Sync words carry acquire/release
//! edges (a load acquires, a store releases — so the plain `sw zero`
//! releasing a lock publishes the critical section, Figure 3's
//! `AtomicClear`) and are themselves exempt from race reports. Races are
//! reported only for plain conflicting accesses to ordinary words.
//!
//! Happens-before also flows along thread lifecycle edges: spawn (child
//! starts after the parent's spawn), exit, and join (the joiner resumes
//! after the target's exit).
//!
//! Restartable sequences under the *None* ablation get an empty protected
//! set, so their loads and stores degrade to plain accesses — and the
//! sanitizer then correctly reports the lock word itself as racy, which
//! is precisely the paper's §2 hazard seen through the lens of
//! happens-before.

use std::collections::HashMap;

use ras_isa::SeqRange;
use ras_kernel::ThreadId;
use ras_machine::{AccessKind, MemAccess};

/// A vector clock, dense over thread ids.
type Vc = Vec<u64>;

fn vc_join(into: &mut Vc, other: &Vc) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (i, &v) in other.iter().enumerate() {
        if into[i] < v {
            into[i] = v;
        }
    }
}

/// `a ≤ b` pointwise — every event in `a` happens-before (or is) `b`.
fn vc_leq(a: &Vc, b: &Vc) -> bool {
    a.iter()
        .enumerate()
        .all(|(i, &v)| v <= b.get(i).copied().unwrap_or(0))
}

#[derive(Debug, Clone, Default)]
struct WordState {
    /// Clock of the last write per thread.
    writes: Vc,
    /// Clock of the last read per thread.
    reads: Vc,
    /// Lock clock for acquire/release edges.
    lock: Vc,
    /// PC of the most recent write (for reports).
    last_write_pc: u32,
    /// PC of the most recent read (for reports).
    last_read_pc: u32,
    /// Observed to be accessed atomically at least once.
    sync: bool,
}

/// A detected data race: two unordered plain accesses, at least one a
/// write, to the same ordinary word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The racy word's byte address.
    pub addr: u32,
    /// PC of the earlier (already recorded) access.
    pub prior_pc: u32,
    /// PC of the access that exposed the race.
    pub pc: u32,
    /// Whether the exposing access was a write.
    pub write: bool,
}

/// The online happens-before detector for one execution. Cloned along
/// with the kernel when the explorer forks a schedule, so every explored
/// interleaving is sanitized.
#[derive(Debug, Clone)]
pub struct RaceDetector {
    clocks: Vec<Vc>,
    words: HashMap<u32, WordState>,
    exit_vcs: HashMap<ThreadId, Vc>,
    pending_join: HashMap<ThreadId, ThreadId>,
    protected: Vec<SeqRange>,
    data_end: u32,
    races: Vec<Race>,
}

impl RaceDetector {
    /// Creates a detector. `protected` is the set of restartable-sequence
    /// PC ranges the active strategy actually protects (empty under the
    /// `None` ablation); `data_end` bounds the shared-data region —
    /// accesses above it (thread stacks) are thread-private and ignored.
    pub fn new(protected: Vec<SeqRange>, data_end: u32) -> RaceDetector {
        RaceDetector {
            clocks: vec![vec![1]],
            words: HashMap::new(),
            exit_vcs: HashMap::new(),
            pending_join: HashMap::new(),
            protected,
            data_end,
            races: Vec::new(),
        }
    }

    fn ensure_thread(&mut self, t: ThreadId) {
        let idx = t.0 as usize;
        while self.clocks.len() <= idx {
            self.clocks.push(vec![0]);
        }
    }

    fn bump(&mut self, t: ThreadId) {
        let idx = t.0 as usize;
        if self.clocks[idx].len() <= idx {
            self.clocks[idx].resize(idx + 1, 0);
        }
        self.clocks[idx][idx] += 1;
    }

    /// Spawn edge: the child's first event happens after the parent's
    /// spawn call.
    pub fn on_spawn(&mut self, parent: ThreadId, child: ThreadId) {
        self.ensure_thread(parent);
        self.ensure_thread(child);
        let parent_vc = self.clocks[parent.0 as usize].clone();
        vc_join(&mut self.clocks[child.0 as usize], &parent_vc);
        self.bump(child);
        self.bump(parent);
    }

    /// Exit edge: remember the thread's final clock for joiners.
    pub fn on_exit(&mut self, t: ThreadId) {
        self.ensure_thread(t);
        self.exit_vcs.insert(t, self.clocks[t.0 as usize].clone());
    }

    /// The waiter blocked joining `target`; the edge lands when the
    /// waiter next runs.
    pub fn on_join_block(&mut self, waiter: ThreadId, target: ThreadId) {
        self.pending_join.insert(waiter, target);
    }

    /// Called when `t` is dispatched: applies a pending join edge if the
    /// joined thread has exited.
    pub fn on_dispatch(&mut self, t: ThreadId) {
        self.ensure_thread(t);
        if let Some(target) = self.pending_join.get(&t).copied() {
            if let Some(exit_vc) = self.exit_vcs.get(&target).cloned() {
                self.pending_join.remove(&t);
                vc_join(&mut self.clocks[t.0 as usize], &exit_vc);
                self.bump(t);
            }
        }
    }

    fn is_protected(&self, pc: u32) -> bool {
        self.protected.iter().any(|r| pc >= r.start && pc < r.end())
    }

    /// Feeds one logged access by thread `t`.
    pub fn on_access(&mut self, t: ThreadId, acc: &MemAccess) {
        if acc.addr >= self.data_end {
            return; // thread-private stack
        }
        self.ensure_thread(t);
        let sync = acc.atomic || self.is_protected(acc.pc);
        let idx = t.0 as usize;
        let word = self.words.entry(acc.addr).or_default();
        if sync {
            word.sync = true;
        }
        if word.sync {
            // Acquire on load, release on store, both on RMW. Sync words
            // are exempt from race reports: their accesses either are
            // atomic or sit inside a protected restartable sequence.
            match acc.kind {
                AccessKind::Load => vc_join(&mut self.clocks[idx], &word.lock),
                AccessKind::Store => {
                    let vc = self.clocks[idx].clone();
                    vc_join(&mut word.lock, &vc);
                    self.bump(t);
                }
                AccessKind::Rmw => {
                    vc_join(&mut self.clocks[idx], &word.lock);
                    let vc = self.clocks[idx].clone();
                    vc_join(&mut word.lock, &vc);
                    self.bump(t);
                }
            }
            return;
        }
        // Plain access to an ordinary word: the FastTrack-style check.
        let me = &self.clocks[idx];
        let racy_write = !vc_leq(&word.writes, me);
        match acc.kind {
            AccessKind::Load => {
                if racy_write {
                    self.races.push(Race {
                        addr: acc.addr,
                        prior_pc: word.last_write_pc,
                        pc: acc.pc,
                        write: false,
                    });
                }
                if word.reads.len() <= idx {
                    word.reads.resize(idx + 1, 0);
                }
                word.reads[idx] = me.get(idx).copied().unwrap_or(0);
                word.last_read_pc = acc.pc;
            }
            AccessKind::Store | AccessKind::Rmw => {
                let racy_read = !vc_leq(&word.reads, me);
                if racy_write || racy_read {
                    self.races.push(Race {
                        addr: acc.addr,
                        prior_pc: if racy_write {
                            word.last_write_pc
                        } else {
                            word.last_read_pc
                        },
                        pc: acc.pc,
                        write: true,
                    });
                }
                if word.writes.len() <= idx {
                    word.writes.resize(idx + 1, 0);
                }
                word.writes[idx] = me.get(idx).copied().unwrap_or(0);
                word.last_write_pc = acc.pc;
            }
        }
    }

    /// Drains races detected since the last call.
    pub fn take_races(&mut self) -> Vec<Race> {
        std::mem::take(&mut self.races)
    }

    /// Copies this detector's full state into `dst`, reusing `dst`'s
    /// existing allocations (clock vectors, word-state table, race
    /// buffer) wherever possible. Semantically identical to
    /// `*dst = self.clone()`; the point is that the explorer snapshots a
    /// detector at every interior decision point, and recycling one
    /// scratch detector per tree depth turns ~50 small allocations per
    /// snapshot into approximately none once the pool is warm.
    pub fn snapshot_into(&self, dst: &mut RaceDetector) {
        let keep = dst.clocks.len().min(self.clocks.len());
        dst.clocks.truncate(self.clocks.len());
        for i in 0..keep {
            dst.clocks[i].clone_from(&self.clocks[i]);
        }
        for vc in &self.clocks[keep..] {
            dst.clocks.push(vc.clone());
        }
        dst.words.retain(|addr, _| self.words.contains_key(addr));
        for (addr, word) in &self.words {
            match dst.words.get_mut(addr) {
                Some(d) => {
                    d.writes.clone_from(&word.writes);
                    d.reads.clone_from(&word.reads);
                    d.lock.clone_from(&word.lock);
                    d.last_write_pc = word.last_write_pc;
                    d.last_read_pc = word.last_read_pc;
                    d.sync = word.sync;
                }
                None => {
                    dst.words.insert(*addr, word.clone());
                }
            }
        }
        dst.exit_vcs.retain(|t, _| self.exit_vcs.contains_key(t));
        for (t, vc) in &self.exit_vcs {
            match dst.exit_vcs.get_mut(t) {
                Some(d) => d.clone_from(vc),
                None => {
                    dst.exit_vcs.insert(*t, vc.clone());
                }
            }
        }
        dst.pending_join.clone_from(&self.pending_join);
        dst.protected.clone_from(&self.protected);
        dst.data_end = self.data_end;
        dst.races.clone_from(&self.races);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(pc: u32, addr: u32, kind: AccessKind, atomic: bool) -> MemAccess {
        MemAccess {
            pc,
            addr,
            kind,
            clock: 0,
            atomic,
            value: 0,
        }
    }

    #[test]
    fn snapshot_into_is_equivalent_to_clone() {
        // Build a detector with non-trivial state: three threads,
        // lifecycle edges, sync and plain words.
        let mut d = RaceDetector::new(Vec::new(), 4096);
        d.on_spawn(ThreadId(0), ThreadId(1));
        d.on_spawn(ThreadId(0), ThreadId(2));
        d.on_access(ThreadId(0), &acc(1, 0, AccessKind::Rmw, true));
        d.on_access(ThreadId(1), &acc(2, 8, AccessKind::Store, false));
        d.on_access(ThreadId(2), &acc(3, 16, AccessKind::Load, false));
        d.on_exit(ThreadId(2));
        d.on_join_block(ThreadId(0), ThreadId(2));

        // Snapshot into a scratch already dirty with unrelated state —
        // stale words and clocks must not survive.
        let mut scratch = RaceDetector::new(Vec::new(), 1);
        scratch.on_spawn(ThreadId(0), ThreadId(1));
        scratch.on_access(ThreadId(0), &acc(9, 1024, AccessKind::Store, false));
        scratch.on_access(ThreadId(1), &acc(9, 2048, AccessKind::Store, false));
        let _ = scratch.take_races();
        d.snapshot_into(&mut scratch);

        // The snapshot and a plain clone must behave identically on any
        // subsequent access sequence.
        let mut cloned = d.clone();
        let probe = [
            (ThreadId(1), acc(30, 16, AccessKind::Store, false)),
            (ThreadId(2), acc(31, 8, AccessKind::Load, false)),
            (ThreadId(0), acc(32, 0, AccessKind::Load, false)),
        ];
        for (t, a) in &probe {
            scratch.on_access(*t, a);
            cloned.on_access(*t, a);
        }
        scratch.on_dispatch(ThreadId(0));
        cloned.on_dispatch(ThreadId(0));
        assert_eq!(scratch.take_races(), cloned.take_races());
    }

    #[test]
    fn unordered_write_write_is_a_race() {
        let mut d = RaceDetector::new(Vec::new(), 4096);
        d.on_spawn(ThreadId(0), ThreadId(1));
        d.on_access(ThreadId(0), &acc(10, 0, AccessKind::Store, false));
        d.on_access(ThreadId(1), &acc(20, 0, AccessKind::Store, false));
        let races = d.take_races();
        assert_eq!(races.len(), 1);
        assert_eq!(
            races[0],
            Race {
                addr: 0,
                prior_pc: 10,
                pc: 20,
                write: true,
            }
        );
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        // T0: acquire (atomic rmw on lock), write data, release (plain
        // store to the now-sync lock word). T1: acquire, read data.
        let mut d = RaceDetector::new(Vec::new(), 4096);
        d.on_spawn(ThreadId(0), ThreadId(1));
        d.on_access(ThreadId(0), &acc(1, 0, AccessKind::Rmw, true));
        d.on_access(ThreadId(0), &acc(2, 4, AccessKind::Store, false));
        d.on_access(ThreadId(0), &acc(3, 0, AccessKind::Store, false)); // release
        d.on_access(ThreadId(1), &acc(1, 0, AccessKind::Rmw, true)); // acquire
        d.on_access(ThreadId(1), &acc(5, 4, AccessKind::Load, false));
        assert!(d.take_races().is_empty());
    }

    #[test]
    fn protected_sequence_pcs_count_as_atomic() {
        let seq = SeqRange { start: 10, len: 3 };
        let mut d = RaceDetector::new(vec![seq], 4096);
        d.on_spawn(ThreadId(0), ThreadId(1));
        // Both threads touch the lock word only through the sequence.
        d.on_access(ThreadId(0), &acc(10, 0, AccessKind::Load, false));
        d.on_access(ThreadId(0), &acc(12, 0, AccessKind::Store, false));
        d.on_access(ThreadId(1), &acc(10, 0, AccessKind::Load, false));
        assert!(d.take_races().is_empty());
    }

    #[test]
    fn unprotected_sequence_pcs_race() {
        // Same access pattern, but the strategy protects nothing — the
        // None ablation. The overlapping load/store window now races.
        let mut d = RaceDetector::new(Vec::new(), 4096);
        d.on_spawn(ThreadId(0), ThreadId(1));
        d.on_access(ThreadId(0), &acc(10, 0, AccessKind::Load, false));
        d.on_access(ThreadId(1), &acc(10, 0, AccessKind::Load, false));
        d.on_access(ThreadId(0), &acc(12, 0, AccessKind::Store, false));
        assert!(!d.take_races().is_empty());
    }

    #[test]
    fn join_edge_orders_post_join_reads() {
        let mut d = RaceDetector::new(Vec::new(), 4096);
        d.on_spawn(ThreadId(0), ThreadId(1));
        d.on_access(ThreadId(1), &acc(7, 8, AccessKind::Store, false));
        d.on_exit(ThreadId(1));
        d.on_join_block(ThreadId(0), ThreadId(1));
        d.on_dispatch(ThreadId(0));
        d.on_access(ThreadId(0), &acc(30, 8, AccessKind::Load, false));
        assert!(d.take_races().is_empty());
    }

    #[test]
    fn stack_accesses_are_ignored() {
        let mut d = RaceDetector::new(Vec::new(), 64);
        d.on_spawn(ThreadId(0), ThreadId(1));
        d.on_access(ThreadId(0), &acc(1, 100, AccessKind::Store, false));
        d.on_access(ThreadId(1), &acc(2, 100, AccessKind::Store, false));
        assert!(d.take_races().is_empty());
    }
}
