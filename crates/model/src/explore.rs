//! The systematic schedule explorer: a stateful depth-first search over
//! every preemption decision, with sleep-set partial-order reduction and
//! path-local cycle detection.
//!
//! # Decision points and transitions
//!
//! Execution between decision points is deterministic: the kernel is
//! single-stepped (oracle mode, timer neutralized) until the current
//! thread is about to execute a *visible* operation — a load, store, or
//! Test-And-Set of shared data (below [`Kernel::data_end`]), or any
//! system call — or until no thread runs and several are ready. At such a
//! point the explorer branches:
//!
//! * **Continue** — execute the visible operation;
//! * **Preempt(u)** — deliver a timer interrupt *now* (strategy check,
//!   rollback, requeue — identical to real preemption) and run ready
//!   thread `u`; bounded by [`CheckConfig::preemption_bound`];
//! * **Dispatch(u)** — with nothing running, pick which ready thread goes
//!   next.
//!
//! Register-only instructions and stack traffic are invisible: preempting
//! between them is indistinguishable (to any safety property over shared
//! memory) from preempting at the next visible operation, so the visible
//! boundaries *are* the partial-order reduction of the raw interleaving
//! space. The paper's hazard windows fall out naturally: the decision
//! points inside a Test-And-Set sequence are exactly "before the `lw`"
//! and "before the `sw`".
//!
//! # Sleep sets
//!
//! On top of the boundary reduction the explorer keeps classic sleep
//! sets: after fully exploring `Continue` on operation `o` at a decision
//! point, `o` is put to sleep for the sibling branches; a descendant
//! `Continue` on the same `(thread, kind, address)` operation is pruned
//! unless some intervening operation conflicted with `o` (same address,
//! at least one write — or a system call, which conservatively conflicts
//! with everything). Pruned branches are counted and reported so the
//! reduction is observable. A subtlety specific to restartable
//! sequences: preempting a thread rolls its PC back, so the "same
//! operation" test uses the post-rollback signature; a rolled-back
//! sequence re-arrives at its *load*, never at its committing store, so
//! sleeping store signatures can never be matched incorrectly.
//!
//! # Cycles and livelock
//!
//! Unfair schedules make spin loops repeat states exactly (the clock is
//! excluded from the state hash). A decision point whose hash already
//! appears on the current path is a cycle — the branch is truncated and
//! counted; a genuine spin under an unfair scheduler is not a safety
//! violation. Exhausting [`CheckConfig::max_visible_ops`] without a
//! cycle is reported as a livelock suspect.

use ras_diag::{DiagKind, Diagnostic};
use ras_guest::workloads::{model_counter, ModelSpec, TasFlavor};
use ras_guest::{BuiltGuest, Mechanism};
use ras_isa::{Inst, Reg, SeqRange};
use ras_kernel::{Decision, Kernel, StepOutcome, StrategyKind, ThreadId, ThreadState};
use ras_machine::{AccessKind, CpuProfile};

use crate::hb::{Race, RaceDetector};
use crate::schedule::Schedule;

/// Exploration limits and workload size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Maximum preemptions injected per schedule. Two suffices for every
    /// two-thread mutual-exclusion hazard (one to interrupt a sequence,
    /// one to interleave the victim).
    pub preemption_bound: u32,
    /// Depth bound: visible operations per schedule before the branch is
    /// reported as a livelock suspect.
    pub max_visible_ops: u64,
    /// Hard cap on explored schedules per target.
    pub max_schedules: u64,
    /// Worker threads in the model workload.
    pub workers: usize,
    /// Critical sections per worker.
    pub iterations: u32,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            preemption_bound: 2,
            max_visible_ops: 400,
            max_schedules: 100_000,
            workers: 2,
            iterations: 1,
        }
    }
}

/// One (mechanism × TAS flavor) configuration to verify, optionally with
/// the kernel's atomicity strategy stripped (the refutation target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelTarget {
    /// The synchronization mechanism.
    pub mechanism: Mechanism,
    /// The read-modify-write flavor.
    pub flavor: TasFlavor,
    /// Run with [`StrategyKind::None`] despite the mechanism requiring
    /// kernel support — the ablation the checker must refute.
    pub ablated: bool,
}

impl ModelTarget {
    /// Every target: each supported (mechanism × flavor) pair, plus the
    /// ablated inline sequence.
    pub fn all() -> Vec<ModelTarget> {
        let mut targets = Vec::new();
        for mechanism in Mechanism::all() {
            for flavor in TasFlavor::all() {
                if flavor.supported_by(mechanism) {
                    targets.push(ModelTarget {
                        mechanism,
                        flavor,
                        ablated: false,
                    });
                }
            }
        }
        targets.push(ModelTarget {
            mechanism: Mechanism::RasInline,
            flavor: TasFlavor::Tas,
            ablated: true,
        });
        targets
    }

    /// Stable identifier, e.g. `ras-inline+tas` or `ras-inline+tas+none`.
    pub fn id(&self) -> String {
        let base = format!("{}+{}", self.mechanism.id(), self.flavor.id());
        if self.ablated {
            format!("{base}+none")
        } else {
            base
        }
    }

    /// The CPU profile the target runs on: the R3000 (the paper's main
    /// machine) when the mechanism is software-only, the i860 when it
    /// needs hardware support.
    pub fn profile(&self) -> CpuProfile {
        if self.mechanism.supported_by(&CpuProfile::r3000()) {
            CpuProfile::r3000()
        } else {
            CpuProfile::i860()
        }
    }

    /// Whether this target is *expected* to violate its properties.
    pub fn expects_violations(&self) -> bool {
        self.ablated
    }

    /// Whether the happens-before race sanitizer applies. Lamport's
    /// software protocols synchronize through plain loads and stores by
    /// design, which defeats a happens-before analysis (every execution
    /// of protocol (a) is "racy" yet correct), so they are exempt.
    pub fn races_checked(&self) -> bool {
        !matches!(
            self.mechanism,
            Mechanism::LamportPerLock | Mechanism::LamportBundled
        )
    }

    /// Whether mutual exclusion is a property of this target (the
    /// lock-free fetch-and-add flavor has no critical section).
    pub fn mutex_checked(&self) -> bool {
        !self.flavor.is_lock_free()
    }
}

impl std::fmt::Display for ModelTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

/// A property violation with its minimized, replayable schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong, as a shared diagnostic.
    pub diag: Diagnostic,
    /// The minimized schedule that reproduces it.
    pub schedule: Schedule,
    /// How many schedules had been explored when it was first found.
    pub found_after: u64,
}

/// The verdict for one target.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// The checked target.
    pub target: ModelTarget,
    /// Maximal schedules explored (terminal, cycle-truncated, or
    /// violation-truncated).
    pub schedules: u64,
    /// Branches pruned by the sleep-set reduction.
    pub pruned: u64,
    /// Branches truncated as exact state cycles (benign spins under
    /// unfair schedules).
    pub cycles: u64,
    /// Branches that exhausted the depth bound without cycling.
    pub livelock_suspects: u64,
    /// The schedule cap was hit; exploration is incomplete.
    pub hit_schedule_cap: bool,
    /// Safety violations found (first of each kind, minimized).
    pub violations: Vec<Violation>,
    /// Data races found by the happens-before sanitizer.
    pub races: Vec<Diagnostic>,
}

impl TargetReport {
    /// Whether the observed behavior matches the expectation: safe
    /// targets must have no violations and no races; the ablated target
    /// must exhibit both the mutual-exclusion violation and the lost
    /// update.
    pub fn ok(&self) -> bool {
        if self.target.expects_violations() {
            let has = |k: DiagKind| self.violations.iter().any(|v| v.diag.kind == k);
            has(DiagKind::MutexViolation) && has(DiagKind::LostUpdate)
        } else {
            self.violations.is_empty() && self.races.is_empty()
        }
    }
}

/// Safety cap on invisible (register-only) instructions between decision
/// points; a guest spinning without any shared-memory access or syscall
/// trips it.
const INVISIBLE_CAP: u32 = 20_000;

/// Signature of a thread's next visible operation, for independence
/// reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpSig {
    /// A classified shared-memory access.
    Mem {
        thread: ThreadId,
        kind: AccessKind,
        addr: u32,
    },
    /// A system call or unclassifiable operation — conservatively
    /// conflicts with everything.
    Other,
}

impl OpSig {
    fn independent(self, other: OpSig) -> bool {
        match (self, other) {
            (
                OpSig::Mem {
                    kind: ka, addr: aa, ..
                },
                OpSig::Mem {
                    kind: kb, addr: ab, ..
                },
            ) => aa != ab || (ka == AccessKind::Load && kb == AccessKind::Load),
            _ => false,
        }
    }
}

/// Where deterministic execution stopped.
enum Point {
    /// Current thread is about to execute a visible operation.
    Boundary,
    /// No thread running, two or more ready: a free dispatch choice.
    FreeDispatch,
    /// The branch ended.
    Terminal(Term),
}

enum Term {
    Completed,
    Deadlock(Vec<ThreadId>),
    Fault(String),
    Halted,
    /// Invisible-instruction cap exhausted.
    Stalled,
}

/// The signature of the visible operation the current thread is about to
/// execute, or `None` if its next instruction is invisible.
fn current_visible_sig(kernel: &Kernel) -> Option<OpSig> {
    let t = kernel.current_thread()?;
    thread_next_sig(kernel, t)
}

/// Classifies thread `t`'s next instruction against its (authoritative)
/// saved registers.
fn thread_next_sig(kernel: &Kernel, t: ThreadId) -> Option<OpSig> {
    let regs = kernel.thread_regs(t);
    let inst = kernel.program().fetch(regs.pc())?;
    let mem = |kind: AccessKind, base: Reg, off: i32| {
        let addr = regs.get(base).wrapping_add(off as u32);
        (addr < kernel.data_end()).then_some(OpSig::Mem {
            thread: t,
            kind,
            addr,
        })
    };
    match inst {
        Inst::Lw { base, off, .. } => mem(AccessKind::Load, base, off),
        Inst::Sw { base, off, .. } => mem(AccessKind::Store, base, off),
        Inst::Tas { base, .. } => mem(AccessKind::Rmw, base, 0).or(Some(OpSig::Other)),
        Inst::Syscall => Some(OpSig::Other),
        _ => None,
    }
}

/// One kernel step with race-sanitizer bookkeeping: dispatch edges,
/// spawn edges, access-log draining, exit and join-block events.
fn apply_step(kernel: &mut Kernel, det: &mut Option<RaceDetector>) -> StepOutcome {
    let was_idle = kernel.current_thread().is_none();
    let threads_before = kernel.thread_count();
    let out = kernel.step_once();
    if let StepOutcome::Ran { thread } = out {
        if let Some(d) = det.as_mut() {
            if was_idle {
                d.on_dispatch(thread);
            }
            for child in threads_before..kernel.thread_count() {
                d.on_spawn(thread, ThreadId(child as u32));
            }
            for acc in kernel.take_accesses() {
                d.on_access(thread, &acc);
            }
            match *kernel.thread_state(thread) {
                ThreadState::Exited => d.on_exit(thread),
                ThreadState::Joining { target } => d.on_join_block(thread, target),
                _ => {}
            }
        }
    }
    out
}

/// Steps deterministically (invisible instructions, forced dispatches)
/// until the next decision point or a terminal state.
fn advance(kernel: &mut Kernel, det: &mut Option<RaceDetector>) -> Point {
    for _ in 0..INVISIBLE_CAP {
        if kernel.current_thread().is_some() {
            if current_visible_sig(kernel).is_some() {
                return Point::Boundary;
            }
        } else if kernel.ready_threads().len() >= 2 {
            return Point::FreeDispatch;
        }
        match apply_step(kernel, det) {
            StepOutcome::Ran { .. } | StepOutcome::Idled => {}
            StepOutcome::Completed => return Point::Terminal(Term::Completed),
            StepOutcome::Halted { thread } => {
                return Point::Terminal(Term::Fault(format!("{thread} executed halt")))
            }
            StepOutcome::Deadlock { blocked } => return Point::Terminal(Term::Deadlock(blocked)),
            StepOutcome::Fault { thread, fault } => {
                return Point::Terminal(Term::Fault(format!("{thread}: {fault:?}")))
            }
        }
    }
    Point::Terminal(Term::Stalled)
}

/// FNV-1a hash of the scheduler-relevant state: thread register files and
/// states, queue order, shared data, and the i860 restart bit. Clocks and
/// statistics are excluded so spin iterations hash identically.
fn state_hash(kernel: &Kernel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for i in 0..kernel.thread_count() {
        let t = ThreadId(i as u32);
        let regs = kernel.thread_regs(t);
        mix(u64::from(regs.pc()));
        for r in Reg::all() {
            mix(u64::from(regs.get(r)));
        }
        mix(match *kernel.thread_state(t) {
            ThreadState::Ready => 1,
            ThreadState::Running => 2,
            ThreadState::Blocked { addr } => 3 | (u64::from(addr) << 8),
            ThreadState::Joining { target } => 4 | (u64::from(target.0) << 8),
            ThreadState::Sleeping { until } => 5 | (until << 8),
            ThreadState::Exited => 6,
        });
    }
    mix(kernel.current_thread().map_or(u64::MAX, |t| u64::from(t.0)));
    for t in kernel.ready_threads() {
        mix(u64::from(t.0) | 0x100);
    }
    let mut addr = 0;
    while addr < kernel.data_end() {
        mix(u64::from(kernel.read_word(addr).unwrap_or(0)));
        addr += 4;
    }
    mix(kernel
        .machine()
        .atomic_restart_pc()
        .map_or(u64::MAX - 1, u64::from));
    h
}

pub(crate) struct Explorer<'a> {
    config: &'a CheckConfig,
    target: ModelTarget,
    built: BuiltGuest,
    counter_addr: u32,
    violations_addr: u32,
    expected_count: u32,
    schedules: u64,
    pruned: u64,
    cycles: u64,
    livelock_suspects: u64,
    hit_cap: bool,
    violations: Vec<Violation>,
    race_keys: Vec<(u32, u32, u32)>,
    races: Vec<Diagnostic>,
}

impl<'a> Explorer<'a> {
    pub(crate) fn new(target: ModelTarget, config: &'a CheckConfig) -> Explorer<'a> {
        let spec = ModelSpec {
            iterations: config.iterations,
            workers: config.workers,
        };
        let mut built = model_counter(target.mechanism, target.flavor, &spec);
        if target.ablated {
            built.strategy = StrategyKind::None;
        }
        let counter_addr = built.data.symbol("counter").expect("workload symbol");
        let violations_addr = built.data.symbol("violations").expect("workload symbol");
        Explorer {
            config,
            target,
            built,
            counter_addr,
            violations_addr,
            expected_count: spec.expected_count(),
            schedules: 0,
            pruned: 0,
            cycles: 0,
            livelock_suspects: 0,
            hit_cap: false,
            violations: Vec::new(),
            race_keys: Vec::new(),
            races: Vec::new(),
        }
    }

    fn protected_ranges(&self) -> Vec<SeqRange> {
        // Sequences are only *protected* when the kernel strategy will
        // actually roll them back; under the None ablation the declared
        // ranges exist in the binary but guarantee nothing.
        if matches!(self.built.strategy, StrategyKind::None) {
            Vec::new()
        } else {
            self.built.program.seq_ranges().to_vec()
        }
    }

    fn boot(&self, with_log: bool) -> Kernel {
        let mut kc = self.built.kernel_config(self.target.profile());
        kc.mem_bytes = 32 * 1024;
        kc.stack_bytes = 4096;
        kc.max_threads = self.config.workers + 2;
        let mut kernel = self.built.boot(kc).expect("model workload boots");
        if with_log {
            kernel.enable_access_log();
        }
        kernel
    }

    fn detector(&self) -> Option<RaceDetector> {
        self.target
            .races_checked()
            .then(|| RaceDetector::new(self.protected_ranges(), self.data_end()))
    }

    fn data_end(&self) -> u32 {
        self.built.data.len_bytes()
    }

    /// Runs the exhaustive exploration.
    pub(crate) fn run(&mut self) {
        let mut det = self.detector();
        let mut kernel = self.boot(det.is_some());
        let point = advance(&mut kernel, &mut det);
        self.drain_races(&mut det);
        let mut path = Schedule::default();
        let mut hashes = Vec::new();
        match point {
            Point::Terminal(term) => self.on_terminal(term, &kernel, &path),
            Point::Boundary | Point::FreeDispatch => {
                let dispatch = matches!(point, Point::FreeDispatch);
                self.dfs(
                    kernel,
                    det,
                    dispatch,
                    Vec::new(),
                    0,
                    0,
                    &mut path,
                    &mut hashes,
                );
            }
        }
    }

    fn drain_races(&mut self, det: &mut Option<RaceDetector>) {
        let Some(d) = det.as_mut() else { return };
        for race in d.take_races() {
            self.note_race(race);
        }
    }

    fn note_race(&mut self, race: Race) {
        let key = (race.addr, race.prior_pc, race.pc);
        if self.race_keys.contains(&key) {
            return;
        }
        self.race_keys.push(key);
        let what = if race.write { "write" } else { "read" };
        self.races.push(Diagnostic::new(
            DiagKind::DataRace,
            race.pc,
            format!(
                "unordered {what} of shared word {:#x} (conflicting access at pc {})",
                race.addr, race.prior_pc
            ),
        ));
    }

    fn violations_word(&self, kernel: &Kernel) -> u32 {
        kernel.read_word(self.violations_addr).unwrap_or(0)
    }

    /// The recursive search. `at_dispatch` distinguishes the two decision
    /// point kinds; `index` numbers decision points along this path.
    ///
    /// Takes the kernel and detector by value: the final branch out of a
    /// decision point *moves* the parent state into the child instead of
    /// copying it. Most decision points deep in the tree offer exactly one
    /// choice (the preemption budget is spent), so this removes the
    /// overwhelming majority of kernel snapshots — each of which copies
    /// the full guest memory image — without changing the search at all.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        kernel: Kernel,
        det: Option<RaceDetector>,
        at_dispatch: bool,
        sleep: Vec<OpSig>,
        preemptions: u32,
        index: u64,
        path: &mut Schedule,
        hashes: &mut Vec<u64>,
    ) {
        if self.hit_cap {
            return;
        }
        if self.schedules >= self.config.max_schedules {
            self.hit_cap = true;
            return;
        }
        // Mutual exclusion is checked at every decision point: the guest
        // records violations in a dedicated word the moment its critical
        // section observes an intruder. The branch is truncated, but its
        // default continuation is first run out to harvest the companion
        // lost-update evidence (the same interleaving that breaks mutual
        // exclusion also drops an increment).
        if self.target.mutex_checked() && self.violations_word(&kernel) > 0 {
            self.schedules += 1;
            self.record(
                DiagKind::MutexViolation,
                "two threads were inside the critical section simultaneously \
                 (cs_owner changed under the owner)"
                    .to_string(),
                path,
            );
            if !self.has_violation(DiagKind::LostUpdate) {
                if let Some(counter) = self.counter_after_default_run(&kernel) {
                    if counter != self.expected_count {
                        self.record(
                            DiagKind::LostUpdate,
                            format!(
                                "final counter is {counter}, expected {} — an increment was lost",
                                self.expected_count
                            ),
                            path,
                        );
                    }
                }
            }
            return;
        }
        if index >= self.config.max_visible_ops {
            self.schedules += 1;
            self.livelock_suspects += 1;
            self.record(
                DiagKind::LivelockSuspect,
                format!(
                    "no terminal state or state cycle within {} visible operations",
                    self.config.max_visible_ops
                ),
                path,
            );
            return;
        }
        let h = state_hash(&kernel);
        if hashes.contains(&h) {
            // An exact state repeat on this path: a spin under an unfair
            // schedule. The suffix explores nothing new.
            self.schedules += 1;
            self.cycles += 1;
            return;
        }
        hashes.push(h);

        // Enumerate choices: the default first.
        let ready = kernel.ready_threads();
        let mut choices: Vec<(Decision, Option<OpSig>)> = Vec::new();
        if at_dispatch {
            for &u in &ready {
                choices.push((Decision::Dispatch(u), thread_next_sig(&kernel, u)));
            }
        } else {
            choices.push((Decision::Continue, current_visible_sig(&kernel)));
            if preemptions < self.config.preemption_bound {
                for &u in &ready {
                    choices.push((Decision::Preempt(u), thread_next_sig(&kernel, u)));
                }
            }
        }

        let mut done: Vec<OpSig> = Vec::new();
        // The parent snapshot. Every branch but the last starts from a
        // clone; the last branch consumes it outright — no sibling will
        // need it again, and the clone (dominated by the guest memory
        // image) is by far the most expensive operation per decision
        // point.
        let last = choices.len().saturating_sub(1);
        let mut parent = Some((kernel, det));
        for (i, (decision, sig)) in choices.iter().enumerate() {
            if self.hit_cap {
                break;
            }
            // Sleep-set pruning applies only to Continue: executing a
            // sleeping operation re-derives an interleaving already
            // covered (everything since it went to sleep was independent
            // of it). Preempt/Dispatch branches contain more than their
            // first operation, so they are never pruned.
            if matches!(decision, Decision::Continue) {
                if let Some(s @ OpSig::Mem { .. }) = sig {
                    if sleep.contains(s) {
                        self.pruned += 1;
                        continue;
                    }
                }
            }
            let (mut k, mut d) = if i == last {
                parent
                    .take()
                    .expect("parent state unconsumed until the last branch")
            } else {
                let (pk, pd) = parent.as_ref().expect("parent state present for siblings");
                (pk.clone(), pd.clone())
            };
            let mut child_preemptions = preemptions;
            match decision {
                Decision::Continue => {
                    // Execute the visible operation itself.
                    match apply_step(&mut k, &mut d) {
                        StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                        terminal => {
                            self.drain_races(&mut d);
                            self.on_step_terminal(terminal, &k, path);
                            continue;
                        }
                    }
                }
                Decision::Preempt(u) => {
                    child_preemptions += 1;
                    k.preempt_current();
                    k.schedule_next(*u);
                    if let terminal @ (StepOutcome::Completed
                    | StepOutcome::Halted { .. }
                    | StepOutcome::Deadlock { .. }
                    | StepOutcome::Fault { .. }) = apply_step(&mut k, &mut d)
                    {
                        self.drain_races(&mut d);
                        self.on_step_terminal(terminal, &k, path);
                        continue;
                    }
                }
                Decision::Dispatch(u) => {
                    k.schedule_next(*u);
                    if let terminal @ (StepOutcome::Completed
                    | StepOutcome::Halted { .. }
                    | StepOutcome::Deadlock { .. }
                    | StepOutcome::Fault { .. }) = apply_step(&mut k, &mut d)
                    {
                        self.drain_races(&mut d);
                        self.on_step_terminal(terminal, &k, path);
                        continue;
                    }
                }
            }
            self.drain_races(&mut d);
            // The sleep set handed to the child: everything still
            // independent of the operation this branch executes first.
            let child_sleep: Vec<OpSig> = match (decision, sig) {
                (Decision::Continue, Some(op)) => sleep
                    .iter()
                    .chain(done.iter())
                    .copied()
                    .filter(|s| s.independent(*op))
                    .collect(),
                (Decision::Continue, None) => Vec::new(),
                // Preempt/Dispatch execute only thread-private bookkeeping
                // before the next decision point; the sleep set carries
                // over and keeps being filtered as operations execute.
                _ => sleep.iter().chain(done.iter()).copied().collect(),
            };

            // Record the decision if it deviates from the default
            // (Continue, or dispatching the queue front).
            let is_default = i == 0;
            if !is_default {
                path.decisions.push((index, *decision));
            }
            let point = advance(&mut k, &mut d);
            self.drain_races(&mut d);
            match point {
                Point::Terminal(term) => self.on_terminal(term, &k, path),
                Point::Boundary => self.dfs(
                    k,
                    d,
                    false,
                    child_sleep,
                    child_preemptions,
                    index + 1,
                    path,
                    hashes,
                ),
                Point::FreeDispatch => self.dfs(
                    k,
                    d,
                    true,
                    child_sleep,
                    child_preemptions,
                    index + 1,
                    path,
                    hashes,
                ),
            }
            if !is_default {
                path.decisions.pop();
            }
            if matches!(decision, Decision::Continue) {
                if let Some(s @ OpSig::Mem { .. }) = sig {
                    done.push(*s);
                }
            }
        }
        hashes.pop();
    }

    fn on_step_terminal(&mut self, outcome: StepOutcome, kernel: &Kernel, path: &Schedule) {
        let term = match outcome {
            StepOutcome::Completed => Term::Completed,
            StepOutcome::Halted { thread } => Term::Fault(format!("{thread} executed halt")),
            StepOutcome::Deadlock { blocked } => Term::Deadlock(blocked),
            StepOutcome::Fault { thread, fault } => Term::Fault(format!("{thread}: {fault:?}")),
            StepOutcome::Ran { .. } | StepOutcome::Idled => return,
        };
        self.on_terminal(term, kernel, path);
    }

    fn on_terminal(&mut self, term: Term, kernel: &Kernel, path: &Schedule) {
        self.schedules += 1;
        match term {
            Term::Completed => {
                if self.target.mutex_checked() && self.violations_word(kernel) > 0 {
                    self.record(
                        DiagKind::MutexViolation,
                        "two threads were inside the critical section simultaneously \
                         (cs_owner changed under the owner)"
                            .to_string(),
                        path,
                    );
                }
                let counter = kernel.read_word(self.counter_addr).unwrap_or(0);
                if counter != self.expected_count {
                    self.record(
                        DiagKind::LostUpdate,
                        format!(
                            "final counter is {counter}, expected {} — an increment was lost",
                            self.expected_count
                        ),
                        path,
                    );
                }
            }
            Term::Deadlock(blocked) => {
                let list: Vec<String> = blocked.iter().map(|t| t.to_string()).collect();
                self.record(
                    DiagKind::DeadlockFound,
                    format!("no runnable thread; blocked: {}", list.join(", ")),
                    path,
                );
            }
            Term::Halted => {
                self.record(
                    DiagKind::GuestFault,
                    "guest executed halt outside the kernel".to_string(),
                    path,
                );
            }
            Term::Fault(message) => {
                self.record(DiagKind::GuestFault, message, path);
            }
            Term::Stalled => {
                self.livelock_suspects += 1;
                self.record(
                    DiagKind::LivelockSuspect,
                    format!("more than {INVISIBLE_CAP} instructions without a visible operation"),
                    path,
                );
            }
        }
    }

    fn has_violation(&self, kind: DiagKind) -> bool {
        self.violations.iter().any(|v| v.diag.kind == kind)
    }

    /// Runs the default continuation (no further non-default decisions)
    /// from `kernel` to its terminal state and returns the final counter,
    /// or `None` if it does not complete cleanly.
    fn counter_after_default_run(&self, kernel: &Kernel) -> Option<u32> {
        let mut k = kernel.clone();
        let mut det = None;
        let mut hashes = Vec::new();
        let mut steps = 0u64;
        loop {
            match advance(&mut k, &mut det) {
                Point::Terminal(Term::Completed) => return k.read_word(self.counter_addr).ok(),
                Point::Terminal(_) => return None,
                Point::Boundary | Point::FreeDispatch => {
                    steps += 1;
                    if steps > self.config.max_visible_ops.saturating_mul(4) {
                        return None;
                    }
                    let h = state_hash(&k);
                    if hashes.contains(&h) {
                        return None;
                    }
                    hashes.push(h);
                    match apply_step(&mut k, &mut det) {
                        StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                        StepOutcome::Completed => return k.read_word(self.counter_addr).ok(),
                        _ => return None,
                    }
                }
            }
        }
    }

    /// Records the first violation of each kind, with a minimized
    /// replay-verified schedule.
    fn record(&mut self, kind: DiagKind, message: String, path: &Schedule) {
        if self.has_violation(kind) {
            return;
        }
        let schedule = self.minimize_schedule(kind, path.clone());
        self.violations.push(Violation {
            diag: Diagnostic::new(kind, 0, message),
            schedule,
            found_after: self.schedules,
        });
    }

    /// Greedy minimization: drop decisions whose removal preserves the
    /// violation under replay. If even the original schedule does not
    /// replay (e.g. a livelock suspect that needs the exact exploration
    /// state), it is returned untouched.
    fn minimize_schedule(&self, kind: DiagKind, original: Schedule) -> Schedule {
        if !self.replay(&original).contains(&kind) {
            return original;
        }
        let mut current = original;
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < current.len() {
                let candidate = current.without(i);
                if self.replay(&candidate).contains(&kind) {
                    current = candidate;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        current
    }

    /// Deterministically replays a schedule from a fresh boot, applying
    /// recorded decisions at their decision points and defaults
    /// everywhere else, and returns every violation kind the terminal
    /// state exhibits. Public behavior is identical to exploration —
    /// same kernel, same stepping — minus the search.
    fn replay(&self, schedule: &Schedule) -> Vec<DiagKind> {
        let mut kernel = self.boot(false);
        let mut det = None;
        let mut hashes = Vec::new();
        let mut index = 0u64;
        loop {
            match advance(&mut kernel, &mut det) {
                Point::Terminal(term) => return self.terminal_kinds(term, &kernel),
                Point::Boundary | Point::FreeDispatch => {
                    if index >= self.config.max_visible_ops.saturating_mul(4) {
                        return vec![DiagKind::LivelockSuspect];
                    }
                    let h = state_hash(&kernel);
                    if hashes.contains(&h) {
                        return Vec::new(); // spin cycle under defaults: benign
                    }
                    hashes.push(h);
                    match schedule.decision_at(index) {
                        Some(Decision::Preempt(u)) => {
                            if kernel.preempt_current() {
                                kernel.schedule_next(u);
                            }
                        }
                        Some(Decision::Dispatch(u)) => {
                            kernel.schedule_next(u);
                        }
                        Some(Decision::Continue) | None => {}
                    }
                    index += 1;
                    match apply_step(&mut kernel, &mut det) {
                        StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                        StepOutcome::Completed => {
                            return self.terminal_kinds(Term::Completed, &kernel)
                        }
                        StepOutcome::Halted { .. } => {
                            return self.terminal_kinds(Term::Halted, &kernel)
                        }
                        StepOutcome::Deadlock { blocked } => {
                            return self.terminal_kinds(Term::Deadlock(blocked), &kernel)
                        }
                        StepOutcome::Fault { .. } => {
                            return self.terminal_kinds(Term::Fault(String::new()), &kernel)
                        }
                    }
                }
            }
        }
    }

    /// The violation kinds a terminal state exhibits.
    fn terminal_kinds(&self, term: Term, kernel: &Kernel) -> Vec<DiagKind> {
        match term {
            Term::Completed => {
                let mut kinds = Vec::new();
                if self.target.mutex_checked() && self.violations_word(kernel) > 0 {
                    kinds.push(DiagKind::MutexViolation);
                }
                if kernel.read_word(self.counter_addr).unwrap_or(0) != self.expected_count {
                    kinds.push(DiagKind::LostUpdate);
                }
                kinds
            }
            Term::Deadlock(_) => vec![DiagKind::DeadlockFound],
            Term::Halted | Term::Fault(_) => vec![DiagKind::GuestFault],
            Term::Stalled => vec![DiagKind::LivelockSuspect],
        }
    }

    pub(crate) fn into_report(self) -> TargetReport {
        TargetReport {
            target: self.target,
            schedules: self.schedules,
            pruned: self.pruned,
            cycles: self.cycles,
            livelock_suspects: self.livelock_suspects,
            hit_schedule_cap: self.hit_cap,
            violations: self.violations,
            races: self.races,
        }
    }
}

/// Exhaustively checks one target under `config`.
pub fn check_target(target: ModelTarget, config: &CheckConfig) -> TargetReport {
    let mut explorer = Explorer::new(target, config);
    explorer.run();
    explorer.into_report()
}

/// Replays a counterexample schedule from a fresh boot with full event
/// recording and returns the captured timeline plus the target CPU's
/// clock rate in MHz (what [`ras_obs::chrome_trace`] needs to convert
/// cycles to microseconds). Stepping is identical to exploration, so the
/// trace shows exactly the interleaving the violation needs — every
/// dispatch, forced preemption, and rollback as timestamped events.
pub fn counterexample_trace(
    target: ModelTarget,
    config: &CheckConfig,
    schedule: &Schedule,
) -> (Vec<ras_obs::TimedObsEvent>, f64) {
    let mhz = target.profile().mhz();
    let explorer = Explorer::new(target, config);
    let mut kernel = explorer.boot(false);
    kernel.enable_recording(true);
    let mut det = None;
    let mut index = 0u64;
    loop {
        match advance(&mut kernel, &mut det) {
            Point::Terminal(_) => break,
            Point::Boundary | Point::FreeDispatch => {
                if index >= config.max_visible_ops.saturating_mul(4) {
                    break;
                }
                match schedule.decision_at(index) {
                    Some(Decision::Preempt(u)) => {
                        if kernel.preempt_current() {
                            kernel.schedule_next(u);
                        }
                    }
                    Some(Decision::Dispatch(u)) => {
                        kernel.schedule_next(u);
                    }
                    Some(Decision::Continue) | None => {}
                }
                index += 1;
                match apply_step(&mut kernel, &mut det) {
                    StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                    _ => break,
                }
            }
        }
    }
    let events = kernel
        .take_recording()
        .map(ras_obs::Recording::into_events)
        .unwrap_or_default();
    (events, mhz)
}
