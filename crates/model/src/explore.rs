//! The systematic schedule explorer: a stateful depth-first search over
//! every preemption decision, with sleep-set partial-order reduction and
//! path-local cycle detection.
//!
//! # Decision points and transitions
//!
//! Execution between decision points is deterministic: the kernel is
//! single-stepped (oracle mode, timer neutralized) until the current
//! thread is about to execute a *visible* operation — a load, store, or
//! Test-And-Set of shared data (below [`Kernel::data_end`]), or any
//! system call — or until no thread runs and several are ready. At such a
//! point the explorer branches:
//!
//! * **Continue** — execute the visible operation;
//! * **Preempt(u)** — deliver a timer interrupt *now* (strategy check,
//!   rollback, requeue — identical to real preemption) and run ready
//!   thread `u`; bounded by [`CheckConfig::preemption_bound`];
//! * **Dispatch(u)** — with nothing running, pick which ready thread goes
//!   next.
//!
//! Register-only instructions and stack traffic are invisible: preempting
//! between them is indistinguishable (to any safety property over shared
//! memory) from preempting at the next visible operation, so the visible
//! boundaries *are* the partial-order reduction of the raw interleaving
//! space. The paper's hazard windows fall out naturally: the decision
//! points inside a Test-And-Set sequence are exactly "before the `lw`"
//! and "before the `sw`".
//!
//! # Sleep sets
//!
//! On top of the boundary reduction the explorer keeps classic sleep
//! sets: after fully exploring `Continue` on operation `o` at a decision
//! point, `o` is put to sleep for the sibling branches; a descendant
//! `Continue` on the same `(thread, kind, address)` operation is pruned
//! unless some intervening operation conflicted with `o` (same address,
//! at least one write — or a system call, which conservatively conflicts
//! with everything). Pruned branches are counted and reported so the
//! reduction is observable. A subtlety specific to restartable
//! sequences: preempting a thread rolls its PC back, so the "same
//! operation" test uses the post-rollback signature; a rolled-back
//! sequence re-arrives at its *load*, never at its committing store, so
//! sleeping store signatures can never be matched incorrectly. The same
//! argument covers rseq: an aborted window is redirected to its abort
//! handler, which republishes and re-enters at the window's load.
//!
//! # Cycles and livelock
//!
//! Unfair schedules make spin loops repeat states exactly (the clock is
//! excluded from the state hash). A decision point whose hash already
//! appears on the current path is a cycle — the branch is truncated and
//! counted; a genuine spin under an unfair scheduler is not a safety
//! violation. Exhausting [`CheckConfig::max_visible_ops`] without a
//! cycle is reported as a livelock suspect.

use ras_diag::{DiagKind, Diagnostic};
use ras_guest::workloads::{model_counter, ModelSpec, TasFlavor};
use ras_guest::{BuiltGuest, Mechanism};
use ras_isa::{Inst, Reg, SeqRange};
use ras_kernel::{Checkpoint, Decision, Kernel, StepOutcome, StrategyKind, ThreadId, ThreadState};
use ras_machine::{AccessKind, CpuProfile, EngineKind};

use crate::hb::{Race, RaceDetector};
use crate::pathset::PathSet;
use crate::schedule::Schedule;

/// Exploration limits and workload size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckConfig {
    /// Maximum preemptions injected per schedule. Two suffices for every
    /// two-thread mutual-exclusion hazard (one to interrupt a sequence,
    /// one to interleave the victim).
    pub preemption_bound: u32,
    /// Depth bound: visible operations per schedule before the branch is
    /// reported as a livelock suspect.
    pub max_visible_ops: u64,
    /// Hard cap on explored schedules per target.
    pub max_schedules: u64,
    /// Worker threads in the model workload.
    pub workers: usize,
    /// Critical sections per worker.
    pub iterations: u32,
    /// Rewind sibling branches through the kernel's undo-log checkpoints
    /// instead of cloning the kernel per branch. Off, the explorer clones
    /// (the pre-checkpoint behavior); results are identical either way —
    /// the differential tests assert it.
    pub checkpoints: bool,
    /// Decision-point depth at which [`check_target_split`] hands
    /// disjoint subtrees to worker threads; `0` disables splitting.
    /// Purely a parallelism knob: merged reports are byte-identical to a
    /// sequential search.
    pub split_depth: u32,
    /// Which machine engine the explored kernels boot with. The explorer
    /// single-steps every kernel (oracle mode), and instruction-granular
    /// observation is a standing deoptimization point, so reports are
    /// byte-identical under either engine — the differential smoke test
    /// asserts it. The knob exists so CI can prove that claim end to end.
    pub engine: EngineKind,
}

impl Default for CheckConfig {
    fn default() -> CheckConfig {
        CheckConfig {
            preemption_bound: 2,
            max_visible_ops: 400,
            max_schedules: 100_000,
            workers: 2,
            iterations: 1,
            checkpoints: true,
            split_depth: 3,
            engine: EngineKind::Interpreter,
        }
    }
}

/// One (mechanism × TAS flavor) configuration to verify, optionally with
/// the kernel's atomicity strategy stripped (the refutation target).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelTarget {
    /// The synchronization mechanism.
    pub mechanism: Mechanism,
    /// The read-modify-write flavor.
    pub flavor: TasFlavor,
    /// Run with [`StrategyKind::None`] despite the mechanism requiring
    /// kernel support — the ablation the checker must refute.
    pub ablated: bool,
}

impl ModelTarget {
    /// Every target: each supported (mechanism × flavor) pair, plus the
    /// ablated inline sequence.
    pub fn all() -> Vec<ModelTarget> {
        let mut targets = Vec::new();
        for mechanism in Mechanism::all() {
            for flavor in TasFlavor::all() {
                if flavor.supported_by(mechanism) {
                    targets.push(ModelTarget {
                        mechanism,
                        flavor,
                        ablated: false,
                    });
                }
            }
        }
        targets.push(ModelTarget {
            mechanism: Mechanism::RasInline,
            flavor: TasFlavor::Tas,
            ablated: true,
        });
        targets
    }

    /// Stable identifier, e.g. `ras-inline+tas` or `ras-inline+tas+none`.
    pub fn id(&self) -> String {
        let base = format!("{}+{}", self.mechanism.id(), self.flavor.id());
        if self.ablated {
            format!("{base}+none")
        } else {
            base
        }
    }

    /// The CPU profile the target runs on: the R3000 (the paper's main
    /// machine) when the mechanism is software-only, the i860 when it
    /// needs hardware support.
    pub fn profile(&self) -> CpuProfile {
        if self.mechanism.supported_by(&CpuProfile::r3000()) {
            CpuProfile::r3000()
        } else {
            CpuProfile::i860()
        }
    }

    /// Whether this target is *expected* to violate its properties.
    pub fn expects_violations(&self) -> bool {
        self.ablated
    }

    /// Whether the happens-before race sanitizer applies. Lamport's
    /// software protocols synchronize through plain loads and stores by
    /// design, which defeats a happens-before analysis (every execution
    /// of protocol (a) is "racy" yet correct), so they are exempt.
    pub fn races_checked(&self) -> bool {
        !matches!(
            self.mechanism,
            Mechanism::LamportPerLock | Mechanism::LamportBundled
        )
    }

    /// Whether mutual exclusion is a property of this target (the
    /// lock-free fetch-and-add flavor has no critical section).
    pub fn mutex_checked(&self) -> bool {
        !self.flavor.is_lock_free()
    }
}

impl std::fmt::Display for ModelTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

/// A property violation with its minimized, replayable schedule.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong, as a shared diagnostic.
    pub diag: Diagnostic,
    /// The minimized schedule that reproduces it.
    pub schedule: Schedule,
    /// How many schedules had been explored when it was first found.
    pub found_after: u64,
}

/// The verdict for one target.
#[derive(Debug, Clone)]
pub struct TargetReport {
    /// The checked target.
    pub target: ModelTarget,
    /// Maximal schedules explored (terminal, cycle-truncated, or
    /// violation-truncated).
    pub schedules: u64,
    /// Branches pruned by the sleep-set reduction.
    pub pruned: u64,
    /// Branches truncated as exact state cycles (benign spins under
    /// unfair schedules).
    pub cycles: u64,
    /// Branches that exhausted the depth bound without cycling.
    pub livelock_suspects: u64,
    /// The schedule cap was hit; exploration is incomplete.
    pub hit_schedule_cap: bool,
    /// Safety violations found (first of each kind, minimized).
    pub violations: Vec<Violation>,
    /// Data races found by the happens-before sanitizer.
    pub races: Vec<Diagnostic>,
    /// Checkpoints taken (or kernel clones, when checkpoints are off) to
    /// snapshot sibling branches.
    pub checkpoints: u64,
    /// Undo-log entries replayed by checkpoint restores.
    pub undo_replayed: u64,
    /// Bytes snapshotted for sibling branches: undo-log checkpoint
    /// footprints, or full kernel-clone footprints when checkpoints are
    /// off.
    pub snapshot_bytes: u64,
    /// On-path states deduplicated by the exact-state hash set, across
    /// exploration, replay, and minimization.
    pub states_deduped: u64,
    /// rseq abort dispatches triggered by explored `Preempt` decisions —
    /// nonzero exactly when the search drove preemptions into published
    /// rseq windows and exercised the abort handlers.
    pub rseq_aborts: u64,
}

impl TargetReport {
    /// Whether the observed behavior matches the expectation: safe
    /// targets must have no violations and no races; the ablated target
    /// must exhibit both the mutual-exclusion violation and the lost
    /// update.
    pub fn ok(&self) -> bool {
        if self.target.expects_violations() {
            let has = |k: DiagKind| self.violations.iter().any(|v| v.diag.kind == k);
            has(DiagKind::MutexViolation) && has(DiagKind::LostUpdate)
        } else {
            self.violations.is_empty() && self.races.is_empty()
        }
    }
}

/// Safety cap on invisible (register-only) instructions between decision
/// points; a guest spinning without any shared-memory access or syscall
/// trips it.
const INVISIBLE_CAP: u32 = 20_000;

/// Signature of a thread's next visible operation, for independence
/// reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OpSig {
    /// A classified shared-memory access.
    Mem {
        thread: ThreadId,
        kind: AccessKind,
        addr: u32,
    },
    /// A system call or unclassifiable operation — conservatively
    /// conflicts with everything.
    Other,
}

impl OpSig {
    fn independent(self, other: OpSig) -> bool {
        match (self, other) {
            (
                OpSig::Mem {
                    kind: ka, addr: aa, ..
                },
                OpSig::Mem {
                    kind: kb, addr: ab, ..
                },
            ) => aa != ab || (ka == AccessKind::Load && kb == AccessKind::Load),
            _ => false,
        }
    }
}

/// Where deterministic execution stopped.
enum Point {
    /// Current thread is about to execute a visible operation.
    Boundary,
    /// No thread running, two or more ready: a free dispatch choice.
    FreeDispatch,
    /// The branch ended.
    Terminal(Term),
}

enum Term {
    Completed,
    Deadlock(Vec<ThreadId>),
    Fault(String),
    Halted,
    /// Invisible-instruction cap exhausted.
    Stalled,
}

/// The signature of the visible operation the current thread is about to
/// execute, or `None` if its next instruction is invisible.
fn current_visible_sig(kernel: &Kernel) -> Option<OpSig> {
    let t = kernel.current_thread()?;
    thread_next_sig(kernel, t)
}

/// Classifies thread `t`'s next instruction against its (authoritative)
/// saved registers.
fn thread_next_sig(kernel: &Kernel, t: ThreadId) -> Option<OpSig> {
    let regs = kernel.thread_regs(t);
    let inst = kernel.program().fetch(regs.pc())?;
    let mem = |kind: AccessKind, base: Reg, off: i32| {
        let addr = regs.get(base).wrapping_add(off as u32);
        (addr < kernel.data_end()).then_some(OpSig::Mem {
            thread: t,
            kind,
            addr,
        })
    };
    match inst {
        Inst::Lw { base, off, .. } => mem(AccessKind::Load, base, off),
        Inst::Sw { base, off, .. } => mem(AccessKind::Store, base, off),
        Inst::Tas { base, .. } => mem(AccessKind::Rmw, base, 0).or(Some(OpSig::Other)),
        Inst::Syscall => Some(OpSig::Other),
        _ => None,
    }
}

/// One kernel step with race-sanitizer bookkeeping: dispatch edges,
/// spawn edges, access-log draining, exit and join-block events.
fn apply_step(kernel: &mut Kernel, det: &mut Option<RaceDetector>) -> StepOutcome {
    let was_idle = kernel.current_thread().is_none();
    let threads_before = kernel.thread_count();
    let out = kernel.step_once();
    if let StepOutcome::Ran { thread } = out {
        if let Some(d) = det.as_mut() {
            if was_idle {
                d.on_dispatch(thread);
            }
            for child in threads_before..kernel.thread_count() {
                d.on_spawn(thread, ThreadId(child as u32));
            }
            kernel.drain_accesses(|acc| d.on_access(thread, acc));
            match *kernel.thread_state(thread) {
                ThreadState::Exited => d.on_exit(thread),
                ThreadState::Joining { target } => d.on_join_block(thread, target),
                _ => {}
            }
        }
    }
    out
}

/// Steps deterministically (invisible instructions, forced dispatches)
/// until the next decision point or a terminal state.
fn advance(kernel: &mut Kernel, det: &mut Option<RaceDetector>) -> Point {
    for _ in 0..INVISIBLE_CAP {
        if kernel.current_thread().is_some() {
            if current_visible_sig(kernel).is_some() {
                return Point::Boundary;
            }
        } else if kernel.ready_len() >= 2 {
            return Point::FreeDispatch;
        }
        match apply_step(kernel, det) {
            StepOutcome::Ran { .. } | StepOutcome::Idled => {}
            StepOutcome::Completed => return Point::Terminal(Term::Completed),
            StepOutcome::Halted { thread } => {
                return Point::Terminal(Term::Fault(format!("{thread} executed halt")))
            }
            StepOutcome::Deadlock { blocked } => return Point::Terminal(Term::Deadlock(blocked)),
            StepOutcome::Fault { thread, fault } => {
                return Point::Terminal(Term::Fault(format!("{thread}: {fault:?}")))
            }
        }
    }
    Point::Terminal(Term::Stalled)
}

/// Discriminant and payload words for hashing a [`ThreadState`]. The two
/// words are mixed separately — the previous packing (`payload << 8`)
/// silently dropped the payload's top 8 bits, so `Sleeping` deadlines
/// differing only there (e.g. `1 << 56` vs `0`) hashed identically and
/// could fuse distinct states into a phantom cycle.
fn thread_state_words(state: &ThreadState) -> (u64, u64) {
    match *state {
        ThreadState::Ready => (1, 0),
        ThreadState::Running => (2, 0),
        ThreadState::Blocked { addr } => (3, u64::from(addr)),
        ThreadState::Joining { target } => (4, u64::from(target.0)),
        ThreadState::Sleeping { until } => (5, until),
        ThreadState::Exited => (6, 0),
    }
}

/// FNV-1a hash of the scheduler-relevant state: thread register files and
/// states, queue order, shared data, and the i860 restart bit. Clocks and
/// statistics are excluded so spin iterations hash identically.
///
/// The shared-data term folds in the machine's running memory
/// fingerprint when dirty tracking is on — O(1) instead of a scan per
/// decision point. With tracking off the same fingerprint is recomputed
/// by scanning, so hashes are identical across the two modes by
/// construction (same XOR-fold over the same words).
fn state_hash(kernel: &Kernel) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for i in 0..kernel.thread_count() {
        let t = ThreadId(i as u32);
        let regs = kernel.thread_regs(t);
        mix(u64::from(regs.pc()));
        for &g in regs.gprs() {
            mix(u64::from(g));
        }
        let (discriminant, payload) = thread_state_words(kernel.thread_state(t));
        mix(discriminant);
        mix(payload);
        // rseq registration is kernel-side per-thread state: two states
        // identical in registers and memory but differing in whether a
        // thread has a registered area behave differently at the next
        // preemption, so they must not fuse into one hash.
        mix(kernel.thread_rseq_area(t).map_or(u64::MAX, u64::from));
    }
    mix(kernel.current_thread().map_or(u64::MAX, |t| u64::from(t.0)));
    for t in kernel.ready_iter() {
        mix(u64::from(t.0) | 0x100);
    }
    let data_end = kernel.data_end();
    mix(kernel
        .memory_fingerprint()
        .unwrap_or_else(|| kernel.machine().mem().fingerprint_scan(data_end)));
    mix(kernel
        .machine()
        .atomic_restart_pc()
        .map_or(u64::MAX - 1, u64::from));
    h
}

/// A pending DFS subtree, frozen at a decision point of depth
/// [`CheckConfig::split_depth`] during the sequential prefix expansion —
/// everything `dfs` needs to resume from exactly that node in a fresh
/// explorer (on any worker thread).
struct SubtreeTask {
    kernel: Kernel,
    det: Option<RaceDetector>,
    at_dispatch: bool,
    sleep: Vec<OpSig>,
    preemptions: u32,
    index: u64,
    path: Schedule,
    hashes: PathSet,
}

/// Where the sequential expansion stood when a subtree was spawned, so
/// the merge can splice subtree results back into DFS order: a task with
/// mark `m` sits after the expansion's first `m.schedules` terminals
/// (and first `m.violations_len` violations, `m.races_len` races) and
/// before all later ones.
#[derive(Debug, Clone, Copy)]
struct UnitMark {
    schedules: u64,
    violations_len: usize,
    races_len: usize,
}

/// Everything a subtree exploration produced, with violation
/// `found_after` counts and race keys still local to the subtree; the
/// merge re-bases them into global DFS order.
struct SubtreeOutcome {
    schedules: u64,
    pruned: u64,
    cycles: u64,
    livelock_suspects: u64,
    hit_cap: bool,
    violations: Vec<Violation>,
    race_keys: Vec<(u32, u32, u32)>,
    races: Vec<Diagnostic>,
    checkpoints: u64,
    undo_replayed: u64,
    snapshot_bytes: u64,
    states_deduped: u64,
    rseq_aborts: u64,
}

/// Approximate footprint of a full kernel clone — the snapshot cost when
/// checkpoints are off, dominated by the guest memory image.
fn kernel_clone_bytes(kernel: &Kernel) -> u64 {
    u64::from(kernel.machine().mem().len_bytes()) + std::mem::size_of::<Kernel>() as u64
}

pub(crate) struct Explorer<'a> {
    config: &'a CheckConfig,
    target: ModelTarget,
    built: BuiltGuest,
    counter_addr: u32,
    violations_addr: u32,
    expected_count: u32,
    schedules: u64,
    pruned: u64,
    cycles: u64,
    livelock_suspects: u64,
    hit_cap: bool,
    violations: Vec<Violation>,
    race_keys: Vec<(u32, u32, u32)>,
    races: Vec<Diagnostic>,
    /// Truncate a branch at the first decision point where the guest has
    /// already recorded a mutual-exclusion violation (the default: the
    /// suffix proves nothing more about safety). [`race_report`] turns
    /// this off — the violating suffixes are exactly where the ablated
    /// target's late-shared words (the `violations` tally itself) get
    /// their conflicting accesses, and the happens-before sanitizer must
    /// see them to witness every statically racy word.
    stop_on_violation: bool,
    /// Snapshot siblings via undo-log checkpoints instead of clones.
    use_checkpoints: bool,
    /// When set, `dfs` stops at decision points of this depth and
    /// freezes them as [`SubtreeTask`]s instead of exploring them.
    spawn_at: Option<u64>,
    tasks: Vec<SubtreeTask>,
    marks: Vec<UnitMark>,
    checkpoints: u64,
    undo_replayed: u64,
    snapshot_bytes: u64,
    states_deduped: u64,
    rseq_aborts: u64,
    /// Recycled race-detector scratch snapshots, roughly one per DFS
    /// depth. [`RaceDetector::snapshot_into`] refills a pooled scratch
    /// in place, so interior decision points stop paying the detector's
    /// ~50 small allocations per sibling branch.
    det_pool: Vec<RaceDetector>,
    /// Recycled kernel checkpoints, same lifecycle as `det_pool`
    /// (see [`Kernel::checkpoint_into`]).
    cp_pool: Vec<Checkpoint>,
    /// Recycled choice-enumeration buffers (one live per DFS depth).
    choice_pool: Vec<Vec<(Decision, Option<OpSig>)>>,
    /// Recycled sleep-set and done-set buffers.
    sig_pool: Vec<Vec<OpSig>>,
}

impl<'a> Explorer<'a> {
    pub(crate) fn new(target: ModelTarget, config: &'a CheckConfig) -> Explorer<'a> {
        let spec = ModelSpec {
            iterations: config.iterations,
            workers: config.workers,
        };
        let mut built = model_counter(target.mechanism, target.flavor, &spec);
        if target.ablated {
            built.strategy = StrategyKind::None;
        }
        let counter_addr = built.data.symbol("counter").expect("workload symbol");
        let violations_addr = built.data.symbol("violations").expect("workload symbol");
        Explorer {
            config,
            target,
            built,
            counter_addr,
            violations_addr,
            expected_count: spec.expected_count(),
            schedules: 0,
            pruned: 0,
            cycles: 0,
            livelock_suspects: 0,
            hit_cap: false,
            violations: Vec::new(),
            race_keys: Vec::new(),
            races: Vec::new(),
            stop_on_violation: true,
            use_checkpoints: config.checkpoints,
            spawn_at: None,
            tasks: Vec::new(),
            marks: Vec::new(),
            checkpoints: 0,
            undo_replayed: 0,
            snapshot_bytes: 0,
            states_deduped: 0,
            rseq_aborts: 0,
            det_pool: Vec::new(),
            cp_pool: Vec::new(),
            choice_pool: Vec::new(),
            sig_pool: Vec::new(),
        }
    }

    /// Snapshots the detector into a pooled scratch (allocation-reusing
    /// equivalent of `det.clone()` on the checkpointed branch path).
    fn save_detector(&mut self, det: &Option<RaceDetector>) -> Option<RaceDetector> {
        det.as_ref().map(|d| {
            let mut scratch = self
                .det_pool
                .pop()
                .unwrap_or_else(|| RaceDetector::new(Vec::new(), 0));
            d.snapshot_into(&mut scratch);
            scratch
        })
    }

    /// Restores a [`Explorer::save_detector`] snapshot, returning the
    /// displaced (mutated) detector to the pool for reuse.
    fn restore_detector(&mut self, det: &mut Option<RaceDetector>, saved: Option<RaceDetector>) {
        if let (Some(d), Some(mut s)) = (det.as_mut(), saved) {
            std::mem::swap(d, &mut s);
            self.det_pool.push(s);
        }
    }

    fn protected_ranges(&self) -> Vec<SeqRange> {
        // Sequences are only *protected* when the kernel strategy will
        // actually roll them back; under the None ablation the declared
        // ranges exist in the binary but guarantee nothing.
        if matches!(self.built.strategy, StrategyKind::None) {
            Vec::new()
        } else {
            self.built.program.seq_ranges().to_vec()
        }
    }

    fn boot(&self, with_log: bool) -> Kernel {
        let mut kc = self.built.kernel_config(self.target.profile());
        kc.mem_bytes = 32 * 1024;
        kc.stack_bytes = 4096;
        kc.max_threads = self.config.workers + 2;
        kc.engine = self.config.engine;
        let mut kernel = self.built.boot(kc).expect("model workload boots");
        if with_log {
            kernel.enable_access_log();
        }
        kernel
    }

    fn detector(&self) -> Option<RaceDetector> {
        self.target
            .races_checked()
            .then(|| RaceDetector::new(self.protected_ranges(), self.data_end()))
    }

    fn data_end(&self) -> u32 {
        self.built.data.len_bytes()
    }

    /// Runs the exhaustive exploration.
    pub(crate) fn run(&mut self) {
        let mut det = self.detector();
        let mut kernel = self.boot(det.is_some());
        if self.use_checkpoints {
            kernel.enable_checkpoints();
        }
        let point = advance(&mut kernel, &mut det);
        self.drain_races(&mut det);
        let mut path = Schedule::default();
        let mut hashes = PathSet::new();
        match point {
            Point::Terminal(term) => self.on_terminal(term, &kernel, &path),
            Point::Boundary | Point::FreeDispatch => {
                let dispatch = matches!(point, Point::FreeDispatch);
                self.dfs(
                    &mut kernel,
                    &mut det,
                    dispatch,
                    Vec::new(),
                    0,
                    0,
                    &mut path,
                    &mut hashes,
                );
            }
        }
    }

    fn drain_races(&mut self, det: &mut Option<RaceDetector>) {
        let Some(d) = det.as_mut() else { return };
        for race in d.take_races() {
            self.note_race(race);
        }
    }

    fn note_race(&mut self, race: Race) {
        let key = (race.addr, race.prior_pc, race.pc);
        if self.race_keys.contains(&key) {
            return;
        }
        self.race_keys.push(key);
        let what = if race.write { "write" } else { "read" };
        self.races.push(Diagnostic::new(
            DiagKind::DataRace,
            race.pc,
            format!(
                "unordered {what} of shared word {:#x} (conflicting access at pc {})",
                race.addr, race.prior_pc
            ),
        ));
    }

    fn violations_word(&self, kernel: &Kernel) -> u32 {
        kernel.read_word(self.violations_addr).unwrap_or(0)
    }

    /// The recursive search. `at_dispatch` distinguishes the two decision
    /// point kinds; `index` numbers decision points along this path.
    ///
    /// The kernel is threaded through by mutable reference: each branch
    /// runs in place and is rewound afterwards — through the undo-log
    /// checkpoint when checkpoints are on (O(stores since the decision
    /// point)), through a saved clone otherwise. The final branch out of
    /// a decision point skips the rewind entirely: no sibling will need
    /// the parent state again, and whatever the branch leaves behind is
    /// rewound by an ancestor's restore (undo marks only decrease up the
    /// tree). Most decision points deep in the tree offer exactly one
    /// choice (the preemption budget is spent), so most nodes snapshot
    /// nothing at all.
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        &mut self,
        kernel: &mut Kernel,
        det: &mut Option<RaceDetector>,
        at_dispatch: bool,
        mut sleep: Vec<OpSig>,
        preemptions: u32,
        index: u64,
        path: &mut Schedule,
        hashes: &mut PathSet,
    ) {
        // Root-splitting: during the sequential prefix expansion, nodes
        // at the spawn depth are frozen as subtree tasks for the worker
        // pool instead of being explored. This check must come first —
        // the subtree explorer re-runs this node from scratch, and every
        // check below (cap, violation, cycle) must fire exactly once.
        if let Some(depth) = self.spawn_at {
            if index >= depth {
                self.marks.push(UnitMark {
                    schedules: self.schedules,
                    violations_len: self.violations.len(),
                    races_len: self.races.len(),
                });
                self.tasks.push(SubtreeTask {
                    kernel: kernel.clone(),
                    det: det.clone(),
                    at_dispatch,
                    sleep,
                    preemptions,
                    index,
                    path: path.clone(),
                    hashes: hashes.clone(),
                });
                return;
            }
        }
        if self.hit_cap {
            return;
        }
        if self.schedules >= self.config.max_schedules {
            self.hit_cap = true;
            return;
        }
        // Mutual exclusion is checked at every decision point: the guest
        // records violations in a dedicated word the moment its critical
        // section observes an intruder. The branch is truncated, but its
        // default continuation is first run out to harvest the companion
        // lost-update evidence (the same interleaving that breaks mutual
        // exclusion also drops an increment).
        if self.stop_on_violation && self.target.mutex_checked() && self.violations_word(kernel) > 0
        {
            self.schedules += 1;
            self.record(
                DiagKind::MutexViolation,
                "two threads were inside the critical section simultaneously \
                 (cs_owner changed under the owner)"
                    .to_string(),
                path,
            );
            if !self.has_violation(DiagKind::LostUpdate) {
                if let Some(counter) = self.counter_after_default_run(kernel) {
                    if counter != self.expected_count {
                        self.record(
                            DiagKind::LostUpdate,
                            format!(
                                "final counter is {counter}, expected {} — an increment was lost",
                                self.expected_count
                            ),
                            path,
                        );
                    }
                }
            }
            return;
        }
        if index >= self.config.max_visible_ops {
            self.schedules += 1;
            self.livelock_suspects += 1;
            self.record(
                DiagKind::LivelockSuspect,
                format!(
                    "no terminal state or state cycle within {} visible operations",
                    self.config.max_visible_ops
                ),
                path,
            );
            return;
        }
        let h = state_hash(kernel);
        if hashes.contains(h) {
            // An exact state repeat on this path: a spin under an unfair
            // schedule. The suffix explores nothing new.
            self.schedules += 1;
            self.cycles += 1;
            self.states_deduped += 1;
            sleep.clear();
            self.sig_pool.push(sleep);
            return;
        }
        hashes.insert(h);

        // Enumerate choices: the default first. The choice and sleep-set
        // buffers come from per-depth recycling pools — a decision point
        // is visited once per path through its ancestors, so fresh
        // allocations here add up to most of the explorer's heap
        // traffic.
        let mut choices = self.choice_pool.pop().unwrap_or_default();
        if at_dispatch {
            for u in kernel.ready_iter() {
                choices.push((Decision::Dispatch(u), thread_next_sig(kernel, u)));
            }
        } else {
            choices.push((Decision::Continue, current_visible_sig(kernel)));
            if preemptions < self.config.preemption_bound {
                for u in kernel.ready_iter() {
                    choices.push((Decision::Preempt(u), thread_next_sig(kernel, u)));
                }
            }
        }

        let mut done = self.sig_pool.pop().unwrap_or_default();
        // Every branch but the last snapshots the parent state and rewinds
        // to it afterwards; the last branch runs in place and leaves its
        // wake for an ancestor's rewind. The snapshot is an undo-log
        // checkpoint (cheap: registers, queues, an undo mark) when
        // checkpoints are on, a full kernel clone (dominated by the guest
        // memory image) when off.
        let last = choices.len().saturating_sub(1);
        for (i, (decision, sig)) in choices.iter().enumerate() {
            if self.hit_cap {
                break;
            }
            // Sleep-set pruning applies only to Continue: executing a
            // sleeping operation re-derives an interleaving already
            // covered (everything since it went to sleep was independent
            // of it). Preempt/Dispatch branches contain more than their
            // first operation, so they are never pruned.
            if matches!(decision, Decision::Continue) {
                if let Some(s @ OpSig::Mem { .. }) = sig {
                    if sleep.contains(s) {
                        self.pruned += 1;
                        continue;
                    }
                }
            }
            if i == last {
                self.branch(
                    kernel,
                    det,
                    *decision,
                    *sig,
                    &sleep,
                    &done,
                    preemptions,
                    index,
                    i == 0,
                    path,
                    hashes,
                );
            } else if self.use_checkpoints {
                let cp = match self.cp_pool.pop() {
                    Some(mut cp) => {
                        kernel.checkpoint_into(&mut cp);
                        cp
                    }
                    None => kernel.checkpoint(),
                };
                let det0 = self.save_detector(det);
                self.checkpoints += 1;
                self.snapshot_bytes += cp.approx_bytes();
                self.branch(
                    kernel,
                    det,
                    *decision,
                    *sig,
                    &sleep,
                    &done,
                    preemptions,
                    index,
                    i == 0,
                    path,
                    hashes,
                );
                self.undo_replayed += kernel.restore(&cp);
                self.cp_pool.push(cp);
                self.restore_detector(det, det0);
            } else {
                let kernel0 = kernel.clone();
                let det0 = det.clone();
                self.checkpoints += 1;
                self.snapshot_bytes += kernel_clone_bytes(&kernel0);
                self.branch(
                    kernel,
                    det,
                    *decision,
                    *sig,
                    &sleep,
                    &done,
                    preemptions,
                    index,
                    i == 0,
                    path,
                    hashes,
                );
                *kernel = kernel0;
                *det = det0;
            }
            if matches!(decision, Decision::Continue) {
                if let Some(s @ OpSig::Mem { .. }) = sig {
                    done.push(*s);
                }
            }
        }
        hashes.remove(h);
        choices.clear();
        self.choice_pool.push(choices);
        done.clear();
        self.sig_pool.push(done);
        sleep.clear();
        self.sig_pool.push(sleep);
    }

    /// One branch out of a decision point, run in place on `kernel`:
    /// applies the decision, advances to the next decision point, and
    /// recurses. The caller is responsible for rewinding `kernel`
    /// afterwards (or not, for the last sibling).
    #[allow(clippy::too_many_arguments)]
    fn branch(
        &mut self,
        kernel: &mut Kernel,
        det: &mut Option<RaceDetector>,
        decision: Decision,
        sig: Option<OpSig>,
        sleep: &[OpSig],
        done: &[OpSig],
        preemptions: u32,
        index: u64,
        is_default: bool,
        path: &mut Schedule,
        hashes: &mut PathSet,
    ) {
        let mut child_preemptions = preemptions;
        match decision {
            Decision::Continue => {
                // Execute the visible operation itself.
                match apply_step(kernel, det) {
                    StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                    terminal => {
                        self.drain_races(det);
                        self.on_step_terminal(terminal, kernel, path);
                        return;
                    }
                }
            }
            Decision::Preempt(u) => {
                child_preemptions += 1;
                // Preemption is the only abort trigger under the oracle
                // (the timer is neutralized); sampling the stat delta
                // around it counts abort dispatches exactly once per
                // explored branch, immune to checkpoint rewinds.
                let aborts_before = kernel.stats().rseq_aborts;
                kernel.preempt_current();
                self.rseq_aborts += kernel.stats().rseq_aborts - aborts_before;
                kernel.schedule_next(u);
                if let terminal @ (StepOutcome::Completed
                | StepOutcome::Halted { .. }
                | StepOutcome::Deadlock { .. }
                | StepOutcome::Fault { .. }) = apply_step(kernel, det)
                {
                    self.drain_races(det);
                    self.on_step_terminal(terminal, kernel, path);
                    return;
                }
            }
            Decision::Dispatch(u) => {
                kernel.schedule_next(u);
                if let terminal @ (StepOutcome::Completed
                | StepOutcome::Halted { .. }
                | StepOutcome::Deadlock { .. }
                | StepOutcome::Fault { .. }) = apply_step(kernel, det)
                {
                    self.drain_races(det);
                    self.on_step_terminal(terminal, kernel, path);
                    return;
                }
            }
        }
        self.drain_races(det);
        // The sleep set handed to the child: everything still
        // independent of the operation this branch executes first.
        let mut child_sleep = self.sig_pool.pop().unwrap_or_default();
        match (decision, sig) {
            (Decision::Continue, Some(op)) => child_sleep.extend(
                sleep
                    .iter()
                    .chain(done.iter())
                    .copied()
                    .filter(|s| s.independent(op)),
            ),
            (Decision::Continue, None) => {}
            // Preempt/Dispatch execute only thread-private bookkeeping
            // before the next decision point; the sleep set carries
            // over and keeps being filtered as operations execute.
            _ => child_sleep.extend(sleep.iter().chain(done.iter()).copied()),
        }

        // Record the decision if it deviates from the default
        // (Continue, or dispatching the queue front).
        if !is_default {
            path.decisions.push((index, decision));
        }
        let point = advance(kernel, det);
        self.drain_races(det);
        match point {
            Point::Terminal(term) => {
                child_sleep.clear();
                self.sig_pool.push(child_sleep);
                self.on_terminal(term, kernel, path);
            }
            Point::Boundary => self.dfs(
                kernel,
                det,
                false,
                child_sleep,
                child_preemptions,
                index + 1,
                path,
                hashes,
            ),
            Point::FreeDispatch => self.dfs(
                kernel,
                det,
                true,
                child_sleep,
                child_preemptions,
                index + 1,
                path,
                hashes,
            ),
        }
        if !is_default {
            path.decisions.pop();
        }
    }

    fn on_step_terminal(&mut self, outcome: StepOutcome, kernel: &Kernel, path: &Schedule) {
        let term = match outcome {
            StepOutcome::Completed => Term::Completed,
            StepOutcome::Halted { thread } => Term::Fault(format!("{thread} executed halt")),
            StepOutcome::Deadlock { blocked } => Term::Deadlock(blocked),
            StepOutcome::Fault { thread, fault } => Term::Fault(format!("{thread}: {fault:?}")),
            StepOutcome::Ran { .. } | StepOutcome::Idled => return,
        };
        self.on_terminal(term, kernel, path);
    }

    fn on_terminal(&mut self, term: Term, kernel: &Kernel, path: &Schedule) {
        self.schedules += 1;
        match term {
            Term::Completed => {
                if self.target.mutex_checked() && self.violations_word(kernel) > 0 {
                    self.record(
                        DiagKind::MutexViolation,
                        "two threads were inside the critical section simultaneously \
                         (cs_owner changed under the owner)"
                            .to_string(),
                        path,
                    );
                }
                let counter = kernel.read_word(self.counter_addr).unwrap_or(0);
                if counter != self.expected_count {
                    self.record(
                        DiagKind::LostUpdate,
                        format!(
                            "final counter is {counter}, expected {} — an increment was lost",
                            self.expected_count
                        ),
                        path,
                    );
                }
            }
            Term::Deadlock(blocked) => {
                let list: Vec<String> = blocked.iter().map(|t| t.to_string()).collect();
                self.record(
                    DiagKind::DeadlockFound,
                    format!("no runnable thread; blocked: {}", list.join(", ")),
                    path,
                );
            }
            Term::Halted => {
                self.record(
                    DiagKind::GuestFault,
                    "guest executed halt outside the kernel".to_string(),
                    path,
                );
            }
            Term::Fault(message) => {
                self.record(DiagKind::GuestFault, message, path);
            }
            Term::Stalled => {
                self.livelock_suspects += 1;
                self.record(
                    DiagKind::LivelockSuspect,
                    format!("more than {INVISIBLE_CAP} instructions without a visible operation"),
                    path,
                );
            }
        }
    }

    fn has_violation(&self, kind: DiagKind) -> bool {
        self.violations.iter().any(|v| v.diag.kind == kind)
    }

    /// Runs the default continuation (no further non-default decisions)
    /// from `kernel` to its terminal state and returns the final counter,
    /// or `None` if it does not complete cleanly.
    fn counter_after_default_run(&mut self, kernel: &Kernel) -> Option<u32> {
        let mut k = kernel.clone();
        let mut det = None;
        let mut hashes = PathSet::new();
        let mut steps = 0u64;
        loop {
            match advance(&mut k, &mut det) {
                Point::Terminal(Term::Completed) => return k.read_word(self.counter_addr).ok(),
                Point::Terminal(_) => return None,
                Point::Boundary | Point::FreeDispatch => {
                    steps += 1;
                    if steps > self.config.max_visible_ops.saturating_mul(4) {
                        return None;
                    }
                    let h = state_hash(&k);
                    if hashes.contains(h) {
                        self.states_deduped += 1;
                        return None;
                    }
                    hashes.insert(h);
                    match apply_step(&mut k, &mut det) {
                        StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                        StepOutcome::Completed => return k.read_word(self.counter_addr).ok(),
                        _ => return None,
                    }
                }
            }
        }
    }

    /// Records the first violation of each kind, with a minimized
    /// replay-verified schedule.
    fn record(&mut self, kind: DiagKind, message: String, path: &Schedule) {
        if self.has_violation(kind) {
            return;
        }
        let schedule = self.minimize_schedule(kind, path.clone());
        self.violations.push(Violation {
            diag: Diagnostic::new(kind, 0, message),
            schedule,
            found_after: self.schedules,
        });
    }

    /// Greedy minimization: drop decisions whose removal preserves the
    /// violation under replay. If even the original schedule does not
    /// replay (e.g. a livelock suspect that needs the exact exploration
    /// state), it is returned untouched.
    fn minimize_schedule(&mut self, kind: DiagKind, original: Schedule) -> Schedule {
        if !self.replay(&original).contains(&kind) {
            return original;
        }
        let mut current = original;
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i < current.len() {
                let candidate = current.without(i);
                if self.replay(&candidate).contains(&kind) {
                    current = candidate;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        current
    }

    /// Deterministically replays a schedule from a fresh boot, applying
    /// recorded decisions at their decision points and defaults
    /// everywhere else, and returns every violation kind the terminal
    /// state exhibits. Public behavior is identical to exploration —
    /// same kernel, same stepping — minus the search.
    fn replay(&mut self, schedule: &Schedule) -> Vec<DiagKind> {
        let mut kernel = self.boot(false);
        let mut det = None;
        let mut hashes = PathSet::new();
        let mut index = 0u64;
        loop {
            match advance(&mut kernel, &mut det) {
                Point::Terminal(term) => return self.terminal_kinds(term, &kernel),
                Point::Boundary | Point::FreeDispatch => {
                    if index >= self.config.max_visible_ops.saturating_mul(4) {
                        return vec![DiagKind::LivelockSuspect];
                    }
                    let h = state_hash(&kernel);
                    if hashes.contains(h) {
                        self.states_deduped += 1;
                        return Vec::new(); // spin cycle under defaults: benign
                    }
                    hashes.insert(h);
                    match schedule.decision_at(index) {
                        Some(Decision::Preempt(u)) => {
                            if kernel.preempt_current() {
                                kernel.schedule_next(u);
                            }
                        }
                        Some(Decision::Dispatch(u)) => {
                            kernel.schedule_next(u);
                        }
                        Some(Decision::Continue) | None => {}
                    }
                    index += 1;
                    match apply_step(&mut kernel, &mut det) {
                        StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                        StepOutcome::Completed => {
                            return self.terminal_kinds(Term::Completed, &kernel)
                        }
                        StepOutcome::Halted { .. } => {
                            return self.terminal_kinds(Term::Halted, &kernel)
                        }
                        StepOutcome::Deadlock { blocked } => {
                            return self.terminal_kinds(Term::Deadlock(blocked), &kernel)
                        }
                        StepOutcome::Fault { .. } => {
                            return self.terminal_kinds(Term::Fault(String::new()), &kernel)
                        }
                    }
                }
            }
        }
    }

    /// The violation kinds a terminal state exhibits.
    fn terminal_kinds(&self, term: Term, kernel: &Kernel) -> Vec<DiagKind> {
        match term {
            Term::Completed => {
                let mut kinds = Vec::new();
                if self.target.mutex_checked() && self.violations_word(kernel) > 0 {
                    kinds.push(DiagKind::MutexViolation);
                }
                if kernel.read_word(self.counter_addr).unwrap_or(0) != self.expected_count {
                    kinds.push(DiagKind::LostUpdate);
                }
                kinds
            }
            Term::Deadlock(_) => vec![DiagKind::DeadlockFound],
            Term::Halted | Term::Fault(_) => vec![DiagKind::GuestFault],
            Term::Stalled => vec![DiagKind::LivelockSuspect],
        }
    }

    pub(crate) fn into_report(self) -> TargetReport {
        TargetReport {
            target: self.target,
            schedules: self.schedules,
            pruned: self.pruned,
            cycles: self.cycles,
            livelock_suspects: self.livelock_suspects,
            hit_schedule_cap: self.hit_cap,
            violations: self.violations,
            races: self.races,
            checkpoints: self.checkpoints,
            undo_replayed: self.undo_replayed,
            snapshot_bytes: self.snapshot_bytes,
            states_deduped: self.states_deduped,
            rseq_aborts: self.rseq_aborts,
        }
    }

    /// Resumes the search from a frozen subtree task and packages the
    /// results for the merge. Run on a *fresh* explorer (same target and
    /// config), typically on a worker thread.
    fn run_subtree(mut self, task: SubtreeTask) -> SubtreeOutcome {
        let SubtreeTask {
            mut kernel,
            mut det,
            at_dispatch,
            sleep,
            preemptions,
            index,
            mut path,
            mut hashes,
        } = task;
        self.dfs(
            &mut kernel,
            &mut det,
            at_dispatch,
            sleep,
            preemptions,
            index,
            &mut path,
            &mut hashes,
        );
        SubtreeOutcome {
            schedules: self.schedules,
            pruned: self.pruned,
            cycles: self.cycles,
            livelock_suspects: self.livelock_suspects,
            hit_cap: self.hit_cap,
            violations: self.violations,
            race_keys: self.race_keys,
            races: self.races,
            checkpoints: self.checkpoints,
            undo_replayed: self.undo_replayed,
            snapshot_bytes: self.snapshot_bytes,
            states_deduped: self.states_deduped,
            rseq_aborts: self.rseq_aborts,
        }
    }
}

/// The sequential prefix expansion of a split search: runs the DFS down
/// to [`CheckConfig::split_depth`], freezing each node at that depth as a
/// [`SubtreeTask`]. Returns the expansion explorer (holding the shallow
/// terminals, violations, and counters found on the way) plus the frozen
/// tasks and their spawn-order marks.
fn expand(
    target: ModelTarget,
    config: &CheckConfig,
) -> (Explorer<'_>, Vec<SubtreeTask>, Vec<UnitMark>) {
    let mut explorer = Explorer::new(target, config);
    explorer.spawn_at = Some(u64::from(config.split_depth));
    explorer.run();
    let tasks = std::mem::take(&mut explorer.tasks);
    let marks = std::mem::take(&mut explorer.marks);
    (explorer, tasks, marks)
}

/// Splices subtree outcomes back into the expansion's DFS order,
/// reproducing exactly what one sequential search would have reported:
/// totals are sums; violations keep only the first of each kind *in
/// global DFS order* with `found_after` re-based to the global schedule
/// numbering; races dedup by site key in the same order.
fn merge(
    expansion: Explorer<'_>,
    marks: &[UnitMark],
    outcomes: Vec<SubtreeOutcome>,
) -> TargetReport {
    let mut violations: Vec<Violation> = Vec::new();
    let mut race_keys: Vec<(u32, u32, u32)> = Vec::new();
    let mut races: Vec<Diagnostic> = Vec::new();
    let push_violation = |violations: &mut Vec<Violation>, v: Violation| {
        if !violations.iter().any(|seen| seen.diag.kind == v.diag.kind) {
            violations.push(v);
        }
    };
    let mut push_race = |races: &mut Vec<Diagnostic>, key: (u32, u32, u32), race: Diagnostic| {
        if !race_keys.contains(&key) {
            race_keys.push(key);
            races.push(race);
        }
    };

    // Global DFS order interleaves expansion events and subtrees: the
    // task with mark `m` sits after the expansion's first `m` terminals
    // and before all later ones, so walk the expansion's violation/race
    // lists in lockstep with the task list. `sub_schedules` accumulates
    // the schedule counts of already-merged subtrees — the re-basing
    // offset for every later event.
    let mut sub_schedules = 0u64;
    let mut vi = 0;
    let mut ri = 0;
    for (mark, outcome) in marks.iter().zip(&outcomes) {
        while vi < mark.violations_len {
            let mut v = expansion.violations[vi].clone();
            v.found_after += sub_schedules;
            push_violation(&mut violations, v);
            vi += 1;
        }
        while ri < mark.races_len {
            push_race(
                &mut races,
                expansion.race_keys[ri],
                expansion.races[ri].clone(),
            );
            ri += 1;
        }
        for v in &outcome.violations {
            let mut v = v.clone();
            v.found_after += mark.schedules + sub_schedules;
            push_violation(&mut violations, v);
        }
        for (key, race) in outcome.race_keys.iter().zip(&outcome.races) {
            push_race(&mut races, *key, race.clone());
        }
        sub_schedules += outcome.schedules;
    }
    while vi < expansion.violations.len() {
        let mut v = expansion.violations[vi].clone();
        v.found_after += sub_schedules;
        push_violation(&mut violations, v);
        vi += 1;
    }
    while ri < expansion.races.len() {
        push_race(
            &mut races,
            expansion.race_keys[ri],
            expansion.races[ri].clone(),
        );
        ri += 1;
    }

    let sum = |f: fn(&SubtreeOutcome) -> u64| outcomes.iter().map(f).sum::<u64>();
    TargetReport {
        target: expansion.target,
        schedules: expansion.schedules + sum(|o| o.schedules),
        pruned: expansion.pruned + sum(|o| o.pruned),
        cycles: expansion.cycles + sum(|o| o.cycles),
        livelock_suspects: expansion.livelock_suspects + sum(|o| o.livelock_suspects),
        hit_schedule_cap: false,
        violations,
        races,
        checkpoints: expansion.checkpoints + sum(|o| o.checkpoints),
        undo_replayed: expansion.undo_replayed + sum(|o| o.undo_replayed),
        snapshot_bytes: expansion.snapshot_bytes + sum(|o| o.snapshot_bytes),
        states_deduped: expansion.states_deduped + sum(|o| o.states_deduped),
        rseq_aborts: expansion.rseq_aborts + sum(|o| o.rseq_aborts),
    }
}

/// Exhaustively checks one target under `config`.
pub fn check_target(target: ModelTarget, config: &CheckConfig) -> TargetReport {
    let mut explorer = Explorer::new(target, config);
    explorer.run();
    explorer.into_report()
}

/// One deduplicated race site found by the happens-before sanitizer:
/// two unordered conflicting plain accesses to `addr`, the earlier at
/// `prior_pc`, the later at `pc`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RaceSite {
    /// The shared data word both accesses touched.
    pub addr: u32,
    /// PC of the earlier access of the unordered pair.
    pub prior_pc: u32,
    /// PC of the access that completed the race.
    pub pc: u32,
}

/// The happens-before sanitizer's view of one target, exported for the
/// static↔dynamic differential harness in `ras-analyze`'s test suite.
#[derive(Debug, Clone)]
pub struct RaceReport {
    /// The explored target.
    pub target: ModelTarget,
    /// Maximal schedules explored.
    pub schedules: u64,
    /// The schedule cap was hit; the race set may be incomplete.
    pub hit_schedule_cap: bool,
    /// Every distinct race site, in discovery (DFS) order.
    pub races: Vec<RaceSite>,
    /// The restartable ranges the detector treated as protected (empty
    /// under the rollback ablation): accesses from these pcs classify
    /// their words as synchronization, never as race participants — the
    /// dynamic mirror of the static lockset's `Sync` verdict.
    pub protected: Vec<SeqRange>,
}

impl RaceReport {
    /// The distinct shared words involved in at least one race, sorted.
    pub fn raced_words(&self) -> Vec<u32> {
        let mut words: Vec<u32> = self.races.iter().map(|r| r.addr).collect();
        words.sort_unstable();
        words.dedup();
        words
    }
}

/// Explores `target` purely for its race set and returns every race site
/// the happens-before sanitizer found.
///
/// Unlike [`check_target`], branches are *not* truncated at the first
/// recorded mutual-exclusion violation: on the ablated target the
/// post-violation suffixes are where the guest's violation tally becomes
/// a second-thread-shared word, and cutting them would hide exactly the
/// races the static lockset pass predicts. On safe targets the two
/// entry points explore identical trees (the violation word never
/// rises), so their race sets agree by construction.
pub fn race_report(target: ModelTarget, config: &CheckConfig) -> RaceReport {
    let mut explorer = Explorer::new(target, config);
    explorer.stop_on_violation = false;
    explorer.run();
    let races = explorer
        .race_keys
        .iter()
        .map(|&(addr, prior_pc, pc)| RaceSite { addr, prior_pc, pc })
        .collect();
    RaceReport {
        target,
        schedules: explorer.schedules,
        hit_schedule_cap: explorer.hit_cap,
        races,
        protected: explorer.protected_ranges(),
    }
}

/// [`check_target`] with deterministic root-splitting: the first
/// [`CheckConfig::split_depth`] decision levels are expanded
/// sequentially, then the disjoint subtrees hanging off them fan out
/// across `workers` threads and their results are merged back in DFS
/// order. The report is byte-identical to a sequential [`check_target`]
/// for any worker count — splitting is invisible to everything but wall
/// time.
///
/// Whenever the schedule cap interferes (a subtree alone or the merged
/// total reaching [`CheckConfig::max_schedules`] — a cap hit mid-search
/// truncates in a split-dependent way), the function falls back to one
/// full sequential search, preserving exactness.
pub fn check_target_split(
    target: ModelTarget,
    config: &CheckConfig,
    workers: usize,
) -> TargetReport {
    if config.split_depth == 0 || workers <= 1 {
        return check_target(target, config);
    }
    let (expansion, tasks, marks) = expand(target, config);
    if expansion.hit_cap {
        return check_target(target, config);
    }
    let outcomes = ras_par::parallel_map_owned_with(workers, tasks, |task| {
        Explorer::new(target, config).run_subtree(task)
    });
    let total = expansion.schedules + outcomes.iter().map(|o| o.schedules).sum::<u64>();
    if outcomes.iter().any(|o| o.hit_cap) || total >= config.max_schedules {
        return check_target(target, config);
    }
    merge(expansion, &marks, outcomes)
}

/// Checks many targets with one shared worker pool: expansions run
/// sequentially (they are shallow), then every frozen subtree of every
/// target fans out over a single `workers`-wide pool, and each target's
/// results merge back in DFS order. Reports are byte-identical to
/// sequential [`check_target`] runs in the given order.
pub fn check_targets_split(
    targets: &[ModelTarget],
    config: &CheckConfig,
    workers: usize,
) -> Vec<TargetReport> {
    if config.split_depth == 0 || workers <= 1 {
        return targets.iter().map(|&t| check_target(t, config)).collect();
    }
    let mut expansions = Vec::new();
    let mut flat: Vec<(usize, SubtreeTask)> = Vec::new();
    for (i, &target) in targets.iter().enumerate() {
        let (expansion, tasks, marks) = expand(target, config);
        flat.extend(tasks.into_iter().map(|task| (i, task)));
        expansions.push((expansion, marks));
    }
    let outcomes = ras_par::parallel_map_owned_with(workers, flat, |(i, task)| {
        (i, Explorer::new(targets[i], config).run_subtree(task))
    });
    let mut per_target: Vec<Vec<SubtreeOutcome>> = targets.iter().map(|_| Vec::new()).collect();
    for (i, outcome) in outcomes {
        per_target[i].push(outcome);
    }
    expansions
        .into_iter()
        .zip(per_target)
        .zip(targets)
        .map(|(((expansion, marks), outcomes), &target)| {
            let total = expansion.schedules + outcomes.iter().map(|o| o.schedules).sum::<u64>();
            if expansion.hit_cap
                || outcomes.iter().any(|o| o.hit_cap)
                || total >= config.max_schedules
            {
                check_target(target, config)
            } else {
                merge(expansion, &marks, outcomes)
            }
        })
        .collect()
}

/// Replays a counterexample schedule from a fresh boot with full event
/// recording and returns the captured timeline plus the target CPU's
/// clock rate in MHz (what [`ras_obs::chrome_trace`] needs to convert
/// cycles to microseconds). Stepping is identical to exploration, so the
/// trace shows exactly the interleaving the violation needs — every
/// dispatch, forced preemption, and rollback as timestamped events.
pub fn counterexample_trace(
    target: ModelTarget,
    config: &CheckConfig,
    schedule: &Schedule,
) -> (Vec<ras_obs::TimedObsEvent>, f64) {
    let mhz = target.profile().mhz();
    let explorer = Explorer::new(target, config);
    let mut kernel = explorer.boot(false);
    kernel.enable_recording(true);
    let mut det = None;
    let mut index = 0u64;
    loop {
        match advance(&mut kernel, &mut det) {
            Point::Terminal(_) => break,
            Point::Boundary | Point::FreeDispatch => {
                if index >= config.max_visible_ops.saturating_mul(4) {
                    break;
                }
                match schedule.decision_at(index) {
                    Some(Decision::Preempt(u)) => {
                        if kernel.preempt_current() {
                            kernel.schedule_next(u);
                        }
                    }
                    Some(Decision::Dispatch(u)) => {
                        kernel.schedule_next(u);
                    }
                    Some(Decision::Continue) | None => {}
                }
                index += 1;
                match apply_step(&mut kernel, &mut det) {
                    StepOutcome::Ran { .. } | StepOutcome::Idled => {}
                    _ => break,
                }
            }
        }
    }
    let events = kernel
        .take_recording()
        .map(ras_obs::Recording::into_events)
        .unwrap_or_default();
    (events, mhz)
}

#[cfg(test)]
mod tests {
    use super::thread_state_words;
    use ras_kernel::ThreadState;

    /// The regression the split hashing fixes: the old packing
    /// `5 | (until << 8)` shifted the deadline's top 8 bits out of the
    /// word, so deadlines `1 << 56` and `0` hashed identically.
    #[test]
    fn sleeping_deadlines_differing_in_top_bits_do_not_alias() {
        let old_packing = |until: u64| 5 | (until << 8);
        assert_eq!(
            old_packing(1 << 56),
            old_packing(0),
            "the old packing really did alias these deadlines"
        );
        let deadlines = [0u64, 1, 1 << 8, 1 << 55, 1 << 56, (1 << 56) | 1, u64::MAX];
        for (i, &a) in deadlines.iter().enumerate() {
            for &b in &deadlines[i + 1..] {
                assert_ne!(
                    thread_state_words(&ThreadState::Sleeping { until: a }),
                    thread_state_words(&ThreadState::Sleeping { until: b }),
                    "deadlines {a:#x} and {b:#x} must hash distinctly"
                );
            }
        }
    }

    /// Distinct state variants never share (discriminant, payload) words,
    /// even when payloads collide numerically.
    #[test]
    fn thread_state_discriminants_are_disjoint() {
        use ras_kernel::ThreadId;
        let states = [
            ThreadState::Ready,
            ThreadState::Running,
            ThreadState::Blocked { addr: 7 },
            ThreadState::Joining {
                target: ThreadId(7),
            },
            ThreadState::Sleeping { until: 7 },
            ThreadState::Exited,
        ];
        for (i, a) in states.iter().enumerate() {
            for b in &states[i + 1..] {
                assert_ne!(thread_state_words(a), thread_state_words(b));
            }
        }
    }
}
