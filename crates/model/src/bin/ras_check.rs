//! `ras-check` — exhaustive preemption-point model checker CLI.
//!
//! Usage: `ras-check [options]`
//!
//! Options:
//!
//! * `--bound N` — preemption bound per schedule (default 2)
//! * `--depth N` — visible-operation depth bound (default 400)
//! * `--schedules N` — schedule cap per target (default 100000)
//! * `--workers N` — worker threads in the model workload (default 2)
//! * `--iterations N` — critical sections per worker (default 1)
//! * `--engine E` — machine engine for the explored kernels, `interp`
//!   (default) or `translated`; reports are byte-identical either way
//!   because oracle stepping always deoptimizes — the flag lets CI prove
//!   that equivalence end to end
//! * `--target ID` — only check targets whose id contains `ID`
//!   (repeatable); e.g. `--target ras-inline`
//! * `--smoke` — quick subset for CI: one software target, one hardware
//!   target, the rseq target, and the ablation, with a reduced schedule
//!   cap
//! * `--json` — machine-readable output
//! * `--trace-out PATH` — replay the first counterexample found and write
//!   it as a Chrome/Perfetto trace (load at `ui.perfetto.dev`); for an
//!   expected ablation refutation this shows the exact preemption that
//!   loses the update
//!
//! Exit codes: `0` every target matched its expectation (safe targets
//! verified, the ablation refuted), `1` some target did not, `2` usage
//! error.

use std::process::ExitCode;

use ras_diag::Diagnostic;
use ras_machine::EngineKind;
use ras_model::{check_target, CheckConfig, ModelTarget, TargetReport};

struct Options {
    config: CheckConfig,
    filters: Vec<String>,
    smoke: bool,
    json: bool,
    trace_out: Option<String>,
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let mut opts = Options {
        config: CheckConfig::default(),
        filters: Vec::new(),
        smoke: false,
        json: false,
        trace_out: None,
    };
    args.next(); // program name
    while let Some(arg) = args.next() {
        let num = |what: &str, args: &mut std::env::Args| -> Result<u64, String> {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))?
                .parse::<u64>()
                .map_err(|e| format!("bad value for {what}: {e}"))
        };
        match arg.as_str() {
            "--bound" => opts.config.preemption_bound = num("--bound", &mut args)? as u32,
            "--depth" => opts.config.max_visible_ops = num("--depth", &mut args)?,
            "--schedules" => opts.config.max_schedules = num("--schedules", &mut args)?,
            "--workers" => opts.config.workers = num("--workers", &mut args)? as usize,
            "--iterations" => opts.config.iterations = num("--iterations", &mut args)? as u32,
            "--engine" => {
                let value = args.next().ok_or("--engine requires a value")?;
                opts.config.engine = EngineKind::parse(&value).ok_or_else(|| {
                    format!("bad value for --engine: {value} (want interp or translated)")
                })?;
            }
            "--target" => opts
                .filters
                .push(args.next().ok_or("--target requires a value")?),
            "--smoke" => opts.smoke = true,
            "--json" => opts.json = true,
            "--trace-out" => {
                opts.trace_out = Some(args.next().ok_or("--trace-out requires a value")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(opts)
}

fn usage() {
    eprintln!(
        "usage: ras-check [--bound N] [--depth N] [--schedules N] [--workers N] \
         [--iterations N] [--engine interp|translated] [--target ID]... [--smoke] \
         [--json] [--trace-out PATH]"
    );
}

fn selected_targets(opts: &Options) -> Vec<ModelTarget> {
    let mut targets = ModelTarget::all();
    if opts.smoke {
        targets.retain(|t| {
            matches!(
                t.id().as_str(),
                "ras-inline+tas" | "hardware-bit+tas" | "rseq+tas" | "ras-inline+tas+none"
            )
        });
    }
    if !opts.filters.is_empty() {
        targets.retain(|t| {
            let id = t.id();
            opts.filters.iter().any(|f| id.contains(f.as_str()))
        });
    }
    targets
}

fn print_report(report: &TargetReport) {
    let verdict = if report.ok() {
        if report.target.expects_violations() {
            "refuted (as expected)"
        } else {
            "verified"
        }
    } else {
        "UNEXPECTED"
    };
    println!(
        "{:<24} schedules {:>6}  pruned {:>6}  cycles {:>5}  {}",
        report.target.id(),
        report.schedules,
        report.pruned,
        report.cycles,
        verdict
    );
    println!(
        "  checkpoints {}  undo entries replayed {}  snapshot bytes {}  states deduped {}",
        report.checkpoints, report.undo_replayed, report.snapshot_bytes, report.states_deduped
    );
    if report.rseq_aborts > 0 {
        println!(
            "  rseq aborts dispatched during exploration: {}",
            report.rseq_aborts
        );
    }
    if report.hit_schedule_cap {
        println!("  note: schedule cap hit, exploration incomplete");
    }
    if report.livelock_suspects > 0 {
        println!(
            "  warning: {} livelock-suspect branch(es) hit the depth bound",
            report.livelock_suspects
        );
    }
    for race in &report.races {
        println!("  {race}");
    }
    for v in &report.violations {
        println!("  {} (found after {} schedules)", v.diag, v.found_after);
        println!("  minimized replayable schedule:");
        println!("{}", v.schedule.render());
    }
}

fn json_escape_list(diags: &[Diagnostic]) -> String {
    ras_diag::render_json(diags)
}

fn print_json(reports: &[TargetReport]) {
    let mut out = String::from("[\n");
    for (i, r) in reports.iter().enumerate() {
        let viol_diags: Vec<Diagnostic> = r.violations.iter().map(|v| v.diag.clone()).collect();
        out.push_str(&format!(
            "  {{\"target\": \"{}\", \"ok\": {}, \"expects_violations\": {}, \
             \"schedules\": {}, \"pruned\": {}, \"cycles\": {}, \
             \"livelock_suspects\": {}, \"hit_schedule_cap\": {}, \
             \"checkpoints\": {}, \"undo_replayed\": {}, \
             \"snapshot_bytes\": {}, \"states_deduped\": {}, \
             \"rseq_aborts\": {}, \"violations\": {}, \"races\": {}}}",
            r.target.id(),
            r.ok(),
            r.target.expects_violations(),
            r.schedules,
            r.pruned,
            r.cycles,
            r.livelock_suspects,
            r.hit_schedule_cap,
            r.checkpoints,
            r.undo_replayed,
            r.snapshot_bytes,
            r.states_deduped,
            r.rseq_aborts,
            json_escape_list(&viol_diags).replace('\n', ""),
            json_escape_list(&r.races).replace('\n', ""),
        ));
        if i + 1 < reports.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    println!("{out}");
}

fn main() -> ExitCode {
    let mut opts = match parse_args(std::env::args()) {
        Ok(opts) => opts,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("ras-check: {msg}");
            }
            usage();
            return ExitCode::from(2);
        }
    };
    if opts.smoke && opts.config.max_schedules == CheckConfig::default().max_schedules {
        opts.config.max_schedules = 20_000;
    }
    let targets = selected_targets(&opts);
    if targets.is_empty() {
        eprintln!("ras-check: no targets match the given filters");
        return ExitCode::from(2);
    }
    let mut reports = Vec::new();
    for target in targets {
        reports.push(check_target(target, &opts.config));
    }
    if opts.json {
        print_json(&reports);
    } else {
        for r in &reports {
            print_report(r);
        }
        let total: u64 = reports.iter().map(|r| r.schedules).sum();
        let pruned: u64 = reports.iter().map(|r| r.pruned).sum();
        println!(
            "checked {} target(s): {} schedules explored, {} branches pruned by POR",
            reports.len(),
            total,
            pruned
        );
        let counters = ras_obs::CheckpointCounters {
            checkpoints: reports.iter().map(|r| r.checkpoints).sum(),
            undo_replayed: reports.iter().map(|r| r.undo_replayed).sum(),
            snapshot_bytes: reports.iter().map(|r| r.snapshot_bytes).sum(),
            states_deduped: reports.iter().map(|r| r.states_deduped).sum(),
        };
        print!("{}", counters.render());
    }
    if let Some(path) = &opts.trace_out {
        let found = reports.iter().find_map(|r| {
            r.violations
                .first()
                .map(|v| (r.target, v.diag.kind.code(), &v.schedule))
        });
        match found {
            Some((target, code, schedule)) => {
                let (events, mhz) = ras_model::counterexample_trace(target, &opts.config, schedule);
                let name = format!("{} counterexample: {}", target.id(), code);
                let trace = ras_obs::chrome_trace(&events, mhz, &name);
                if let Err(e) = std::fs::write(path, trace) {
                    eprintln!("ras-check: writing {path}: {e}");
                    return ExitCode::from(2);
                }
                eprintln!("ras-check: counterexample trace written to {path}");
            }
            None => eprintln!("ras-check: no counterexample found, {path} not written"),
        }
    }
    if reports.iter().all(TargetReport::ok) {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
