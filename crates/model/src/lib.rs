//! `ras-model` — exhaustive preemption-point model checking for the
//! uniprocessor mutual-exclusion mechanisms.
//!
//! The paper's central claim is a *safety* claim: a restartable atomic
//! sequence behaves atomically with respect to involuntary suspension,
//! for every possible preemption point. Timer-driven simulation (the
//! `ras-sim` experiments) samples that space; this crate enumerates it.
//! The kernel's timer is replaced by an explicit scheduling oracle
//! ([`ras_kernel::Decision`]) and a depth-first search drives the
//! deterministic simulator through every distinguishable interleaving of
//! shared-memory operations, under a preemption bound.
//!
//! For each (mechanism × TAS flavor) target the checker verifies, over
//! every explored schedule:
//!
//! * **mutual exclusion** — no two threads inside the critical section
//!   (witnessed by the guest itself through an ownership cross-check);
//! * **lost-update freedom** — the shared counter equals the number of
//!   increments performed;
//! * **deadlock freedom** — no reachable state where all threads block;
//! * **livelock** — exact state cycles (benign spins under unfair
//!   schedules) are separated from genuine non-progress.
//!
//! The ablated target — the inline sequence with the kernel's rollback
//! strategy stripped — must *fail*: the checker proves the kernel support
//! is load-bearing by exhibiting a minimized, replayable preemption
//! schedule that loses an update, which is exactly the hazard of Figure 3
//! of the paper.
//!
//! Alongside the search, a vector-clock happens-before sanitizer
//! ([`hb::RaceDetector`]) checks every explored execution for unordered
//! conflicting plain accesses, treating restartable-sequence words as
//! synchronization objects.
//!
//! Entry points: [`model_check`] (the full matrix), [`check_target`]
//! (one configuration), and the `ras-check` binary.

pub mod explore;
pub mod hb;
pub mod schedule;

pub use explore::{
    check_target, counterexample_trace, CheckConfig, ModelTarget, TargetReport, Violation,
};
pub use hb::{Race, RaceDetector};
pub use schedule::{minimize, Schedule};

/// The verdict for the whole target matrix.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// One report per checked target.
    pub targets: Vec<TargetReport>,
}

impl CheckReport {
    /// Whether every target matched its expectation (safe targets clean,
    /// the ablation refuted).
    pub fn ok(&self) -> bool {
        !self.targets.is_empty() && self.targets.iter().all(TargetReport::ok)
    }

    /// Total schedules explored across all targets.
    pub fn total_schedules(&self) -> u64 {
        self.targets.iter().map(|t| t.schedules).sum()
    }

    /// Total branches pruned by the sleep-set reduction.
    pub fn total_pruned(&self) -> u64 {
        self.targets.iter().map(|t| t.pruned).sum()
    }
}

/// Checks every target in [`ModelTarget::all`] under `config`.
///
/// Targets are independent explorations (each boots its own kernel and
/// owns its own search state), so they fan out across a worker pool;
/// [`ras_par::parallel_map`] returns them in [`ModelTarget::all`] order,
/// keeping the report — including its aggregate schedule and prune
/// counts — byte-identical to a serial run.
pub fn model_check(config: &CheckConfig) -> CheckReport {
    let targets = ModelTarget::all();
    CheckReport {
        targets: ras_par::parallel_map(&targets, |&t| check_target(t, config)),
    }
}
