//! `ras-model` — exhaustive preemption-point model checking for the
//! uniprocessor mutual-exclusion mechanisms.
//!
//! The paper's central claim is a *safety* claim: a restartable atomic
//! sequence behaves atomically with respect to involuntary suspension,
//! for every possible preemption point. Timer-driven simulation (the
//! `ras-sim` experiments) samples that space; this crate enumerates it.
//! The kernel's timer is replaced by an explicit scheduling oracle
//! ([`ras_kernel::Decision`]) and a depth-first search drives the
//! deterministic simulator through every distinguishable interleaving of
//! shared-memory operations, under a preemption bound.
//!
//! For each (mechanism × TAS flavor) target the checker verifies, over
//! every explored schedule:
//!
//! * **mutual exclusion** — no two threads inside the critical section
//!   (witnessed by the guest itself through an ownership cross-check);
//! * **lost-update freedom** — the shared counter equals the number of
//!   increments performed;
//! * **deadlock freedom** — no reachable state where all threads block;
//! * **livelock** — exact state cycles (benign spins under unfair
//!   schedules) are separated from genuine non-progress.
//!
//! The ablated target — the inline sequence with the kernel's rollback
//! strategy stripped — must *fail*: the checker proves the kernel support
//! is load-bearing by exhibiting a minimized, replayable preemption
//! schedule that loses an update, which is exactly the hazard of Figure 3
//! of the paper.
//!
//! Alongside the search, a vector-clock happens-before sanitizer
//! ([`hb::RaceDetector`]) checks every explored execution for unordered
//! conflicting plain accesses, treating restartable-sequence words as
//! synchronization objects.
//!
//! Entry points: [`model_check`] (the full matrix), [`check_target`]
//! (one configuration), and the `ras-check` binary.

pub mod explore;
pub mod hb;
pub mod pathset;
pub mod schedule;

pub use explore::{
    check_target, check_target_split, check_targets_split, counterexample_trace, race_report,
    CheckConfig, ModelTarget, RaceReport, RaceSite, TargetReport, Violation,
};
pub use hb::{Race, RaceDetector};
pub use pathset::PathSet;
pub use schedule::{minimize, Schedule};

/// The verdict for the whole target matrix.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// One report per checked target.
    pub targets: Vec<TargetReport>,
}

impl CheckReport {
    /// Whether every target matched its expectation (safe targets clean,
    /// the ablation refuted).
    pub fn ok(&self) -> bool {
        !self.targets.is_empty() && self.targets.iter().all(TargetReport::ok)
    }

    /// Total schedules explored across all targets.
    pub fn total_schedules(&self) -> u64 {
        self.targets.iter().map(|t| t.schedules).sum()
    }

    /// Total branches pruned by the sleep-set reduction.
    pub fn total_pruned(&self) -> u64 {
        self.targets.iter().map(|t| t.pruned).sum()
    }
}

/// Checks every target in [`ModelTarget::all`] under `config`.
///
/// With more than one worker available and [`CheckConfig::split_depth`]
/// nonzero, every target's search tree is root-split: shallow prefixes
/// expand sequentially, then the disjoint subtrees of *all* targets fan
/// out over one worker pool and merge back in depth-first order
/// ([`check_targets_split`]). On a single worker the targets run
/// directly, still in [`ModelTarget::all`] order. Either way the report
/// — aggregate counts, violations, minimized schedules, races — is
/// byte-identical to serial [`check_target`] runs; parallelism is only
/// visible as wall time.
pub fn model_check(config: &CheckConfig) -> CheckReport {
    let targets = ModelTarget::all();
    let workers = ras_par::available_workers();
    let targets = if workers <= 1 || config.split_depth == 0 {
        ras_par::parallel_map(&targets, |&t| check_target(t, config))
    } else {
        check_targets_split(&targets, config, workers)
    };
    CheckReport { targets }
}
