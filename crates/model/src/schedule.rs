//! Replayable schedules: a counterexample is a sparse list of scheduling
//! decisions, indexed by decision point.
//!
//! The explorer numbers decision points consecutively: every boundary
//! (a thread about to execute a visible operation) and every free
//! dispatch (no thread running, several ready) is one decision point. A
//! [`Schedule`] records only the points where the decision deviates from
//! the default — continue the current thread, or dispatch the front of
//! the ready queue — so a minimized counterexample reads as exactly the
//! preemptions that matter: "at decision point 17, preempt in favor of
//! t2".

use ras_kernel::Decision;

/// A sparse schedule: `(decision point index, decision)`, ascending.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// The non-default decisions, in decision-point order.
    pub decisions: Vec<(u64, Decision)>,
}

impl Schedule {
    /// The decision to apply at decision point `index` (`None` = take the
    /// default).
    pub fn decision_at(&self, index: u64) -> Option<Decision> {
        self.decisions
            .iter()
            .find(|(i, _)| *i == index)
            .map(|(_, d)| *d)
    }

    /// Number of recorded (non-default) decisions.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    /// Whether the schedule is entirely default.
    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }

    /// A copy with the `i`-th recorded decision removed (for greedy
    /// minimization).
    pub fn without(&self, i: usize) -> Schedule {
        let mut decisions = self.decisions.clone();
        decisions.remove(i);
        Schedule { decisions }
    }

    /// Human-readable one-line-per-decision rendering.
    pub fn render(&self) -> String {
        if self.decisions.is_empty() {
            return "  (default schedule: run to completion, no preemptions)".to_string();
        }
        let mut out = String::new();
        for (idx, decision) in &self.decisions {
            let line = match decision {
                Decision::Continue => format!("  @{idx}: continue"),
                Decision::Preempt(t) => format!("  @{idx}: preempt current thread, run {t}"),
                Decision::Dispatch(t) => format!("  @{idx}: dispatch {t}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out.pop();
        out
    }
}

/// Greedily minimizes `schedule` under `still_fails`: repeatedly drops
/// decisions whose removal preserves the violation, until a fixed point.
/// The predicate is called with candidate schedules and must return
/// whether the violation still reproduces.
pub fn minimize(schedule: Schedule, mut still_fails: impl FnMut(&Schedule) -> bool) -> Schedule {
    let mut current = schedule;
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = 0;
        while i < current.len() {
            let candidate = current.without(i);
            if still_fails(&candidate) {
                current = candidate;
                changed = true;
            } else {
                i += 1;
            }
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_kernel::ThreadId;

    #[test]
    fn decision_lookup_and_render() {
        let s = Schedule {
            decisions: vec![
                (3, Decision::Preempt(ThreadId(2))),
                (9, Decision::Dispatch(ThreadId(1))),
            ],
        };
        assert_eq!(s.decision_at(3), Some(Decision::Preempt(ThreadId(2))));
        assert_eq!(s.decision_at(4), None);
        let text = s.render();
        assert!(text.contains("@3: preempt"));
        assert!(text.contains("@9: dispatch t1"));
    }

    #[test]
    fn minimize_drops_irrelevant_decisions() {
        // The "violation" only needs the decision at point 5.
        let s = Schedule {
            decisions: vec![
                (1, Decision::Preempt(ThreadId(1))),
                (5, Decision::Preempt(ThreadId(2))),
                (8, Decision::Dispatch(ThreadId(1))),
            ],
        };
        let minimized = minimize(s, |c| c.decision_at(5).is_some());
        assert_eq!(minimized.len(), 1);
        assert_eq!(
            minimized.decision_at(5),
            Some(Decision::Preempt(ThreadId(2)))
        );
    }
}
