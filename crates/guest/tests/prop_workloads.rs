//! Property tests: workload invariants hold for fuzzed specs, schedules,
//! and mechanisms.

use proptest::prelude::*;
use ras_guest::workloads::{
    counter_loop, proton64, treiber_stack, CounterSpec, Proton64Spec, StackSpec,
};
use ras_guest::Mechanism;
use ras_kernel::Outcome;
use ras_machine::CpuProfile;

fn run(built: &ras_guest::BuiltGuest, quantum: u64, seed: u64) -> ras_kernel::Kernel {
    let mut config = built.kernel_config(CpuProfile::r3000());
    config.quantum = quantum;
    config.jitter = 5;
    config.seed = seed;
    config.mem_bytes = 1 << 21;
    config.stack_bytes = 4096;
    let mut kernel = built.boot(config).unwrap();
    assert_eq!(kernel.run(40_000_000_000), Outcome::Completed);
    kernel
}

fn arb_soft_mechanism() -> impl Strategy<Value = Mechanism> {
    prop_oneof![
        Just(Mechanism::RasRegistered),
        Just(Mechanism::RasInline),
        Just(Mechanism::KernelEmulation),
        Just(Mechanism::LamportPerLock),
        Just(Mechanism::LamportBundled),
        Just(Mechanism::UserLevelRestart),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The counter invariant holds for fuzzed (mechanism, workers,
    /// iterations, quantum, seed).
    #[test]
    fn counter_exact_under_fuzzing(
        mechanism in arb_soft_mechanism(),
        workers in 1usize..4,
        iterations in 1u32..250,
        quantum in 9u64..400,
        seed: u64,
    ) {
        let spec = CounterSpec { iterations, workers, ..Default::default() };
        let built = counter_loop(mechanism, &spec);
        let kernel = run(&built, quantum, seed);
        let counter = kernel.read_word(built.data.symbol("counter").unwrap()).unwrap();
        prop_assert_eq!(counter, spec.expected_count());
    }

    /// The producer/consumer checksum matches the oracle for fuzzed sizes
    /// and schedules.
    #[test]
    fn proton_checksum_under_fuzzing(
        items in 1u32..400,
        quantum in 31u64..500,
        seed: u64,
        inline: bool,
    ) {
        let mechanism = if inline { Mechanism::RasInline } else { Mechanism::KernelEmulation };
        let spec = Proton64Spec { items };
        let built = proton64(mechanism, &spec);
        let kernel = run(&built, quantum, seed);
        let checksum = kernel.read_word(built.data.symbol("checksum").unwrap()).unwrap();
        prop_assert_eq!(checksum, spec.expected_checksum());
    }

    /// The lock-free stack conserves nodes for fuzzed shapes.
    #[test]
    fn stack_conservation_under_fuzzing(
        workers in 1usize..4,
        nodes in 1u32..120,
        quantum in 13u64..300,
        seed: u64,
    ) {
        let spec = StackSpec { workers, nodes_per_worker: nodes };
        let built = treiber_stack(Mechanism::RasInline, &spec);
        let kernel = run(&built, quantum, seed);
        let read = |s: &str| kernel.read_word(built.data.symbol(s).unwrap()).unwrap();
        prop_assert_eq!(read("popped_total"), spec.total_nodes());
        prop_assert_eq!(read("popped_sum"), spec.expected_sum());
        prop_assert_eq!(read("head"), 0);
    }
}
