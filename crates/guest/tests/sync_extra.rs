//! Semaphores, reader–writer locks, and barriers under hostile
//! preemption, across mechanisms.

use ras_guest::codegen::{emit_exit, emit_join, emit_spawn};
use ras_guest::{
    alloc_barrier, alloc_rwlock, alloc_semaphore, emit_sync_extra, GuestBuilder, Mechanism,
};
use ras_isa::Reg;
use ras_kernel::Outcome;
use ras_machine::CpuProfile;

fn run(built: &ras_guest::BuiltGuest, quantum: u64, seed: u64) -> ras_kernel::Kernel {
    let profile = if built.mechanism.supported_by(&CpuProfile::r3000()) {
        CpuProfile::r3000()
    } else {
        CpuProfile::i860()
    };
    let mut config = built.kernel_config(profile);
    config.quantum = quantum;
    config.jitter = 5;
    config.seed = seed;
    config.mem_bytes = 1 << 21;
    config.stack_bytes = 4096;
    let mut kernel = built.boot(config).unwrap();
    assert_eq!(
        kernel.run(40_000_000_000),
        Outcome::Completed,
        "{}",
        built.mechanism
    );
    kernel
}

fn spawn_and_join_workers(
    asm: &mut ras_isa::Asm,
    worker: u32,
    tids: u32,
    workers: usize,
    arg: i32,
) -> u32 {
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..workers {
        asm.li(Reg::T0, arg);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..workers {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    main
}

/// A semaphore initialized to K bounds concurrency: the "inside" count
/// must never exceed K, checked by recording the high-water mark under an
/// auxiliary critical section.
#[test]
fn semaphore_bounds_concurrency() {
    const WORKERS: usize = 5;
    const K: u32 = 2;
    const ROUNDS: i32 = 60;
    for mechanism in [Mechanism::RasInline, Mechanism::KernelEmulation] {
        let mut b = GuestBuilder::new(mechanism, WORKERS + 1);
        let (asm, data, rt) = b.parts();
        let extra = emit_sync_extra(asm, rt);
        let sem = alloc_semaphore(rt, data, "sem", K);
        let guard = rt.alloc_raw_lock(data, "guard");
        let inside = data.word("inside", 0);
        let high = data.word("high", 0);
        let tids = data.array("tids", WORKERS, 0);

        let worker = asm.bind_symbol("worker");
        asm.mv(Reg::S0, Reg::A0);
        let top = asm.bind_new();
        asm.li(Reg::A0, sem as i32);
        asm.jal_to(extra.sem_p);
        // inside++ and track the high-water mark, under the guard lock.
        asm.li(Reg::A0, guard as i32);
        rt.emit_raw_enter(asm);
        asm.li(Reg::T6, inside as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::T6, high as i32);
        asm.lw(Reg::T2, Reg::T6, 0);
        let no_update = asm.label();
        asm.bge(Reg::T2, Reg::T7, no_update);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.bind(no_update);
        asm.li(Reg::A0, guard as i32);
        rt.emit_raw_exit(asm);
        // linger briefly inside the region
        ras_guest::codegen::emit_busy_work(asm, 10, Reg::T0);
        // inside--
        asm.li(Reg::A0, guard as i32);
        rt.emit_raw_enter(asm);
        asm.li(Reg::T6, inside as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, -1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::A0, guard as i32);
        rt.emit_raw_exit(asm);
        asm.li(Reg::A0, sem as i32);
        asm.jal_to(extra.sem_v);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        emit_exit(asm);

        let main = spawn_and_join_workers(asm, worker, tids, WORKERS, ROUNDS);
        let built = b.finish(main).unwrap();
        let kernel = run(&built, 73, 3);
        let high_val = kernel.read_word(high).unwrap();
        assert!((1..=K).contains(&high_val), "{mechanism}: high={high_val}");
        assert_eq!(kernel.read_word(inside).unwrap(), 0);
    }
}

/// Readers see a consistent two-word value that a writer updates
/// atomically under the write lock (writes both halves; readers verify
/// halves match).
#[test]
fn rwlock_keeps_paired_words_consistent() {
    const READERS: usize = 3;
    const ROUNDS: i32 = 80;
    for mechanism in [Mechanism::RasRegistered, Mechanism::LamportBundled] {
        let mut b = GuestBuilder::new(mechanism, READERS + 2);
        let (asm, data, rt) = b.parts();
        let extra = emit_sync_extra(asm, rt);
        let rw = alloc_rwlock(rt, data, "rw");
        let pair_a = data.word("pair_a", 0);
        let pair_b = data.word("pair_b", 0);
        let mismatches = data.word("mismatches", 0);
        let wdone = data.word("wdone", 0);
        let tids = data.array("tids", READERS + 1, 0);

        // writer: ROUNDS times, write_lock; a++; b++; write_unlock.
        let writer = asm.bind_symbol("writer");
        asm.mv(Reg::S0, Reg::A0);
        let wtop = asm.bind_new();
        asm.li(Reg::A0, rw as i32);
        asm.jal_to(extra.rw_write_lock);
        asm.li(Reg::T6, pair_a as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::T6, pair_b as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::A0, rw as i32);
        asm.jal_to(extra.rw_write_unlock);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, wtop);
        asm.li(Reg::T6, wdone as i32);
        asm.li(Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        emit_exit(asm);

        // reader: until wdone, read_lock; check a == b; read_unlock.
        let reader = asm.bind_symbol("reader");
        let rtop = asm.bind_new();
        let rdone = asm.label();
        asm.li(Reg::T6, wdone as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.bnez(Reg::T7, rdone);
        asm.li(Reg::A0, rw as i32);
        asm.jal_to(extra.rw_read_lock);
        asm.li(Reg::T6, pair_a as i32);
        asm.lw(Reg::T2, Reg::T6, 0);
        asm.li(Reg::T6, pair_b as i32);
        asm.lw(Reg::T3, Reg::T6, 0);
        let consistent = asm.label();
        asm.beq(Reg::T2, Reg::T3, consistent);
        asm.li(Reg::T6, mismatches as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.bind(consistent);
        asm.li(Reg::A0, rw as i32);
        asm.jal_to(extra.rw_read_unlock);
        asm.j(rtop);
        asm.bind(rdone);
        emit_exit(asm);

        // main: spawn writer + readers, join all.
        let main = asm.bind_symbol("main");
        asm.mv(Reg::S3, Reg::RA);
        asm.li(Reg::T0, ROUNDS);
        emit_spawn(asm, writer, Reg::T0);
        asm.li(Reg::T1, tids as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
        for r in 0..READERS {
            asm.li(Reg::T0, 0);
            emit_spawn(asm, reader, Reg::T0);
            asm.li(Reg::T1, (tids + 4 * (r as u32 + 1)) as i32);
            asm.sw(Reg::V0, Reg::T1, 0);
        }
        for i in 0..READERS + 1 {
            asm.li(Reg::T1, (tids + 4 * i as u32) as i32);
            asm.lw(Reg::A0, Reg::T1, 0);
            emit_join(asm, Reg::A0);
        }
        asm.jr(Reg::S3);
        let built = b.finish(main).unwrap();
        let kernel = run(&built, 113, 9);
        assert_eq!(kernel.read_word(mismatches).unwrap(), 0, "{mechanism}");
        assert_eq!(kernel.read_word(pair_a).unwrap(), ROUNDS as u32);
        assert_eq!(kernel.read_word(pair_b).unwrap(), ROUNDS as u32);
    }
}

/// A barrier keeps N workers in lockstep: after each round, every
/// worker's round counter is within one of every other's; final rounds
/// all equal.
#[test]
fn barrier_keeps_workers_in_lockstep() {
    const WORKERS: usize = 4;
    const ROUNDS: i32 = 25;
    for mechanism in [Mechanism::RasInline, Mechanism::UserLevelRestart] {
        let mut b = GuestBuilder::new(mechanism, WORKERS + 1);
        let (asm, data, rt) = b.parts();
        let extra = emit_sync_extra(asm, rt);
        let barrier = alloc_barrier(rt, data, "barrier");
        let guard = rt.alloc_raw_lock(data, "guard");
        let sum = data.word("sum", 0);
        let skew = data.word("skew", 0);
        let rounds_arr = data.array("rounds", WORKERS, 0);
        let tids = data.array("tids", WORKERS, 0);

        // worker(a0 = index! packed: we pass index via arg)
        let worker = asm.bind_symbol("worker");
        asm.mv(Reg::S0, Reg::A0); // my slot index
        asm.li(Reg::S1, ROUNDS);
        let top = asm.bind_new();
        // rounds[me]++
        asm.slli(Reg::T6, Reg::S0, 2);
        asm.li(Reg::T7, rounds_arr as i32);
        asm.add(Reg::T6, Reg::T6, Reg::T7);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        // contribute to a lock-protected sum
        asm.li(Reg::A0, guard as i32);
        rt.emit_raw_enter(asm);
        asm.li(Reg::T6, sum as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::A0, guard as i32);
        rt.emit_raw_exit(asm);
        // barrier
        asm.li(Reg::A0, barrier as i32);
        asm.li(Reg::A1, WORKERS as i32);
        asm.jal_to(extra.barrier_wait);
        // After the barrier, every worker's round count must equal mine.
        for w in 0..WORKERS {
            asm.li(Reg::T6, (rounds_arr + 4 * w as u32) as i32);
            asm.lw(Reg::T7, Reg::T6, 0);
            // my own current round:
            asm.slli(Reg::T2, Reg::S0, 2);
            asm.li(Reg::T3, rounds_arr as i32);
            asm.add(Reg::T2, Reg::T2, Reg::T3);
            asm.lw(Reg::T3, Reg::T2, 0);
            let same = asm.label();
            asm.beq(Reg::T7, Reg::T3, same);
            asm.li(Reg::T6, skew as i32);
            asm.lw(Reg::T7, Reg::T6, 0);
            asm.addi(Reg::T7, Reg::T7, 1);
            asm.sw(Reg::T7, Reg::T6, 0);
            asm.bind(same);
        }
        // second barrier so nobody races ahead into the next increment
        // while others are still checking.
        asm.li(Reg::A0, barrier as i32);
        asm.li(Reg::A1, WORKERS as i32);
        asm.jal_to(extra.barrier_wait);
        asm.addi(Reg::S1, Reg::S1, -1);
        asm.bnez(Reg::S1, top);
        emit_exit(asm);

        // main
        let main = asm.bind_symbol("main");
        asm.mv(Reg::S3, Reg::RA);
        for w in 0..WORKERS {
            asm.li(Reg::T0, w as i32);
            emit_spawn(asm, worker, Reg::T0);
            asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
            asm.sw(Reg::V0, Reg::T1, 0);
        }
        for w in 0..WORKERS {
            asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
            asm.lw(Reg::A0, Reg::T1, 0);
            emit_join(asm, Reg::A0);
        }
        asm.jr(Reg::S3);
        let built = b.finish(main).unwrap();
        let kernel = run(&built, 89, 17);
        assert_eq!(
            kernel.read_word(skew).unwrap(),
            0,
            "{mechanism}: lockstep broken"
        );
        assert_eq!(
            kernel.read_word(sum).unwrap(),
            (WORKERS as u32) * ROUNDS as u32
        );
        for w in 0..WORKERS {
            assert_eq!(
                kernel.read_word(rounds_arr + 4 * w as u32).unwrap(),
                ROUNDS as u32
            );
        }
    }
}
