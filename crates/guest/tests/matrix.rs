//! The correctness matrix: every mechanism × every workload, under
//! adversarial preemption (tiny jittered quanta), verifying the workload
//! invariants exactly. This is the load-bearing validation of the whole
//! reproduction — if a mechanism failed to provide atomicity anywhere, a
//! counter or checksum would come out wrong.

use ras_guest::{workloads, BuiltGuest, Mechanism};
use ras_kernel::{Kernel, KernelConfig, Outcome};
use ras_machine::CpuProfile;

/// The profile that supports a mechanism: the R3000 for software-only
/// mechanisms, the i860 otherwise.
fn profile_for(mechanism: Mechanism) -> CpuProfile {
    if mechanism.supported_by(&CpuProfile::r3000()) {
        CpuProfile::r3000()
    } else {
        CpuProfile::i860()
    }
}

fn run_hostile(built: &BuiltGuest, quantum: u64, seed: u64) -> Kernel {
    let mut config = built.kernel_config(profile_for(built.mechanism));
    config.quantum = quantum;
    config.jitter = 7;
    config.seed = seed;
    config.mem_bytes = 1 << 21;
    config.stack_bytes = 4096;
    let mut kernel = built.boot(config).expect("boots");
    let outcome = kernel.run(20_000_000_000);
    assert_eq!(
        outcome,
        Outcome::Completed,
        "{} did not complete: {outcome:?}",
        built.mechanism
    );
    kernel
}

fn read(kernel: &Kernel, built: &BuiltGuest, symbol: &str) -> u32 {
    kernel
        .read_word(built.data.symbol(symbol).expect("symbol exists"))
        .expect("aligned")
}

#[test]
fn counter_loop_is_exact_for_every_mechanism() {
    let spec = workloads::CounterSpec {
        iterations: 300,
        workers: 3,
        body: workloads::CounterBody::LockAndCounter,
    };
    for mechanism in Mechanism::all() {
        for (quantum, seed) in [(17, 1), (53, 2), (211, 3)] {
            let built = workloads::counter_loop(mechanism, &spec);
            let kernel = run_hostile(&built, quantum, seed);
            assert_eq!(
                read(&kernel, &built, "counter"),
                spec.expected_count(),
                "{mechanism} quantum={quantum} seed={seed}"
            );
        }
    }
}

#[test]
fn optimistic_mechanisms_actually_restart() {
    // Under a tiny quantum, the in-kernel RAS mechanisms must show restarts
    // and the user-level mechanism must show redirects; otherwise the
    // hostile schedule is not actually hostile.
    let spec = workloads::CounterSpec {
        iterations: 500,
        workers: 3,
        body: workloads::CounterBody::LockAndCounter,
    };
    for mechanism in [Mechanism::RasRegistered, Mechanism::RasInline] {
        let built = workloads::counter_loop(mechanism, &spec);
        let kernel = run_hostile(&built, 13, 9);
        assert!(
            kernel.stats().ras_restarts > 0,
            "{mechanism}: no restarts under quantum 13"
        );
    }
    let built = workloads::counter_loop(Mechanism::UserLevelRestart, &spec);
    let kernel = run_hostile(&built, 13, 9);
    assert!(kernel.stats().user_restart_redirects > 0);
    assert_eq!(read(&kernel, &built, "counter"), spec.expected_count());
}

#[test]
fn rseq_mechanism_registers_once_per_thread_and_aborts_under_pressure() {
    let spec = workloads::CounterSpec {
        iterations: 500,
        workers: 3,
        body: workloads::CounterBody::LockAndCounter,
    };
    let built = workloads::counter_loop(Mechanism::Rseq, &spec);
    let kernel = run_hostile(&built, 13, 9);
    assert_eq!(read(&kernel, &built, "counter"), spec.expected_count());
    // Lazy registration: exactly one SYS_RSEQ per thread that took a lock.
    assert_eq!(kernel.stats().rseq_registrations, spec.workers as u64);
    assert!(
        kernel.stats().rseq_aborts > 0,
        "no aborts under quantum 13 — the schedule is not hostile"
    );
    // Aborts jump forward to the handler, never backward into the window.
    assert_eq!(kernel.stats().ras_restarts, 0);
}

#[test]
fn spinlock_and_mutex_benches_complete_exactly() {
    let spec = workloads::Table2Spec { iterations: 400 };
    for mechanism in Mechanism::all() {
        let built = workloads::spinlock_bench(mechanism, &spec);
        let kernel = run_hostile(&built, 31, 4);
        assert_eq!(
            read(&kernel, &built, "acquisitions"),
            spec.iterations,
            "{mechanism} spinlock"
        );

        let built = workloads::mutex_bench(mechanism, &spec);
        let kernel = run_hostile(&built, 31, 5);
        assert_eq!(
            read(&kernel, &built, "acquisitions"),
            spec.iterations,
            "{mechanism} mutex"
        );
    }
}

#[test]
fn fork_test_spawns_the_whole_chain() {
    let spec = workloads::Table2Spec { iterations: 40 };
    for mechanism in Mechanism::all() {
        let built = workloads::fork_test(mechanism, &spec);
        let mut config = built.kernel_config(profile_for(mechanism));
        config.quantum = 97;
        config.jitter = 5;
        config.seed = 6;
        config.mem_bytes = 1 << 21;
        config.stack_bytes = 2048;
        config.max_threads = spec.iterations as usize + 2;
        let mut kernel = built.boot(config).unwrap();
        assert_eq!(
            kernel.run(20_000_000_000),
            Outcome::Completed,
            "{mechanism}"
        );
        assert_eq!(
            read(&kernel, &built, "forks_done"),
            spec.iterations,
            "{mechanism} forks"
        );
        assert_eq!(
            kernel.stats().threads_spawned,
            u64::from(spec.iterations) + 1,
            "{mechanism} spawn count"
        );
    }
}

#[test]
fn ping_pong_alternates_exactly() {
    let spec = workloads::Table2Spec { iterations: 120 };
    for mechanism in Mechanism::all() {
        let built = workloads::ping_pong(mechanism, &spec);
        let kernel = run_hostile(&built, 71, 7);
        assert_eq!(
            read(&kernel, &built, "cycles"),
            spec.iterations,
            "{mechanism} pingpong cycles"
        );
    }
}

#[test]
fn parthenon_resolves_every_clause() {
    let spec = workloads::ParthenonSpec {
        workers: 4,
        clauses: 200,
        work_iters: 25,
    };
    for mechanism in Mechanism::all() {
        let built = workloads::parthenon(mechanism, &spec);
        let kernel = run_hostile(&built, 83, 8);
        assert_eq!(
            read(&kernel, &built, "resolved"),
            spec.clauses,
            "{mechanism}"
        );
        assert_eq!(
            read(&kernel, &built, "inferences"),
            spec.clauses,
            "{mechanism}"
        );
        assert_eq!(
            read(&kernel, &built, "sum"),
            spec.expected_sum(),
            "{mechanism} sum"
        );
    }
}

#[test]
fn proton64_checksum_matches_the_oracle() {
    let spec = workloads::Proton64Spec { items: 500 };
    for mechanism in Mechanism::all() {
        let built = workloads::proton64(mechanism, &spec);
        let kernel = run_hostile(&built, 101, 10);
        assert_eq!(
            read(&kernel, &built, "checksum"),
            spec.expected_checksum(),
            "{mechanism} checksum"
        );
    }
}

#[test]
fn client_server_apps_handle_every_request() {
    let tf = workloads::TextFormatSpec {
        requests: 30,
        client_work: 300,
        server_work: 80,
    };
    let afs = workloads::AfsSpec {
        requests: 60,
        client_work: 60,
        server_work: 60,
    };
    for mechanism in Mechanism::all() {
        let built = workloads::text_format(mechanism, &tf);
        let kernel = run_hostile(&built, 131, 11);
        assert_eq!(
            read(&kernel, &built, "handled"),
            tf.requests,
            "{mechanism} tf"
        );
        assert_eq!(
            read(&kernel, &built, "srv_counter"),
            tf.requests * 2,
            "{mechanism} tf counter"
        );

        let built = workloads::afs_bench(mechanism, &afs);
        let kernel = run_hostile(&built, 131, 12);
        assert_eq!(
            read(&kernel, &built, "handled"),
            afs.requests,
            "{mechanism} afs"
        );
        assert_eq!(
            read(&kernel, &built, "srv_counter"),
            afs.requests * 4,
            "{mechanism} afs counter"
        );
    }
}

#[test]
fn registered_fallback_still_computes_correctly() {
    // The §3.1 story end-to-end: a RasRegistered binary meets a kernel
    // without registration support; the loader overwrites the sequence
    // with kernel emulation and the program still runs correctly under a
    // StrategyKind::None kernel.
    let spec = workloads::CounterSpec {
        iterations: 300,
        workers: 3,
        body: workloads::CounterBody::LockAndCounter,
    };
    let mut built = workloads::counter_loop(Mechanism::RasRegistered, &spec);
    built.apply_emulation_fallback();
    let mut config = KernelConfig::new(CpuProfile::r3000(), built.strategy.clone());
    config.quantum = 29;
    config.jitter = 7;
    config.seed = 13;
    config.mem_bytes = 1 << 21;
    config.stack_bytes = 4096;
    let mut kernel = built.boot(config).unwrap();
    assert_eq!(kernel.run(20_000_000_000), Outcome::Completed);
    assert_eq!(read(&kernel, &built, "counter"), spec.expected_count());
    assert!(
        kernel.stats().emulation_traps >= u64::from(spec.expected_count()),
        "fallback must route through kernel emulation"
    );
    assert_eq!(kernel.stats().ras_restarts, 0);
}

#[test]
fn hostile_counter_is_deterministic_per_mechanism() {
    let spec = workloads::CounterSpec {
        iterations: 200,
        workers: 2,
        body: workloads::CounterBody::LockAndCounter,
    };
    for mechanism in [Mechanism::RasInline, Mechanism::KernelEmulation] {
        let run = || {
            let built = workloads::counter_loop(mechanism, &spec);
            let k = run_hostile(&built, 37, 21);
            (k.machine().clock(), *k.stats())
        };
        assert_eq!(run(), run(), "{mechanism}");
    }
}

#[test]
fn malloc_stress_never_corrupts_blocks() {
    let spec = workloads::MallocSpec {
        workers: 4,
        rounds: 150,
        blocks: 5,
    };
    for mechanism in Mechanism::all() {
        let built = workloads::malloc_stress(mechanism, &spec);
        let kernel = run_hostile(&built, 59, 14);
        let read = |s: &str| kernel.read_word(built.data.symbol(s).unwrap()).unwrap();
        assert_eq!(read("corruptions"), 0, "{mechanism}: double allocation");
        assert_eq!(
            read("alloc_count"),
            spec.workers as u32 * spec.rounds,
            "{mechanism}: rounds lost"
        );
        assert_ne!(read("free_head"), 0, "{mechanism}: free list leaked");
    }
}

#[test]
fn user_level_restart_survives_quanta_shorter_than_the_recovery_routine() {
    // Regression test: when the quantum is shorter than the recovery
    // routine itself, the kernel must not redirect a thread that is
    // already inside the routine — cascading redirects would grow the
    // user stack without bound (found by probing quantum 3, which
    // overflowed a 4 KiB stack before the recovery-range check existed).
    let spec = workloads::CounterSpec {
        iterations: 300,
        workers: 2,
        ..Default::default()
    };
    for quantum in [3u64, 5, 9] {
        let built = workloads::counter_loop(Mechanism::UserLevelRestart, &spec);
        let mut config = built.kernel_config(CpuProfile::r3000());
        config.quantum = quantum;
        config.jitter = 2;
        config.seed = 5;
        config.mem_bytes = 1 << 21;
        config.stack_bytes = 4096;
        let mut kernel = built.boot(config).unwrap();
        assert_eq!(
            kernel.run(20_000_000_000),
            Outcome::Completed,
            "q={quantum}"
        );
        assert_eq!(
            kernel
                .read_word(built.data.symbol("counter").unwrap())
                .unwrap(),
            spec.expected_count(),
            "q={quantum}"
        );
        assert!(kernel.stats().user_restart_redirects > 0);
    }
}
