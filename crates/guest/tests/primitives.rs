//! The richer designated read-modify-write primitives (exchange,
//! compare-and-swap, fetch-and-add) under hostile preemption, composed
//! into a Drepper-style futex mutex — the kind of richer atomic sequence
//! §4.1 of the paper anticipates beyond plain Test-And-Set.

use ras_guest::codegen::{emit_exit, emit_join, emit_spawn};
use ras_guest::{tas, GuestBuilder, Mechanism};
use ras_isa::{abi, Reg};
use ras_kernel::Outcome;
use ras_machine::CpuProfile;

fn hostile_run(built: &ras_guest::BuiltGuest, quantum: u64, seed: u64) -> ras_kernel::Kernel {
    let mut config = built.kernel_config(CpuProfile::r3000());
    config.quantum = quantum;
    config.jitter = 7;
    config.seed = seed;
    config.mem_bytes = 1 << 21;
    config.stack_bytes = 4096;
    let mut kernel = built.boot(config).unwrap();
    assert_eq!(kernel.run(20_000_000_000), Outcome::Completed);
    kernel
}

#[test]
fn designated_fetch_and_add_is_atomic() {
    const N: i32 = 600;
    const WORKERS: usize = 3;
    let mut b = GuestBuilder::new(Mechanism::RasInline, WORKERS + 1);
    let (asm, data, _) = b.parts();
    let counter = data.word("counter", 0);
    let tids = data.array("tids", WORKERS, 0);

    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    let top = asm.bind_new();
    asm.li(Reg::A0, counter as i32);
    tas::emit_faa_inline(asm, 1);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    emit_exit(asm);

    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..WORKERS {
        asm.li(Reg::T0, N);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..WORKERS {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    let built = b.finish(main).unwrap();

    for (quantum, seed) in [(11, 1), (29, 2), (97, 3)] {
        let kernel = hostile_run(&built, quantum, seed);
        assert_eq!(
            kernel.read_word(counter).unwrap(),
            (N as u32) * WORKERS as u32,
            "quantum={quantum}"
        );
        if quantum < 30 {
            assert!(kernel.stats().ras_restarts > 0);
        }
    }
}

/// A futex mutex in the style of modern pthreads (state 0 = free,
/// 1 = locked, 2 = contended), built entirely from designated CAS and
/// exchange sequences — no kernel atomic support needed.
#[test]
fn futex_mutex_from_cas_and_xchg_excludes() {
    const N: i32 = 400;
    const WORKERS: usize = 4;
    let mut b = GuestBuilder::new(Mechanism::RasInline, WORKERS + 1);
    let (asm, data, _) = b.parts();
    let lock = data.word("lock", 0);
    let counter = data.word("counter", 0);
    let tids = data.array("tids", WORKERS, 0);

    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    let top = asm.bind_new();
    {
        // acquire:
        //   if cas(lock, 0 -> 1) succeeded, fast path done;
        //   else loop { if xchg(lock, 2) == 0 break; wait(lock, 2) }
        let acquired = asm.label();
        asm.li(Reg::A0, lock as i32);
        asm.li(Reg::A1, 0);
        asm.li(Reg::A2, 1);
        tas::emit_cas_inline(asm);
        asm.beqz(Reg::V0, acquired);
        let slow = asm.bind_new();
        asm.li(Reg::A0, lock as i32);
        asm.li(Reg::A1, 2);
        tas::emit_xchg_inline(asm);
        asm.beqz(Reg::V0, acquired);
        asm.li(Reg::A0, lock as i32);
        asm.li(Reg::A1, 2);
        asm.li(Reg::V0, abi::SYS_WAIT as i32);
        asm.syscall();
        asm.j(slow);
        asm.bind(acquired);
    }
    // critical section: counter++ (plain, protected by the mutex).
    asm.li(Reg::T1, counter as i32);
    asm.lw(Reg::T2, Reg::T1, 0);
    asm.addi(Reg::T2, Reg::T2, 1);
    asm.sw(Reg::T2, Reg::T1, 0);
    {
        // release: if xchg(lock, 0) == 2 there were waiters -> wake 1.
        let no_waiters = asm.label();
        asm.li(Reg::A0, lock as i32);
        asm.li(Reg::A1, 0);
        tas::emit_xchg_inline(asm);
        asm.li(Reg::T3, 2);
        asm.bne(Reg::V0, Reg::T3, no_waiters);
        asm.li(Reg::A0, lock as i32);
        asm.li(Reg::A1, 1);
        asm.li(Reg::V0, abi::SYS_WAKE as i32);
        asm.syscall();
        asm.bind(no_waiters);
    }
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    emit_exit(asm);

    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..WORKERS {
        asm.li(Reg::T0, N);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..WORKERS {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    let built = b.finish(main).unwrap();

    for (quantum, seed) in [(13, 4), (41, 5), (173, 6), (5_000, 7)] {
        let kernel = hostile_run(&built, quantum, seed);
        assert_eq!(
            kernel.read_word(counter).unwrap(),
            (N as u32) * WORKERS as u32,
            "quantum={quantum}"
        );
    }
}

/// The same futex mutex run WITHOUT sequence recognition loses updates —
/// CAS and exchange really do depend on the recovery.
#[test]
fn futex_mutex_breaks_without_recovery() {
    const N: i32 = 600;
    let mut b = GuestBuilder::new(Mechanism::RasInline, 4);
    let (asm, data, _) = b.parts();
    let counter = data.word("counter", 0);
    let tids = data.array("tids", 3, 0);

    // Workers use raw fetch-and-add shapes; under StrategyKind::None the
    // landmark is a plain no-op and the read-modify-write tears.
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    let top = asm.bind_new();
    asm.li(Reg::A0, counter as i32);
    tas::emit_faa_inline(asm, 1);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    emit_exit(asm);

    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..3 {
        asm.li(Reg::T0, N);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..3 {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    let mut built = b.finish(main).unwrap();
    built.strategy = ras_kernel::StrategyKind::None;

    let kernel = hostile_run(&built, 13, 8);
    let got = kernel.read_word(counter).unwrap();
    assert!(
        got < 3 * N as u32,
        "expected torn updates without recovery, got {got}"
    );
}

#[test]
fn treiber_stack_conserves_every_node() {
    use ras_guest::workloads::{treiber_stack, StackSpec};
    let spec = StackSpec {
        workers: 4,
        nodes_per_worker: 150,
    };
    for (quantum, seed) in [(19, 1), (67, 2), (503, 3)] {
        let built = treiber_stack(Mechanism::RasInline, &spec);
        let kernel = hostile_run(&built, quantum, seed);
        let read = |s: &str| kernel.read_word(built.data.symbol(s).unwrap()).unwrap();
        assert_eq!(
            read("popped_total"),
            spec.total_nodes(),
            "quantum={quantum}"
        );
        assert_eq!(read("popped_sum"), spec.expected_sum(), "quantum={quantum}");
        assert_eq!(read("head"), 0, "stack must drain");
        if quantum < 100 {
            assert!(kernel.stats().ras_restarts > 0);
        }
    }
}
