//! Blocking mutexes and condition variables, generic over the Test-And-Set
//! flavor.
//!
//! The paper's Taos mutex takes an optimistic fast path and falls into an
//! out-of-line `SlowAcquire` kernel call on contention (§3.2, Figure 5).
//! This library is structured the same way: the raw lock (one Test-And-Set
//! word, or a Lamport reservation structure) is taken with the mechanism's
//! fast path, and contended mutexes park in the kernel on futex-style
//! wait queues.
//!
//! Mutex memory layout (word offsets relative to the raw-lock size `R`):
//!
//! ```text
//! [0 .. R)   raw guard lock
//! [R]        state   (0 = free, 1 = held)
//! [R + 1]    waiters (count of threads that may be parked)
//! ```

use ras_isa::{abi, Asm, Reg};

use crate::runtime::SyncRuntime;

/// Emits the out-of-line mutex and condition-variable functions and
/// records their addresses in `rt`. Called once by
/// [`crate::GuestBuilder::new`] after the Test-And-Set flavor's own
/// functions exist.
pub(crate) fn emit_lock_functions(asm: &mut Asm, rt: &mut SyncRuntime) {
    let state = rt.mutex_state_offset();
    let waiters = rt.mutex_waiters_offset();

    // ---- __mutex_acquire (a0 = mutex) -----------------------------------
    rt.mutex_acquire_fn = asm.bind_symbol("__mutex_acquire");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        let retry = asm.bind_new();
        let take = asm.label();
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_enter(asm);
        asm.lw(Reg::T6, Reg::S7, state);
        asm.beqz(Reg::T6, take);
        // Held: note interest, drop the guard, park on the state word.
        asm.lw(Reg::T6, Reg::S7, waiters);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, waiters);
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_exit(asm);
        asm.addi(Reg::A0, Reg::S7, state);
        asm.li(Reg::A1, 1);
        asm.li(Reg::V0, abi::SYS_WAIT as i32);
        asm.syscall();
        // Retract interest and try again.
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_enter(asm);
        asm.lw(Reg::T6, Reg::S7, waiters);
        asm.addi(Reg::T6, Reg::T6, -1);
        asm.sw(Reg::T6, Reg::S7, waiters);
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_exit(asm);
        asm.j(retry);
        // Free: take it and drop the guard.
        asm.bind(take);
        asm.li(Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, state);
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_exit(asm);
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }

    // ---- __mutex_release (a0 = mutex) -----------------------------------
    rt.mutex_release_fn = asm.bind_symbol("__mutex_release");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_enter(asm);
        asm.sw(Reg::ZERO, Reg::S7, state);
        asm.lw(Reg::T6, Reg::S7, waiters);
        asm.mv(Reg::A0, Reg::S7);
        rt.emit_raw_exit(asm);
        let done = asm.label();
        asm.beqz(Reg::T6, done);
        asm.addi(Reg::A0, Reg::S7, state);
        asm.li(Reg::A1, 1);
        asm.li(Reg::V0, abi::SYS_WAKE as i32);
        asm.syscall();
        asm.bind(done);
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }

    // ---- __cv_wait (a0 = condvar, a1 = held mutex) -----------------------
    rt.cv_wait_fn = asm.bind_symbol("__cv_wait");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S4, Reg::S5, Reg::S6]);
        asm.mv(Reg::S4, Reg::A0); // condvar
        asm.mv(Reg::S5, Reg::A1); // mutex
        asm.lw(Reg::S6, Reg::S4, 0); // sequence snapshot
        asm.mv(Reg::A0, Reg::S5);
        asm.jal_to(rt.mutex_release_fn);
        asm.mv(Reg::A0, Reg::S4);
        asm.mv(Reg::A1, Reg::S6);
        asm.li(Reg::V0, abi::SYS_WAIT as i32);
        asm.syscall();
        asm.mv(Reg::A0, Reg::S5);
        asm.jal_to(rt.mutex_acquire_fn);
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S4, Reg::S5, Reg::S6]);
        asm.jr(Reg::RA);
    }

    // ---- __cv_signal (a0 = condvar; caller holds the mutex) --------------
    rt.cv_signal_fn = asm.bind_symbol("__cv_signal");
    {
        asm.lw(Reg::T6, Reg::A0, 0);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::A0, 0);
        asm.li(Reg::A1, 1);
        asm.li(Reg::V0, abi::SYS_WAKE as i32);
        asm.syscall();
        asm.jr(Reg::RA);
    }

    // ---- __cv_broadcast (a0 = condvar; caller holds the mutex) -----------
    rt.cv_broadcast_fn = asm.bind_symbol("__cv_broadcast");
    {
        asm.lw(Reg::T6, Reg::A0, 0);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::A0, 0);
        asm.li(Reg::A1, i32::MAX);
        asm.li(Reg::V0, abi::SYS_WAKE as i32);
        asm.syscall();
        asm.jr(Reg::RA);
    }
}
