//! Higher-level synchronization objects: counting semaphores (the paper's
//! opening citation is Dijkstra's P/V), reader–writer locks, and
//! barriers — all built on the mechanism-generic mutex and condition
//! variables, so they run over every Test-And-Set flavor.
//!
//! Layouts (word offsets; `M` = mutex words = raw lock + 2):
//!
//! ```text
//! semaphore: [mutex (M)][cv (1)][count (1)]
//! rwlock:    [mutex (M)][cv (1)][readers (1)][writer (1)][write_waiting (1)]
//! barrier:   [mutex (M)][cv (1)][arrived (1)][generation (1)]
//! ```

use ras_isa::{Asm, CodeAddr, DataAddr, DataLayout, Reg};

use crate::runtime::SyncRuntime;

/// Function entry points for the extra synchronization objects, emitted
/// once per program by [`emit_sync_extra`].
#[derive(Debug, Clone, Copy)]
pub struct SyncExtra {
    /// `P(sem)` / down: decrement, blocking while zero. `$a0` = semaphore.
    pub sem_p: CodeAddr,
    /// `V(sem)` / up: increment and wake one waiter. `$a0` = semaphore.
    pub sem_v: CodeAddr,
    /// Acquire shared. `$a0` = rwlock.
    pub rw_read_lock: CodeAddr,
    /// Release shared. `$a0` = rwlock.
    pub rw_read_unlock: CodeAddr,
    /// Acquire exclusive. `$a0` = rwlock.
    pub rw_write_lock: CodeAddr,
    /// Release exclusive. `$a0` = rwlock.
    pub rw_write_unlock: CodeAddr,
    /// Wait at the barrier. `$a0` = barrier, `$a1` = party count.
    pub barrier_wait: CodeAddr,
}

/// Allocates a semaphore with initial `count`.
pub fn alloc_semaphore(
    rt: &SyncRuntime,
    data: &mut DataLayout,
    name: &str,
    count: u32,
) -> DataAddr {
    let m = rt.raw_lock_words() + 2;
    let mut words = vec![0; m + 2];
    words[m + 1] = count;
    data.array_init(name, &words)
}

/// Allocates a reader–writer lock (mutex + cv + readers + writer +
/// write_waiting).
pub fn alloc_rwlock(rt: &SyncRuntime, data: &mut DataLayout, name: &str) -> DataAddr {
    data.array(name, rt.raw_lock_words() + 2 + 4, 0)
}

/// Allocates a barrier.
pub fn alloc_barrier(rt: &SyncRuntime, data: &mut DataLayout, name: &str) -> DataAddr {
    data.array(name, rt.raw_lock_words() + 2 + 3, 0)
}

/// Emits the semaphore/rwlock/barrier functions. Call once after
/// [`crate::GuestBuilder::new`], passing the builder's parts.
pub fn emit_sync_extra(asm: &mut Asm, rt: &SyncRuntime) -> SyncExtra {
    let mutex_words = rt.raw_lock_words() as i32 + 2;
    let cv_off = 4 * mutex_words;
    let f1 = cv_off + 4; // count / readers / arrived
    let f2 = cv_off + 8; // writer / generation
    let f3 = cv_off + 12; // write_waiting (rwlock only)

    // ---- semaphores -------------------------------------------------------
    // P: lock; while count == 0 wait; count--; unlock.
    let sem_p = asm.bind_symbol("__sem_p");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        let check = asm.bind_new();
        let go = asm.label();
        asm.lw(Reg::T6, Reg::S7, f1);
        asm.bnez(Reg::T6, go);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.mv(Reg::A1, Reg::S7);
        asm.jal_to(rt.cv_wait_addr());
        asm.j(check);
        asm.bind(go);
        asm.addi(Reg::T6, Reg::T6, -1);
        asm.sw(Reg::T6, Reg::S7, f1);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }
    // V: lock; count++; signal; unlock.
    let sem_v = asm.bind_symbol("__sem_v");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        asm.lw(Reg::T6, Reg::S7, f1);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, f1);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.jal_to(rt.cv_signal_addr());
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }

    // ---- reader–writer lock ------------------------------------------------
    // Writer-preference: readers defer to both an active writer and any
    // waiting writer, so overlapping readers cannot starve writers (the
    // failure mode a reader-preference lock exhibits under exactly the
    // adversarial schedules this test suite generates).
    // read_lock: lock; while writer != 0 || write_waiting != 0 wait;
    // readers++; unlock.
    let rw_read_lock = asm.bind_symbol("__rw_read_lock");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        let check = asm.bind_new();
        let wait = asm.label();
        let go = asm.label();
        asm.lw(Reg::T6, Reg::S7, f2);
        asm.bnez(Reg::T6, wait);
        asm.lw(Reg::T6, Reg::S7, f3);
        asm.beqz(Reg::T6, go);
        asm.bind(wait);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.mv(Reg::A1, Reg::S7);
        asm.jal_to(rt.cv_wait_addr());
        asm.j(check);
        asm.bind(go);
        asm.lw(Reg::T6, Reg::S7, f1);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, f1);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }
    // read_unlock: lock; readers--; if readers == 0 broadcast; unlock.
    let rw_read_unlock = asm.bind_symbol("__rw_read_unlock");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        asm.lw(Reg::T6, Reg::S7, f1);
        asm.addi(Reg::T6, Reg::T6, -1);
        asm.sw(Reg::T6, Reg::S7, f1);
        let skip = asm.label();
        asm.bnez(Reg::T6, skip);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.jal_to(rt.cv_broadcast_addr());
        asm.bind(skip);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }
    // write_lock: lock; write_waiting++; while writer != 0 || readers != 0
    // wait; write_waiting--; writer = 1; unlock.
    let rw_write_lock = asm.bind_symbol("__rw_write_lock");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        asm.lw(Reg::T6, Reg::S7, f3);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, f3);
        let check = asm.bind_new();
        let wait = asm.label();
        let go = asm.label();
        asm.lw(Reg::T6, Reg::S7, f2);
        asm.bnez(Reg::T6, wait);
        asm.lw(Reg::T6, Reg::S7, f1);
        asm.beqz(Reg::T6, go);
        asm.bind(wait);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.mv(Reg::A1, Reg::S7);
        asm.jal_to(rt.cv_wait_addr());
        asm.j(check);
        asm.bind(go);
        asm.lw(Reg::T6, Reg::S7, f3);
        asm.addi(Reg::T6, Reg::T6, -1);
        asm.sw(Reg::T6, Reg::S7, f3);
        asm.li(Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, f2);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }
    // write_unlock: lock; writer = 0; broadcast; unlock.
    let rw_write_unlock = asm.bind_symbol("__rw_write_unlock");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        asm.sw(Reg::ZERO, Reg::S7, f2);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.jal_to(rt.cv_broadcast_addr());
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S7]);
        asm.jr(Reg::RA);
    }

    // ---- barrier ------------------------------------------------------------
    // wait(barrier, parties): lock; gen = generation; arrived++;
    // if arrived == parties { arrived = 0; generation++; broadcast }
    // else while generation == gen wait; unlock.
    let barrier_wait = asm.bind_symbol("__barrier_wait");
    {
        crate::codegen::emit_push(asm, &[Reg::RA, Reg::S6, Reg::S7]);
        asm.mv(Reg::S7, Reg::A0);
        asm.mv(Reg::S6, Reg::A1); // parties
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_acquire_addr());
        asm.lw(Reg::T5, Reg::S7, f2); // generation snapshot
        asm.lw(Reg::T6, Reg::S7, f1);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S7, f1);
        let last = asm.label();
        let out = asm.label();
        asm.beq(Reg::T6, Reg::S6, last);
        // Not last: wait for the generation to advance. The snapshot must
        // survive cv_wait, so keep it in a saved register.
        asm.mv(Reg::S6, Reg::T5);
        let check = asm.bind_new();
        asm.lw(Reg::T6, Reg::S7, f2);
        asm.bne(Reg::T6, Reg::S6, out);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.mv(Reg::A1, Reg::S7);
        asm.jal_to(rt.cv_wait_addr());
        asm.j(check);
        asm.bind(last);
        asm.sw(Reg::ZERO, Reg::S7, f1);
        asm.addi(Reg::T5, Reg::T5, 1);
        asm.sw(Reg::T5, Reg::S7, f2);
        asm.addi(Reg::A0, Reg::S7, cv_off);
        asm.jal_to(rt.cv_broadcast_addr());
        asm.bind(out);
        asm.mv(Reg::A0, Reg::S7);
        asm.jal_to(rt.mutex_release_addr());
        crate::codegen::emit_pop(asm, &[Reg::RA, Reg::S6, Reg::S7]);
        asm.jr(Reg::RA);
    }

    SyncExtra {
        sem_p,
        sem_v,
        rw_read_lock,
        rw_read_unlock,
        rw_write_lock,
        rw_write_unlock,
        barrier_wait,
    }
}
