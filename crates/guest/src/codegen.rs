//! Small reusable code-generation idioms shared by the runtime, the
//! synchronization library, and the workloads.

use ras_isa::{abi, AluOp, Asm, CodeAddr, Reg};

/// Emits `yield()`: relinquish the processor. Clobbers `$v0`.
pub fn emit_yield(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_YIELD as i32);
    asm.syscall();
}

/// Emits `exit()`: terminate the calling thread. Does not return.
pub fn emit_exit(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
}

/// Emits `print(reg)`: log a value to the kernel output channel.
/// Clobbers `$v0` and `$a0`.
pub fn emit_print(asm: &mut Asm, reg: Reg) {
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    if reg != Reg::A0 {
        asm.mv(Reg::A0, reg);
    }
    asm.syscall();
}

/// Emits `spawn(entry, arg_reg)`; the child's thread id is left in `$v0`.
/// Clobbers `$a0`, `$a1`.
pub fn emit_spawn(asm: &mut Asm, entry: CodeAddr, arg: Reg) {
    if arg != Reg::A1 {
        asm.mv(Reg::A1, arg);
    }
    asm.li(Reg::V0, abi::SYS_SPAWN as i32);
    asm.li(Reg::A0, entry as i32);
    asm.syscall();
}

/// Emits `join(tid_reg)`. Clobbers `$v0`, `$a0`.
pub fn emit_join(asm: &mut Asm, tid: Reg) {
    asm.li(Reg::V0, abi::SYS_JOIN as i32);
    if tid != Reg::A0 {
        asm.mv(Reg::A0, tid);
    }
    asm.syscall();
}

/// Emits `wait(addr_reg, expected_reg)` — futex-style block while
/// `mem[addr] == expected`. Clobbers `$v0`, `$a0`, `$a1`.
pub fn emit_wait(asm: &mut Asm, addr: Reg, expected: Reg) {
    debug_assert!(addr != Reg::A1, "addr would be clobbered by expected move");
    if expected != Reg::A1 {
        asm.mv(Reg::A1, expected);
    }
    if addr != Reg::A0 {
        asm.mv(Reg::A0, addr);
    }
    asm.li(Reg::V0, abi::SYS_WAIT as i32);
    asm.syscall();
}

/// Emits `wake(addr_reg, count)`. Clobbers `$v0`, `$a0`, `$a1`.
pub fn emit_wake(asm: &mut Asm, addr: Reg, count: i32) {
    if addr != Reg::A0 {
        asm.mv(Reg::A0, addr);
    }
    asm.li(Reg::A1, count);
    asm.li(Reg::V0, abi::SYS_WAKE as i32);
    asm.syscall();
}

/// Emits a push of `regs` onto the stack (first register ends up at the
/// lowest address).
pub fn emit_push(asm: &mut Asm, regs: &[Reg]) {
    let bytes = 4 * regs.len() as i32;
    asm.addi(Reg::SP, Reg::SP, -bytes);
    for (i, r) in regs.iter().enumerate() {
        asm.sw(*r, Reg::SP, 4 * i as i32);
    }
}

/// Emits the matching pop for [`emit_push`] (pass the same list).
pub fn emit_pop(asm: &mut Asm, regs: &[Reg]) {
    for (i, r) in regs.iter().enumerate() {
        asm.lw(*r, Reg::SP, 4 * i as i32);
    }
    let bytes = 4 * regs.len() as i32;
    asm.addi(Reg::SP, Reg::SP, bytes);
}

/// Emits a deterministic linear-congruential step:
/// `state_reg = state_reg * 1103515245 + 12345` (glibc constants), leaving
/// the new state in place. Clobbers `$at`.
pub fn emit_lcg_step(asm: &mut Asm, state: Reg) {
    asm.li(Reg::AT, 1103515245u32 as i32);
    asm.alu(AluOp::Mul, state, state, Reg::AT);
    asm.addi(state, state, 12345);
}

/// Emits a busy-work loop burning roughly `2 * iterations` cycles,
/// using `scratch` as the counter.
pub fn emit_busy_work(asm: &mut Asm, iterations: i32, scratch: Reg) {
    asm.li(scratch, iterations);
    let top = asm.bind_new();
    asm.addi(scratch, scratch, -1);
    asm.bnez(scratch, top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::DataLayout;
    use ras_kernel::{Kernel, KernelConfig, Outcome, StrategyKind};
    use ras_machine::CpuProfile;

    fn boot_and_run(asm: Asm) -> Kernel {
        let mut cfg = KernelConfig::new(CpuProfile::r3000(), StrategyKind::None);
        cfg.mem_bytes = 1 << 20;
        cfg.stack_bytes = 4096;
        let mut k = Kernel::boot(cfg, asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
        assert_eq!(k.run(10_000_000), Outcome::Completed);
        k
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut asm = Asm::new();
        asm.li(Reg::S0, 11);
        asm.li(Reg::S1, 22);
        emit_push(&mut asm, &[Reg::S0, Reg::S1]);
        asm.li(Reg::S0, 0);
        asm.li(Reg::S1, 0);
        emit_pop(&mut asm, &[Reg::S0, Reg::S1]);
        emit_print(&mut asm, Reg::S0);
        emit_print(&mut asm, Reg::S1);
        emit_exit(&mut asm);
        let k = boot_and_run(asm);
        assert_eq!(k.output(), &[11, 22]);
    }

    #[test]
    fn lcg_matches_oracle() {
        let mut asm = Asm::new();
        asm.li(Reg::S0, 1);
        emit_lcg_step(&mut asm, Reg::S0);
        emit_lcg_step(&mut asm, Reg::S0);
        emit_print(&mut asm, Reg::S0);
        emit_exit(&mut asm);
        let k = boot_and_run(asm);
        let step = |s: u32| s.wrapping_mul(1103515245).wrapping_add(12345);
        assert_eq!(k.output(), &[step(step(1))]);
    }

    #[test]
    fn busy_work_burns_cycles() {
        let mut asm = Asm::new();
        emit_busy_work(&mut asm, 100, Reg::T0);
        emit_exit(&mut asm);
        let k = boot_and_run(asm);
        assert!(k.machine().clock() >= 200);
    }

    #[test]
    fn spawn_join_wait_wake_helpers_compose() {
        // Main spawns a child that stores 5 at address 0 and wakes main,
        // which waits for it.
        let mut asm = Asm::new();
        let to_main = asm.label();
        asm.j(to_main);
        let child = asm.here();
        asm.li(Reg::T0, 5);
        asm.sw(Reg::T0, Reg::ZERO, 0);
        emit_wake(&mut asm, Reg::ZERO, 1);
        emit_exit(&mut asm);
        asm.bind(to_main);
        asm.set_entry_here();
        asm.li(Reg::S0, 0);
        emit_spawn(&mut asm, child, Reg::S0);
        asm.mv(Reg::S1, Reg::V0);
        // Wait while mem[0] == 0.
        let check = asm.bind_new();
        emit_wait(&mut asm, Reg::ZERO, Reg::ZERO);
        asm.lw(Reg::T1, Reg::ZERO, 0);
        asm.beqz(Reg::T1, check);
        emit_join(&mut asm, Reg::S1);
        emit_print(&mut asm, Reg::T1);
        emit_exit(&mut asm);
        let k = boot_and_run(asm);
        assert_eq!(k.output(), &[5]);
    }
}
