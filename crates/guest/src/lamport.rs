//! Lamport's fast mutual exclusion algorithm — executable forms of
//! Figures 1 and 2 of the paper (software reservation, §2.2).
//!
//! Protocol (a) gives every lock its own reservation structure; protocol
//! (b) bundles the algorithm into a single "meta" Test-And-Set that guards
//! all regular atomic objects, trading memory accesses for `O(n)` total
//! space.
//!
//! # Data layout of a reservation structure
//!
//! ```text
//! offset 0      y  — owner (thread id + 1; 0 = free)
//! offset 4      x  — reservation (thread id + 1)
//! offset 8      b  — one "busy" word per thread slot, max_threads of them
//! ```
//!
//! A thread's unique identifier comes from `$gp` (set by the kernel at
//! spawn). The paper notes that computing the identifier and the address
//! of the thread's busy word dominates the difference between the two
//! protocols: protocol (a) computes them on entry *and* exit, protocol (b)
//! only on entry — which is why (b) is faster on the DECstation despite
//! more memory accesses.

use ras_isa::{Asm, CodeAddr, DataAddr, DataLayout, Reg};

use crate::codegen::emit_yield;

/// Emits the `__cthread_self` helper: returns the calling thread's id in
/// `$v1` via a table lookup, modeling the real cost of C-Threads'
/// `cthread_self()` — the paper attributes the (a)-vs-(b) performance
/// inversion to "the cost of having to compute a thread's unique
/// identifier and the address of its 'busy' bit", and notes that "a
/// dedicated per-thread hardware register would reverse this disparity."
/// Protocol (a) pays this on entry and exit; protocol (b) only on entry.
///
/// `table` must be a `max_threads`-entry identity array (allocate with
/// [`alloc_self_table`]). Clobbers `$t9` and `$v1`.
pub fn emit_cthread_self(asm: &mut Asm, table: DataAddr) -> CodeAddr {
    let entry = asm.bind_symbol("__cthread_self");
    asm.slli(Reg::T9, Reg::GP, 2);
    asm.lw(Reg::V1, Reg::T9, table as i32);
    asm.jr(Reg::RA);
    entry
}

/// Allocates the identity table backing [`emit_cthread_self`].
pub fn alloc_self_table(data: &mut DataLayout, max_threads: usize) -> DataAddr {
    let ids: Vec<u32> = (0..max_threads as u32).collect();
    data.array_init("__self_table", &ids)
}

/// Bytes occupied by one reservation structure for `max_threads` threads.
pub fn lock_bytes(max_threads: usize) -> u32 {
    8 + 4 * max_threads as u32
}

/// Allocates a reservation structure in the data segment.
pub fn alloc_lock(data: &mut DataLayout, name: &str, max_threads: usize) -> DataAddr {
    data.array(name, (lock_bytes(max_threads) / 4) as usize, 0)
}

/// Emits the body of Lamport's *enter* protocol (Figure 1 lines 1–18)
/// inline at the current position. `base` holds the structure's byte
/// address; falls through with the lock held.
///
/// If `self_fn` is given, the thread id is obtained by calling
/// `__cthread_self` (clobbering `$ra`, `$v1`, `$t9`); otherwise it is read
/// from the dedicated `$gp` register.
///
/// Clobbers `$t0..$t5` and `$v0` (via `yield`); preserves `base` and the
/// argument registers other than those listed.
pub fn emit_enter_body(asm: &mut Asm, base: Reg, max_threads: usize, self_fn: Option<CodeAddr>) {
    assert!(base != Reg::T0 && base != Reg::T1 && base != Reg::T3 && base != Reg::T4);
    // Identifier and busy-bit address are computed once on entry.
    match self_fn {
        Some(f) => {
            asm.jal_to(f);
        }
        None => {
            asm.mv(Reg::V1, Reg::GP);
        }
    }
    let start = asm.bind_new();
    // t3 = i (own id + 1); t4 = &b[i].
    asm.addi(Reg::T3, Reg::V1, 1);
    asm.slli(Reg::T4, Reg::V1, 2);
    asm.add(Reg::T4, Reg::T4, base);
    asm.addi(Reg::T4, Reg::T4, 8);
    // b[i] := true; x := i.
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::T4, 0);
    asm.sw(Reg::T3, base, 4);
    // if y <> 0 then contention.
    let contention = asm.label();
    let enter = asm.label();
    asm.lw(Reg::T1, base, 0);
    asm.bnez(Reg::T1, contention);
    // y := i; if x <> i then collision.
    asm.sw(Reg::T3, base, 0);
    asm.lw(Reg::T1, base, 4);
    asm.beq(Reg::T1, Reg::T3, enter);
    // Collision (lines 11–18): b[i] := false; wait for all busy bits.
    asm.sw(Reg::ZERO, Reg::T4, 0);
    asm.addi(Reg::T5, base, 8);
    asm.li(Reg::T2, max_threads as i32);
    let for_j = asm.bind_new();
    let j_clear = asm.label();
    asm.lw(Reg::T1, Reg::T5, 0);
    asm.beqz(Reg::T1, j_clear);
    emit_yield(asm);
    asm.j(for_j);
    asm.bind(j_clear);
    asm.addi(Reg::T5, Reg::T5, 4);
    asm.addi(Reg::T2, Reg::T2, -1);
    asm.bnez(Reg::T2, for_j);
    // if y <> i then await (y = 0); goto start.
    asm.lw(Reg::T1, base, 0);
    asm.beq(Reg::T1, Reg::T3, enter);
    let await_y2 = asm.bind_new();
    let retry2 = asm.label();
    asm.lw(Reg::T1, base, 0);
    asm.beqz(Reg::T1, retry2);
    emit_yield(asm);
    asm.j(await_y2);
    asm.bind(retry2);
    asm.j(start);
    // Contention (lines 4–7): b[i] := false; await (y = 0); goto start.
    asm.bind(contention);
    asm.sw(Reg::ZERO, Reg::T4, 0);
    let await_y = asm.bind_new();
    let retry = asm.label();
    asm.lw(Reg::T1, base, 0);
    asm.beqz(Reg::T1, retry);
    emit_yield(asm);
    asm.j(await_y);
    asm.bind(retry);
    asm.j(start);
    asm.bind(enter);
}

/// Emits the body of the *exit* protocol (Figure 1 lines 21–22) inline:
/// `y := 0; b[i] := false`. Clobbers `$t4` (plus `$ra`, `$v1`, `$t9` when
/// `self_fn` recomputes the id — protocol (a) pays that on exit too).
pub fn emit_exit_body(asm: &mut Asm, base: Reg, self_fn: Option<CodeAddr>) {
    assert!(base != Reg::T4);
    match self_fn {
        Some(f) => {
            asm.jal_to(f);
        }
        None => {
            asm.mv(Reg::V1, Reg::GP);
        }
    }
    asm.sw(Reg::ZERO, base, 0);
    asm.slli(Reg::T4, Reg::V1, 2);
    asm.add(Reg::T4, Reg::T4, base);
    asm.addi(Reg::T4, Reg::T4, 8);
    asm.sw(Reg::ZERO, Reg::T4, 0);
}

/// Emits protocol (a)'s out-of-line functions `__lamport_enter` and
/// `__lamport_exit` (`$a0` = structure address). Both recompute the
/// thread identifier via `self_fn`, matching the paper's accounting that
/// protocol (a) pays the id/busy-bit computation "on entry and exit to a
/// critical section." Returns their entry addresses.
pub fn emit_functions(
    asm: &mut Asm,
    max_threads: usize,
    self_fn: CodeAddr,
) -> (CodeAddr, CodeAddr) {
    // `$t8` carries the return address across the internal
    // `__cthread_self` call (leaf-function linkage, cheaper than a stack
    // frame — callers already treat `$t8`/`$t9` as clobbered).
    let enter = asm.bind_symbol("__lamport_enter");
    asm.mv(Reg::T8, Reg::RA);
    emit_enter_body(asm, Reg::A0, max_threads, Some(self_fn));
    asm.jr(Reg::T8);
    let exit = asm.bind_symbol("__lamport_exit");
    asm.mv(Reg::T8, Reg::RA);
    emit_exit_body(asm, Reg::A0, Some(self_fn));
    asm.jr(Reg::T8);
    (enter, exit)
}

/// Emits protocol (b)'s bundled meta Test-And-Set function (Figure 2):
/// Lamport's algorithm on one global meta structure guards the simple
/// Test-And-Set of the word at `$a0`. Returns the function address.
///
/// `meta_base` is the address of the meta reservation structure (allocate
/// with [`alloc_lock`]). The old value of the word is left in `$v0`.
pub fn emit_meta_tas(
    asm: &mut Asm,
    meta_base: DataAddr,
    max_threads: usize,
    self_fn: CodeAddr,
) -> CodeAddr {
    let entry = asm.bind_symbol("__meta_tas");
    asm.mv(Reg::T8, Reg::RA);
    asm.li(Reg::A1, meta_base as i32);
    emit_enter_body(asm, Reg::A1, max_threads, Some(self_fn));
    // Critical section, exactly Figure 2: if p = 0 then result := 0;
    // p := 1 else result := 1. The store MUST be conditional: the clear
    // (`p := 0`) is a bare store outside the meta lock, so an
    // unconditional store here could re-lock a lock released between this
    // function's read and write.
    let already_set = asm.label();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.bnez(Reg::V0, already_set);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.bind(already_set);
    // Protocol (b) computes the identifier only on entry; the exit reuses
    // the value still in `$v1`.
    emit_exit_body(asm, Reg::A1, None);
    asm.jr(Reg::T8);
    entry
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::DataLayout;

    #[test]
    fn lock_bytes_scales_with_threads() {
        assert_eq!(lock_bytes(1), 12);
        assert_eq!(lock_bytes(8), 40);
    }

    #[test]
    fn alloc_lock_reserves_the_right_span() {
        let mut data = DataLayout::new();
        let a = alloc_lock(&mut data, "l1", 4);
        let b = data.word("after", 0);
        assert_eq!(b - a, lock_bytes(4));
    }

    #[test]
    fn enter_body_uses_no_forbidden_registers() {
        // The body must not clobber s-registers or the argument registers
        // beyond its contract: scan the emitted instructions.
        let mut asm = Asm::new();
        emit_enter_body(&mut asm, Reg::A0, 4, None);
        asm.halt();
        let p = asm.finish().unwrap();
        for inst in p.code() {
            if let ras_isa::Inst::Sw { .. } | ras_isa::Inst::Lw { .. } = inst {
                continue;
            }
            let writes = match *inst {
                ras_isa::Inst::Li { rd, .. } => Some(rd),
                ras_isa::Inst::Alu { rd, .. } => Some(rd),
                ras_isa::Inst::AluI { rd, .. } => Some(rd),
                _ => None,
            };
            if let Some(rd) = writes {
                assert!(
                    (Reg::T0..=Reg::T5).contains(&rd) || rd == Reg::V0 || rd == Reg::V1,
                    "unexpected clobber of {rd}"
                );
            }
        }
    }

    #[test]
    fn functions_have_distinct_entries() {
        let mut asm = Asm::new();
        let self_fn = emit_cthread_self(&mut asm, 0x200);
        let (enter, exit) = emit_functions(&mut asm, 4, self_fn);
        assert!(enter < exit);
        let p = asm.finish().unwrap();
        assert_eq!(p.symbol("__lamport_enter"), Some(enter));
        assert_eq!(p.symbol("__lamport_exit"), Some(exit));
    }

    #[test]
    fn meta_tas_embeds_enter_and_exit() {
        let mut asm = Asm::new();
        let self_fn = emit_cthread_self(&mut asm, 0x200);
        let entry = emit_meta_tas(&mut asm, 0x100, 4, self_fn);
        assert!(entry > self_fn);
        let p = asm.finish().unwrap();
        // Ends in jr ra.
        assert_eq!(
            p.fetch(p.len() as u32 - 1).unwrap().opcode(),
            ras_isa::Opcode::Jr
        );
    }
}
