//! Guest-side code generation for the uniprocessor simulator: every
//! mutual-exclusion mechanism evaluated in *Fast Mutual Exclusion for
//! Uniprocessors* (Bershad, Redell & Ellis, ASPLOS 1992), a C-Threads-like
//! synchronization library built on top of them, and the paper's benchmark
//! and application workloads.
//!
//! The central abstraction is [`Mechanism`]: pick one, build a
//! [`GuestBuilder`], and the same workload code runs over restartable
//! atomic sequences (registered, inlined, or user-level), kernel
//! emulation, hardware interlocked instructions, the i860 restart bit, or
//! Lamport's software reservation — only the generated fast paths differ.
//!
//! # Example
//!
//! ```
//! use ras_guest::{workloads, Mechanism};
//! use ras_kernel::Outcome;
//! use ras_machine::CpuProfile;
//!
//! let spec = workloads::CounterSpec { iterations: 1000, ..Default::default() };
//! let built = workloads::counter_loop(Mechanism::RasInline, &spec);
//! let mut config = built.kernel_config(CpuProfile::r3000());
//! config.quantum = 50_000;
//! let mut kernel = built.boot(config)?;
//! assert_eq!(kernel.run(u64::MAX), Outcome::Completed);
//! assert_eq!(kernel.read_word(built.data.symbol("counter").unwrap())?, 1000);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codegen;
pub mod lamport;
mod lock;
mod mechanism;
pub mod rseq;
mod runtime;
pub mod sync_extra;
pub mod tas;
pub mod workloads;

pub use mechanism::Mechanism;
pub use runtime::{BuiltGuest, GuestBuilder, SyncRuntime};
pub use sync_extra::{alloc_barrier, alloc_rwlock, alloc_semaphore, emit_sync_extra, SyncExtra};
pub use tas::SeqRange;
