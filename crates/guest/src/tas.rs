//! Test-And-Set code generators — the executable forms of Figures 3, 4,
//! and 5 of the paper.
//!
//! Every emitter follows one calling convention:
//!
//! * `$a0` holds the byte address of the lock word on entry;
//! * the old value of the word is left in `$v0` (0 = was free);
//! * `$t0` is clobbered; `$a0` is preserved;
//! * out-of-line forms clobber `$ra`.

use ras_isa::{abi, Asm, CodeAddr, Reg};

pub use ras_isa::SeqRange;

/// Emits the out-of-line registered Test-And-Set function of Figure 4:
///
/// ```text
/// Test-And-Set:
///   lw   v0, (a0)   # v0 = contents of a0     ─┐
///   li   t0, 1      # temporary t0 gets 1      │ restartable sequence
///   sw   t0, (a0)   # store 1                 ─┘
///   jr   ra         # return, result in v0
/// ```
///
/// (The paper's MIPS version puts the store in the `j ra` branch delay
/// slot; this ISA has no delay slots, so the store precedes the return —
/// the sequence is the same three-instruction load/set/store window.)
///
/// Returns the function address and the sequence range to register with
/// [`ras_isa::abi::SYS_RAS_REGISTER`].
pub fn emit_tas_registered(asm: &mut Asm) -> (CodeAddr, SeqRange) {
    let entry = asm.bind_symbol("__tas_registered");
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.jr(Reg::RA);
    let range = SeqRange {
        start: entry,
        len: 3,
    };
    asm.declare_seq(range);
    (entry, range)
}

/// Emits Figure 5's inlined designated Test-And-Set sequence at the
/// current position:
///
/// ```text
///   lw        v0, (a0)     # get value of lock
///   li        t0, 1        # locked value
///   bnez      v0, out      # branch if not common case
///   landmark               # special landmark no-op
///   sw        t0, (a0)     # store locked value
/// out:
/// ```
///
/// The shape matches the kernel's `tas` [`ras_kernel::SequenceTemplate`]
/// exactly: `lw; li; branch; landmark; sw`. When the lock is already held
/// the branch leaves the sequence before the store, returning the old
/// value — a Test-And-Set that skips the redundant store, as in the
/// paper's mutex-acquire sequence.
pub fn emit_tas_inline(asm: &mut Asm) -> SeqRange {
    let start = asm.here();
    let out = asm.label();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.bnez(Reg::V0, out);
    asm.landmark();
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.bind(out);
    let range = SeqRange { start, len: 5 };
    asm.declare_seq(range);
    range
}

/// Emits a kernel-emulated Test-And-Set (§2.3): a trap that performs the
/// read-modify-write with interrupts disabled. ~100 instructions of
/// kernel time on the R3000.
pub fn emit_tas_kernel(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_TAS as i32);
    asm.syscall();
}

/// Emits the hardware memory-interlocked Test-And-Set (§2.1). Requires a
/// profile with `has_interlocked`.
pub fn emit_tas_interlocked(asm: &mut Asm) {
    asm.tas(Reg::V0, Reg::A0);
}

/// Emits an i860-style sequence protected by the hardware restart bit
/// (§7): `begin_atomic` defers interrupts until the committing store.
pub fn emit_tas_hardware_bit(asm: &mut Asm) {
    asm.begin_atomic();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
}

/// Emits the atomic clear (lock release). A single aligned word store is
/// atomic on every mechanism, as the paper notes for Figure 3's
/// `AtomicClear`.
pub fn emit_clear(asm: &mut Asm) {
    asm.sw(Reg::ZERO, Reg::A0, 0);
}

/// Emits an inlined designated *exchange* sequence: atomically
/// `v0 <- mem[a0]; mem[a0] <- a1`. Shape `lw; landmark; sw`, matching the
/// kernel's `xchg` template. Three instructions — the cheapest designated
/// read-modify-write.
pub fn emit_xchg_inline(asm: &mut Asm) -> SeqRange {
    let start = asm.here();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.landmark();
    asm.sw(Reg::A1, Reg::A0, 0);
    let range = SeqRange { start, len: 3 };
    asm.declare_seq(range);
    range
}

/// Emits an inlined designated *compare-and-swap* sequence: if
/// `mem[a0] == a1` then `mem[a0] <- a2`; the old value is left in `v0`
/// either way. Shape `lw; branch; landmark; sw`, matching the kernel's
/// `cas` template. With CAS, every wait-free construction of [Herlihy 91]
/// — which §4.1 cites as a client of richer recovery — becomes available
/// on a uniprocessor without hardware support.
pub fn emit_cas_inline(asm: &mut Asm) -> SeqRange {
    let start = asm.here();
    let out = asm.label();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.bne(Reg::V0, Reg::A1, out);
    asm.landmark();
    asm.sw(Reg::A2, Reg::A0, 0);
    asm.bind(out);
    let range = SeqRange { start, len: 4 };
    asm.declare_seq(range);
    range
}

/// Emits an inlined designated *fetch-and-add* sequence:
/// `mem[a0] <- mem[a0] + delta`, leaving the **new** value in `v0`.
/// Shape `lw; addi; landmark; sw`, matching the kernel's `faa` template.
pub fn emit_faa_inline(asm: &mut Asm, delta: i32) -> SeqRange {
    let start = asm.here();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.addi(Reg::V0, Reg::V0, delta);
    asm.landmark();
    asm.sw(Reg::V0, Reg::A0, 0);
    let range = SeqRange { start, len: 4 };
    asm.declare_seq(range);
    range
}

/// The 4-instruction replacement used when explicit registration is
/// refused by the kernel (§3.1): the thread package overwrites the
/// restartable sequence with a conventional kernel-emulation call,
/// preserving binary compatibility. Fits exactly in the Figure 4 window.
pub fn emulation_fallback_body() -> Vec<ras_isa::Inst> {
    let mut asm = Asm::new();
    emit_tas_kernel(&mut asm);
    asm.jr(Reg::RA);
    asm.nop();
    asm.finish().expect("straight-line code").code().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::Opcode;

    #[test]
    fn registered_tas_matches_figure_4() {
        let mut asm = Asm::new();
        let (entry, range) = emit_tas_registered(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(entry, 0);
        assert_eq!(range, SeqRange { start: 0, len: 3 });
        assert_eq!(range.end(), 3);
        let ops: Vec<Opcode> = (0..4).map(|i| p.fetch(i).unwrap().opcode()).collect();
        assert_eq!(ops, vec![Opcode::Lw, Opcode::Li, Opcode::Sw, Opcode::Jr]);
        assert_eq!(p.symbol("__tas_registered"), Some(0));
    }

    #[test]
    fn inline_tas_matches_the_designated_template() {
        let mut asm = Asm::new();
        asm.nop();
        let range = emit_tas_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        assert_eq!(range.start, 1);
        assert_eq!(range.len, 5);
        let ops: Vec<Opcode> = (1..6).map(|i| p.fetch(i).unwrap().opcode()).collect();
        assert_eq!(
            ops,
            vec![
                Opcode::Lw,
                Opcode::Li,
                Opcode::Branch,
                Opcode::Landmark,
                Opcode::Sw
            ]
        );
        // The branch must exit past the store.
        match p.fetch(3).unwrap() {
            ras_isa::Inst::Branch { target, .. } => assert_eq!(target, 6),
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn inline_tas_is_recognized_by_the_kernel_matcher() {
        let mut asm = Asm::new();
        asm.nop();
        let range = emit_tas_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        let set = ras_kernel::DesignatedSet::standard();
        for pc in range.start + 1..range.end() {
            assert_eq!(set.stage2(&p, pc), Some(range.start), "pc={pc}");
        }
        assert_eq!(set.stage2(&p, range.end()), None);
    }

    #[test]
    fn fallback_body_fits_the_figure_4_window() {
        let body = emulation_fallback_body();
        assert!(body.len() <= 4, "must fit over the registered sequence");
        assert_eq!(body[0].opcode(), Opcode::Li);
        assert_eq!(body[1].opcode(), Opcode::Syscall);
        assert_eq!(body[2].opcode(), Opcode::Jr);
    }

    #[test]
    fn xchg_cas_faa_match_their_kernel_templates() {
        let set = ras_kernel::DesignatedSet::standard();
        // xchg
        let mut asm = Asm::new();
        asm.nop();
        let r = emit_xchg_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        for pc in r.start + 1..r.end() {
            assert_eq!(set.stage2(&p, pc), Some(r.start), "xchg pc={pc}");
        }
        // cas
        let mut asm = Asm::new();
        asm.nop();
        let r = emit_cas_inline(&mut asm);
        asm.halt();
        let p = asm.finish().unwrap();
        for pc in r.start + 1..r.end() {
            assert_eq!(set.stage2(&p, pc), Some(r.start), "cas pc={pc}");
        }
        // faa
        let mut asm = Asm::new();
        asm.nop();
        let r = emit_faa_inline(&mut asm, 5);
        asm.halt();
        let p = asm.finish().unwrap();
        for pc in r.start + 1..r.end() {
            assert_eq!(set.stage2(&p, pc), Some(r.start), "faa pc={pc}");
        }
    }

    #[test]
    fn kernel_and_interlocked_forms_are_two_instructions_or_fewer() {
        let mut asm = Asm::new();
        emit_tas_kernel(&mut asm);
        assert_eq!(asm.here(), 2);
        let mut asm = Asm::new();
        emit_tas_interlocked(&mut asm);
        assert_eq!(asm.here(), 1);
    }
}
