//! The lock-server telemetry workload: N client threads hammering M
//! locks under a configurable arrival pattern.
//!
//! This is the observability counterpart of the §5.1 microbenchmark: a
//! synthetic "lock server" whose contention structure is known ahead of
//! time, used to exercise the streaming telemetry pipeline (wait/hold
//! histograms, sharded counters, runqueue depth) under realistic skew.
//! Each client walks a precomputed schedule of lock indices — uniform,
//! Zipfian-skewed toward lock 0, or uniform with staggered bursty
//! start-up — acquiring the lock, bumping that lock's operation counter,
//! optionally spinning "think time", and releasing.
//!
//! The schedule is generated host-side with a deterministic LCG and
//! baked into the data image, so guest execution stays branch-simple and
//! every run with the same spec touches the same sequence of locks: the
//! telemetry differential tests depend on that determinism. Correctness
//! is checked by summing the per-lock `ops_done` counters — under any
//! schedule the total must be exactly `clients × ops_per_client`.

use ras_isa::{abi, AluOp, DataAddr, Reg};

use crate::codegen::{emit_busy_work, emit_exit, emit_join, emit_spawn};
use crate::{BuiltGuest, GuestBuilder, Mechanism};

/// How clients pick locks and pace themselves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Arrival {
    /// Every lock equally likely; clients start together.
    #[default]
    Uniform,
    /// Lock `i` drawn with weight `1/(i+1)` — a hot lock 0 with a long
    /// tail, the classic contended-server skew.
    Zipfian,
    /// Uniform lock choice, but clients start in four staggered waves
    /// (`tid mod 4` sleeps of `burst_gap` cycles each), so load arrives
    /// in bursts instead of a steady stream.
    Bursty,
}

impl Arrival {
    /// The stable identifier used in snapshots and CLI flags.
    pub fn id(&self) -> &'static str {
        match self {
            Arrival::Uniform => "uniform",
            Arrival::Zipfian => "zipfian",
            Arrival::Bursty => "bursty",
        }
    }

    /// Parses an [`Arrival::id`] string.
    pub fn from_id(id: &str) -> Option<Arrival> {
        match id {
            "uniform" => Some(Arrival::Uniform),
            "zipfian" => Some(Arrival::Zipfian),
            "bursty" => Some(Arrival::Bursty),
            _ => None,
        }
    }
}

/// Parameters for [`lock_server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockServerSpec {
    /// Number of client threads.
    pub clients: usize,
    /// Number of distinct locks the server exports.
    pub locks: usize,
    /// Lock operations per client.
    pub ops_per_client: u32,
    /// Arrival/skew pattern.
    pub arrival: Arrival,
    /// Busy-work iterations inside each critical section ("think time").
    pub think: u32,
    /// LCG seed for the host-side schedule generator.
    pub seed: u64,
    /// Stagger between bursty start-up waves, in cycles (ignored unless
    /// [`Arrival::Bursty`]).
    pub burst_gap: u32,
}

impl Default for LockServerSpec {
    fn default() -> LockServerSpec {
        LockServerSpec {
            clients: 8,
            locks: 4,
            ops_per_client: 24,
            arrival: Arrival::Uniform,
            think: 0,
            seed: 0x5EED_1001,
            burst_gap: 5_000,
        }
    }
}

impl LockServerSpec {
    /// Total lock operations across all clients.
    pub fn total_ops(&self) -> u64 {
        u64::from(self.ops_per_client) * self.clients as u64
    }
}

/// The schedule table length (entries per table, shared by all clients;
/// each client starts at a thread-dependent offset). Power of two so the
/// guest can wrap with a single mask.
const TABLE_LEN: usize = 512;

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 33
}

/// Generates the lock-index schedule for `spec` — the exact sequence the
/// guest walks, exposed for tests that recompute expected contention.
pub fn schedule(spec: &LockServerSpec) -> Vec<usize> {
    let mut state = spec.seed | 1;
    match spec.arrival {
        Arrival::Uniform | Arrival::Bursty => (0..TABLE_LEN)
            .map(|_| (lcg(&mut state) % spec.locks as u64) as usize)
            .collect(),
        Arrival::Zipfian => {
            // Harmonic weights w_i = K/(i+1) in fixed point; draw by
            // inverting the cumulative table.
            const FIX: u64 = 1 << 20;
            let mut cdf = Vec::with_capacity(spec.locks);
            let mut acc = 0u64;
            for i in 0..spec.locks {
                acc += FIX / (i as u64 + 1);
                cdf.push(acc);
            }
            let total = *cdf.last().expect("at least one lock");
            (0..TABLE_LEN)
                .map(|_| {
                    let u = lcg(&mut state) % total;
                    cdf.partition_point(|&c| c <= u)
                })
                .collect()
        }
    }
}

/// Builds the lock-server workload for `mechanism`.
///
/// Data symbols: `lock0..lock{M-1}` (raw locks), `ops_done` (one counter
/// per lock, incremented inside the critical section), `sched_lock` /
/// `sched_ctr` (the baked schedule as lock / counter byte addresses),
/// and `tids`.
///
/// # Panics
///
/// Panics on a degenerate spec (zero clients, locks, or ops).
pub fn lock_server(mechanism: Mechanism, spec: &LockServerSpec) -> BuiltGuest {
    assert!(
        spec.clients > 0 && spec.locks > 0 && spec.ops_per_client > 0,
        "degenerate spec"
    );
    let mut b = GuestBuilder::new(mechanism, spec.clients + 1);
    let (asm, data, rt) = b.parts();
    let locks: Vec<DataAddr> = (0..spec.locks)
        .map(|i| rt.alloc_raw_lock(data, &format!("lock{i}")))
        .collect();
    let ops_done = data.array("ops_done", spec.locks, 0);
    let plan = schedule(spec);
    let sched_lock_words: Vec<u32> = plan.iter().map(|&i| locks[i]).collect();
    let sched_ctr_words: Vec<u32> = plan.iter().map(|&i| ops_done + 4 * i as u32).collect();
    let sched_lock = data.array_init("sched_lock", &sched_lock_words);
    let sched_ctr = data.array_init("sched_ctr", &sched_ctr_words);
    let tids = data.array("tids", spec.clients, 0);

    // ---- client (a0 = ops) -----------------------------------------------
    let client = asm.bind_symbol("client");
    asm.mv(Reg::S0, Reg::A0);
    asm.li(Reg::S1, sched_lock as i32);
    asm.li(Reg::S2, sched_ctr as i32);
    // Thread-dependent start offset: spread clients across the shared
    // table with a multiplicative hash of the thread id (in $gp).
    asm.li(Reg::AT, 0x9E37_79B1u32 as i32);
    asm.alu(AluOp::Mul, Reg::T0, Reg::GP, Reg::AT);
    asm.andi(Reg::T0, Reg::T0, TABLE_LEN as i32 - 1);
    asm.slli(Reg::S3, Reg::T0, 2);
    if spec.arrival == Arrival::Bursty {
        // Four staggered admission waves: wave = tid mod 4.
        asm.andi(Reg::T0, Reg::GP, 3);
        asm.li(Reg::T1, spec.burst_gap as i32);
        asm.alu(AluOp::Mul, Reg::A0, Reg::T0, Reg::T1);
        asm.li(Reg::V0, abi::SYS_SLEEP as i32);
        asm.syscall();
    }
    let top = asm.bind_new();
    // Load this step's lock and counter addresses into callee-ish S regs
    // before entering: the raw enter/exit helpers clobber V0/T0-T5/RA.
    asm.add(Reg::T6, Reg::S1, Reg::S3);
    asm.lw(Reg::S5, Reg::T6, 0);
    asm.add(Reg::T6, Reg::S2, Reg::S3);
    asm.lw(Reg::S4, Reg::T6, 0);
    asm.mv(Reg::A0, Reg::S5);
    rt.emit_raw_enter(asm);
    asm.lw(Reg::T6, Reg::S4, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::S4, 0);
    if spec.think > 0 {
        emit_busy_work(asm, spec.think as i32, Reg::T5);
    }
    asm.mv(Reg::A0, Reg::S5);
    rt.emit_raw_exit(asm);
    asm.addi(Reg::S3, Reg::S3, 4);
    asm.andi(Reg::S3, Reg::S3, 4 * TABLE_LEN as i32 - 1);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    emit_exit(asm);

    // ---- main --------------------------------------------------------------
    let main = asm.bind_symbol("main");
    for c in 0..spec.clients {
        asm.li(Reg::T0, spec.ops_per_client as i32);
        emit_spawn(asm, client, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * c as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for c in 0..spec.clients {
        asm.li(Reg::T1, (tids + 4 * c as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::RA);

    b.finish(main).expect("lock-server workload assembles")
}

/// The lock-word addresses of a built lock server, in lock order — the
/// watch list to hand to `Kernel::enable_telemetry`.
pub fn lock_addresses(built: &BuiltGuest, spec: &LockServerSpec) -> Vec<u32> {
    (0..spec.locks)
        .map(|i| {
            built
                .data
                .symbol(&format!("lock{i}"))
                .expect("lock symbol exists")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_in_range() {
        let spec = LockServerSpec::default();
        let a = schedule(&spec);
        let b = schedule(&spec);
        assert_eq!(a, b);
        assert_eq!(a.len(), TABLE_LEN);
        assert!(a.iter().all(|&i| i < spec.locks));
        // Uniform should touch every lock at least once in 512 draws.
        for lock in 0..spec.locks {
            assert!(a.contains(&lock), "lock {lock} never scheduled");
        }
    }

    #[test]
    fn zipfian_schedule_skews_toward_lock_zero() {
        let spec = LockServerSpec {
            locks: 8,
            arrival: Arrival::Zipfian,
            ..LockServerSpec::default()
        };
        let plan = schedule(&spec);
        let hits = |l: usize| plan.iter().filter(|&&i| i == l).count();
        assert!(
            hits(0) > hits(7) * 2,
            "lock 0 ({}) should dominate lock 7 ({})",
            hits(0),
            hits(7)
        );
        assert!(plan.iter().all(|&i| i < spec.locks));
    }

    #[test]
    fn builds_for_every_mechanism() {
        let spec = LockServerSpec {
            clients: 3,
            locks: 2,
            ops_per_client: 4,
            ..LockServerSpec::default()
        };
        for mechanism in Mechanism::all() {
            let built = lock_server(mechanism, &spec);
            let addrs = lock_addresses(&built, &spec);
            assert_eq!(addrs.len(), 2);
            assert!(built.data.symbol("ops_done").is_some());
            assert!(built.data.symbol("sched_lock").is_some());
        }
    }
}
