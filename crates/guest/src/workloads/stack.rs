//! A lock-free Treiber stack built entirely on designated
//! compare-and-swap sequences — the kind of "richer" atomic sequence
//! §4.1 of the paper anticipates beyond Test-And-Set (citing Herlihy's
//! wait-free constructions). No locks, no hardware atomics: every push,
//! pop, and statistics update commits through a restartable CAS or
//! fetch-and-add.
//!
//! Workers first push their private arena of nodes (nodes are never
//! reused, so ABA cannot arise), synchronize at a barrier, then pop until
//! they have taken their share. The conservation invariant — every pushed
//! value popped exactly once — only holds if CAS is truly atomic under
//! preemption.

use ras_isa::{Asm, Reg};

use crate::codegen::{emit_exit, emit_join, emit_spawn, emit_yield};
use crate::sync_extra::{alloc_barrier, emit_sync_extra};
use crate::{tas, BuiltGuest, GuestBuilder, Mechanism};

/// Parameters for [`treiber_stack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSpec {
    /// Worker threads.
    pub workers: usize,
    /// Nodes pushed (then popped) per worker.
    pub nodes_per_worker: u32,
}

impl Default for StackSpec {
    fn default() -> StackSpec {
        StackSpec {
            workers: 4,
            nodes_per_worker: 200,
        }
    }
}

impl StackSpec {
    /// Total nodes flowing through the stack.
    pub fn total_nodes(&self) -> u32 {
        self.workers as u32 * self.nodes_per_worker
    }

    /// Expected sum of all popped values: values are `1..=total`.
    pub fn expected_sum(&self) -> u32 {
        (1..=self.total_nodes()).fold(0u32, |a, b| a.wrapping_add(b))
    }
}

/// Emits an inline Treiber push: `$s1` = node byte address (node layout:
/// `[value, next]`). Clobbers `$t0..$t1`, `$v0`, `$a0..$a2`.
fn emit_push(asm: &mut Asm, head_addr: u32) {
    let retry = asm.bind_new();
    let done = asm.label();
    asm.li(Reg::A0, head_addr as i32);
    asm.lw(Reg::T1, Reg::A0, 0); // expected old head
    asm.sw(Reg::T1, Reg::S1, 4); // node.next = old head (pre-publication)
    asm.mv(Reg::A1, Reg::T1);
    asm.mv(Reg::A2, Reg::S1);
    tas::emit_cas_inline(asm); // head: old -> node
    asm.beq(Reg::V0, Reg::T1, done);
    asm.j(retry);
    asm.bind(done);
}

/// Emits an inline Treiber pop; the popped node address lands in `$s2`
/// (0 = stack was empty). Clobbers `$t0..$t2`, `$v0`, `$a0..$a2`.
fn emit_pop(asm: &mut Asm, head_addr: u32) {
    let retry = asm.bind_new();
    let done = asm.label();
    asm.li(Reg::A0, head_addr as i32);
    asm.lw(Reg::T1, Reg::A0, 0); // candidate head
    asm.mv(Reg::S2, Reg::T1);
    asm.beqz(Reg::T1, done); // empty
    asm.lw(Reg::T2, Reg::T1, 4); // next
    asm.mv(Reg::A1, Reg::T1);
    asm.mv(Reg::A2, Reg::T2);
    tas::emit_cas_inline(asm); // head: candidate -> next
    asm.beq(Reg::V0, Reg::T1, done);
    asm.j(retry);
    asm.bind(done);
}

/// Emits a lock-free `mem[addr] += $s5` using a CAS retry loop.
/// Clobbers `$t0..$t2`, `$v0`, `$a0..$a2`.
fn emit_atomic_add_reg(asm: &mut Asm, addr: u32) {
    let retry = asm.bind_new();
    let done = asm.label();
    asm.li(Reg::A0, addr as i32);
    asm.lw(Reg::T1, Reg::A0, 0);
    asm.add(Reg::T2, Reg::T1, Reg::S5);
    asm.mv(Reg::A1, Reg::T1);
    asm.mv(Reg::A2, Reg::T2);
    tas::emit_cas_inline(asm);
    asm.beq(Reg::V0, Reg::T1, done);
    asm.j(retry);
    asm.bind(done);
}

/// Builds the lock-free stack workload.
///
/// Data symbols: `popped_total` (count of successful pops, via designated
/// fetch-and-add) and `popped_sum` (wrapping sum of popped values, via a
/// CAS loop) — the whole program is lock-free.
///
/// # Panics
///
/// Panics unless `mechanism` is [`Mechanism::RasInline`]: the lock-free
/// structure needs inline CAS sequences, which only the designated-
/// sequence kernel recognizes.
pub fn treiber_stack(mechanism: Mechanism, spec: &StackSpec) -> BuiltGuest {
    assert_eq!(
        mechanism,
        Mechanism::RasInline,
        "the lock-free stack requires designated CAS sequences"
    );
    assert!(spec.workers >= 1 && spec.nodes_per_worker >= 1);
    let mut b = GuestBuilder::new(mechanism, spec.workers + 1);
    let (asm, data, rt) = b.parts();
    let extra = emit_sync_extra(asm, rt);
    let barrier = alloc_barrier(rt, data, "barrier");
    let head = data.word("head", 0);
    let popped_total = data.word("popped_total", 0);
    let popped_sum = data.word("popped_sum", 0);
    let tids = data.array("tids", spec.workers, 0);
    // Node arenas: 2 words per node, preinitialized with unique values
    // 1..=total (worker w owns nodes [w*n, (w+1)*n)).
    let total = spec.total_nodes();
    let mut init = Vec::with_capacity(2 * total as usize);
    for v in 1..=total {
        init.push(v); // value
        init.push(0); // next
    }
    let arena = data.array_init("arena", &init);

    // ---- worker (a0 = worker index) ----------------------------------------
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    // s1 = my arena cursor = arena + index * nodes_per_worker * 8.
    asm.li(Reg::T1, spec.nodes_per_worker as i32 * 8);
    asm.mul(Reg::S1, Reg::S0, Reg::T1);
    asm.li(Reg::T1, arena as i32);
    asm.add(Reg::S1, Reg::S1, Reg::T1);
    // Phase 1: push my nodes.
    asm.li(Reg::S4, spec.nodes_per_worker as i32);
    let push_loop = asm.bind_new();
    emit_push(asm, head);
    asm.addi(Reg::S1, Reg::S1, 8);
    asm.addi(Reg::S4, Reg::S4, -1);
    asm.bnez(Reg::S4, push_loop);
    // Barrier: all pushes complete before any pop.
    asm.li(Reg::A0, barrier as i32);
    asm.li(Reg::A1, spec.workers as i32);
    asm.jal_to(extra.barrier_wait);
    // Phase 2: pop my share.
    asm.li(Reg::S4, spec.nodes_per_worker as i32);
    let pop_loop = asm.bind_new();
    let got_one = asm.label();
    emit_pop(asm, head);
    asm.bnez(Reg::S2, got_one);
    // Empty is impossible on a correct run (pops == pushes), but stay
    // defensive: yield and retry rather than diverging silently.
    emit_yield(asm);
    asm.j(pop_loop);
    asm.bind(got_one);
    // popped_sum += node.value (CAS loop); popped_total += 1 (faa).
    asm.lw(Reg::S5, Reg::S2, 0);
    emit_atomic_add_reg(asm, popped_sum);
    asm.li(Reg::A0, popped_total as i32);
    tas::emit_faa_inline(asm, 1);
    asm.addi(Reg::S4, Reg::S4, -1);
    asm.bnez(Reg::S4, pop_loop);
    emit_exit(asm);

    // ---- main ---------------------------------------------------------------
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..spec.workers {
        asm.li(Reg::T0, w as i32);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..spec.workers {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    b.finish(main).expect("stack workload assembles")
}
