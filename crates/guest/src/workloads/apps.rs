//! Synthetic analogues of the §5.3 applications of Table 3.
//!
//! The paper's applications are a LaTeX formatting run (`text-format`), a
//! file-system script over AFS (`afs-bench`), the Parthenon or-parallel
//! theorem prover (`parthenon-n`), and a producer/consumer file reader
//! with a 64-byte buffer (`proton-64`). None of them can run here, so each
//! is replaced by a workload with the same threading and synchronization
//! structure:
//!
//! * [`parthenon`] — `n` workers drain a mutex-protected work queue; each
//!   item costs some "inference" busy work plus two short lock-protected
//!   counter updates ("most synchronization operations guard short
//!   critical sections that simply increment a counter, or dequeue an
//!   item from a linked list", §5.3).
//! * [`proton64`] — one producer and one consumer coordinate through a
//!   16-word (64-byte) bounded buffer with a mutex and two condition
//!   variables.
//! * [`text_format`] / [`afs_bench`] — a single-threaded client doing its
//!   own computation, making synchronous requests to a multithreaded
//!   server, which is where the synchronization happens. This models the
//!   paper's point that "even single-threaded applications benefit
//!   indirectly through the improved performance of multithreaded
//!   user-level operating system services."

use ras_isa::{abi, Reg};

use crate::codegen::{emit_busy_work, emit_exit, emit_join, emit_lcg_step, emit_spawn, emit_wake};
use crate::{BuiltGuest, GuestBuilder, Mechanism};

/// Parameters for [`parthenon`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParthenonSpec {
    /// Worker thread count (the paper runs 1 and 10).
    pub workers: usize,
    /// Total work items ("clauses") to resolve.
    pub clauses: u32,
    /// Busy-work iterations per clause (inference cost).
    pub work_iters: i32,
}

impl Default for ParthenonSpec {
    fn default() -> ParthenonSpec {
        ParthenonSpec {
            workers: 10,
            clauses: 2_000,
            work_iters: 60,
        }
    }
}

impl ParthenonSpec {
    /// Expected final value of the `sum` counter: the wrapping sum of the
    /// item ids `1..=clauses`.
    pub fn expected_sum(&self) -> u32 {
        (1..=self.clauses).fold(0u32, |a, b| a.wrapping_add(b))
    }
}

/// Builds the or-parallel prover analogue. Data symbols: `resolved`,
/// `inferences`, `sum` for verification.
pub fn parthenon(mechanism: Mechanism, spec: &ParthenonSpec) -> BuiltGuest {
    assert!(spec.workers >= 1 && spec.clauses >= 1);
    let mut b = GuestBuilder::new(mechanism, spec.workers + 1);
    let (asm, data, rt) = b.parts();
    let qmutex = rt.alloc_mutex(data, "qmutex");
    let slock = rt.alloc_raw_lock(data, "slock");
    let head = data.word("head", 0);
    let count = data.word("count", spec.clauses);
    let resolved = data.word("resolved", 0);
    let inferences = data.word("inferences", 0);
    let sum = data.word("sum", 0);
    let tids = data.array("tids", spec.workers, 0);
    let items: Vec<u32> = (1..=spec.clauses).collect();
    let queue = data.array_init("queue", &items);

    // ---- worker -----------------------------------------------------------
    let worker = asm.bind_symbol("worker");
    let loop_top = asm.bind_new();
    let have_item = asm.label();
    asm.li(Reg::A0, qmutex as i32);
    rt.emit_mutex_acquire(asm);
    asm.li(Reg::T0, count as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.bnez(Reg::T6, have_item);
    // Queue drained: done.
    asm.li(Reg::A0, qmutex as i32);
    rt.emit_mutex_release(asm);
    emit_exit(asm);
    asm.bind(have_item);
    // s4 = queue[head]; head++; count--; resolved++.
    asm.li(Reg::T0, head as i32);
    asm.lw(Reg::T7, Reg::T0, 0);
    asm.slli(Reg::T6, Reg::T7, 2);
    asm.li(Reg::T1, queue as i32);
    asm.add(Reg::T1, Reg::T1, Reg::T6);
    asm.lw(Reg::S4, Reg::T1, 0);
    asm.addi(Reg::T7, Reg::T7, 1);
    asm.sw(Reg::T7, Reg::T0, 0);
    asm.li(Reg::T0, count as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, -1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::T0, resolved as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, qmutex as i32);
    rt.emit_mutex_release(asm);
    // Inference.
    emit_busy_work(asm, spec.work_iters, Reg::T0);
    // Two short lock-protected updates (counter increment + sum).
    asm.li(Reg::A0, slock as i32);
    rt.emit_raw_enter(asm);
    asm.li(Reg::T0, inferences as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, slock as i32);
    rt.emit_raw_exit(asm);
    asm.li(Reg::A0, slock as i32);
    rt.emit_raw_enter(asm);
    asm.li(Reg::T0, sum as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.add(Reg::T6, Reg::T6, Reg::S4);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, slock as i32);
    rt.emit_raw_exit(asm);
    asm.j(loop_top);

    // ---- main ---------------------------------------------------------------
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..spec.workers {
        asm.li(Reg::T0, 0);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..spec.workers {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    b.finish(main).expect("parthenon assembles")
}

/// Parameters for [`proton64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proton64Spec {
    /// Words transferred through the 64-byte buffer.
    pub items: u32,
}

impl Default for Proton64Spec {
    fn default() -> Proton64Spec {
        Proton64Spec { items: 4_000 }
    }
}

impl Proton64Spec {
    /// The checksum the consumer must compute: wrapping sum of the
    /// producer's LCG stream (seed 1, glibc constants).
    pub fn expected_checksum(&self) -> u32 {
        let mut state = 1u32;
        let mut sum = 0u32;
        for _ in 0..self.items {
            state = state.wrapping_mul(1103515245).wrapping_add(12345);
            sum = sum.wrapping_add(state);
        }
        sum
    }
}

/// Builds the producer/consumer analogue with a 64-byte bounded buffer.
/// Data symbols: `checksum` for verification.
pub fn proton64(mechanism: Mechanism, spec: &Proton64Spec) -> BuiltGuest {
    assert!(spec.items >= 1);
    let mut b = GuestBuilder::new(mechanism, 3);
    let (asm, data, rt) = b.parts();
    let m = rt.alloc_mutex(data, "m");
    let cv_nf = rt.alloc_condvar(data, "cv_not_full");
    let cv_ne = rt.alloc_condvar(data, "cv_not_empty");
    let buf = data.array("buf", 16, 0);
    let head = data.word("head", 0);
    let tail = data.word("tail", 0);
    let count = data.word("count", 0);
    let checksum = data.word("checksum", 0);
    let tids = data.array("tids", 2, 0);

    // ---- producer ----------------------------------------------------------
    let producer = asm.bind_symbol("producer");
    asm.li(Reg::S0, spec.items as i32);
    asm.li(Reg::S1, 1); // LCG state
    let ptop = asm.bind_new();
    emit_lcg_step(asm, Reg::S1);
    asm.li(Reg::A0, m as i32);
    rt.emit_mutex_acquire(asm);
    let pcheck = asm.bind_new();
    let not_full = asm.label();
    asm.li(Reg::T0, count as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.slti(Reg::T6, Reg::T6, 16);
    asm.bnez(Reg::T6, not_full);
    asm.li(Reg::A0, cv_nf as i32);
    asm.li(Reg::A1, m as i32);
    rt.emit_cv_wait(asm);
    asm.j(pcheck);
    asm.bind(not_full);
    // buf[tail] = state; tail = (tail + 1) & 15; count++.
    asm.li(Reg::T0, tail as i32);
    asm.lw(Reg::T7, Reg::T0, 0);
    asm.slli(Reg::T6, Reg::T7, 2);
    asm.li(Reg::T1, buf as i32);
    asm.add(Reg::T1, Reg::T1, Reg::T6);
    asm.sw(Reg::S1, Reg::T1, 0);
    asm.addi(Reg::T7, Reg::T7, 1);
    asm.andi(Reg::T7, Reg::T7, 15);
    asm.sw(Reg::T7, Reg::T0, 0);
    asm.li(Reg::T0, count as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, cv_ne as i32);
    rt.emit_cv_signal(asm);
    asm.li(Reg::A0, m as i32);
    rt.emit_mutex_release(asm);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, ptop);
    emit_exit(asm);

    // ---- consumer ----------------------------------------------------------
    let consumer = asm.bind_symbol("consumer");
    asm.li(Reg::S0, spec.items as i32);
    asm.li(Reg::S2, 0); // running checksum
    let ctop = asm.bind_new();
    asm.li(Reg::A0, m as i32);
    rt.emit_mutex_acquire(asm);
    let ccheck = asm.bind_new();
    let have = asm.label();
    asm.li(Reg::T0, count as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.bnez(Reg::T6, have);
    asm.li(Reg::A0, cv_ne as i32);
    asm.li(Reg::A1, m as i32);
    rt.emit_cv_wait(asm);
    asm.j(ccheck);
    asm.bind(have);
    // v = buf[head]; head = (head + 1) & 15; count--.
    asm.li(Reg::T0, head as i32);
    asm.lw(Reg::T7, Reg::T0, 0);
    asm.slli(Reg::T6, Reg::T7, 2);
    asm.li(Reg::T1, buf as i32);
    asm.add(Reg::T1, Reg::T1, Reg::T6);
    asm.lw(Reg::T2, Reg::T1, 0);
    asm.add(Reg::S2, Reg::S2, Reg::T2);
    asm.addi(Reg::T7, Reg::T7, 1);
    asm.andi(Reg::T7, Reg::T7, 15);
    asm.sw(Reg::T7, Reg::T0, 0);
    asm.li(Reg::T0, count as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, -1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, cv_nf as i32);
    rt.emit_cv_signal(asm);
    asm.li(Reg::A0, m as i32);
    rt.emit_mutex_release(asm);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, ctop);
    asm.li(Reg::T0, checksum as i32);
    asm.sw(Reg::S2, Reg::T0, 0);
    emit_exit(asm);

    // ---- main ---------------------------------------------------------------
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    asm.li(Reg::T0, 0);
    emit_spawn(asm, producer, Reg::T0);
    asm.li(Reg::T1, tids as i32);
    asm.sw(Reg::V0, Reg::T1, 0);
    asm.li(Reg::T0, 0);
    emit_spawn(asm, consumer, Reg::T0);
    asm.li(Reg::T1, (tids + 4) as i32);
    asm.sw(Reg::V0, Reg::T1, 0);
    for i in 0..2 {
        asm.li(Reg::T1, (tids + 4 * i) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    b.finish(main).expect("proton64 assembles")
}

/// Common shape of the client/server applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ServerSpec {
    requests: u32,
    client_work: i32,
    server_work: i32,
    server_threads: usize,
    inner_lock_ops: usize,
}

/// Parameters for [`text_format`]: a compute-heavy single-threaded client
/// (the formatter) making occasional requests of the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TextFormatSpec {
    /// Service requests issued by the client.
    pub requests: u32,
    /// Client-side busy work between requests (the "formatting").
    pub client_work: i32,
    /// Server-side busy work per request.
    pub server_work: i32,
}

impl Default for TextFormatSpec {
    fn default() -> TextFormatSpec {
        TextFormatSpec {
            requests: 80,
            client_work: 16_000,
            server_work: 1_000,
        }
    }
}

/// Parameters for [`afs_bench`]: a file-system-intensive script — many
/// more requests, heavier per-request server synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AfsSpec {
    /// Service requests issued by the client.
    pub requests: u32,
    /// Client-side busy work between requests.
    pub client_work: i32,
    /// Server-side busy work per request.
    pub server_work: i32,
}

impl Default for AfsSpec {
    fn default() -> AfsSpec {
        AfsSpec {
            requests: 600,
            client_work: 8_000,
            server_work: 4_000,
        }
    }
}

/// Builds the text-formatter analogue. Data symbols: `handled` (must equal
/// `requests`), `srv_counter`.
pub fn text_format(mechanism: Mechanism, spec: &TextFormatSpec) -> BuiltGuest {
    client_server(
        mechanism,
        &ServerSpec {
            requests: spec.requests,
            client_work: spec.client_work,
            server_work: spec.server_work,
            server_threads: 2,
            inner_lock_ops: 2,
        },
    )
}

/// Builds the AFS-script analogue. Data symbols: `handled`, `srv_counter`.
pub fn afs_bench(mechanism: Mechanism, spec: &AfsSpec) -> BuiltGuest {
    client_server(
        mechanism,
        &ServerSpec {
            requests: spec.requests,
            client_work: spec.client_work,
            server_work: spec.server_work,
            server_threads: 2,
            inner_lock_ops: 4,
        },
    )
}

fn client_server(mechanism: Mechanism, spec: &ServerSpec) -> BuiltGuest {
    assert!(spec.requests >= 1 && spec.server_threads >= 1);
    let mut b = GuestBuilder::new(mechanism, spec.server_threads + 1);
    let (asm, data, rt) = b.parts();
    let qm = rt.alloc_mutex(data, "qm");
    let qcv = rt.alloc_condvar(data, "qcv");
    let slock = rt.alloc_raw_lock(data, "slock");
    let reqq = data.array("reqq", 4, 0);
    let qhead = data.word("qhead", 0);
    let qtail = data.word("qtail", 0);
    let qcount = data.word("qcount", 0);
    let shutdown = data.word("shutdown", 0);
    let reply = data.word("reply", 0);
    let handled = data.word("handled", 0);
    let srv_counter = data.word("srv_counter", 0);
    let tids = data.array("tids", spec.server_threads, 0);

    // ---- server worker ------------------------------------------------------
    let server = asm.bind_symbol("server");
    let sloop = asm.bind_new();
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_acquire(asm);
    let scheck = asm.bind_new();
    let deq = asm.label();
    let out = asm.label();
    asm.li(Reg::T0, qcount as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.bnez(Reg::T6, deq);
    asm.li(Reg::T0, shutdown as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.bnez(Reg::T6, out);
    asm.li(Reg::A0, qcv as i32);
    asm.li(Reg::A1, qm as i32);
    rt.emit_cv_wait(asm);
    asm.j(scheck);
    asm.bind(deq);
    // s0 = reqq[qhead]; qhead = (qhead + 1) & 3; qcount--.
    asm.li(Reg::T0, qhead as i32);
    asm.lw(Reg::T7, Reg::T0, 0);
    asm.slli(Reg::T6, Reg::T7, 2);
    asm.li(Reg::T1, reqq as i32);
    asm.add(Reg::T1, Reg::T1, Reg::T6);
    asm.lw(Reg::S0, Reg::T1, 0);
    asm.addi(Reg::T7, Reg::T7, 1);
    asm.andi(Reg::T7, Reg::T7, 3);
    asm.sw(Reg::T7, Reg::T0, 0);
    asm.li(Reg::T0, qcount as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, -1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_release(asm);
    // Service: internal synchronization plus computation.
    for _ in 0..spec.inner_lock_ops {
        asm.li(Reg::A0, slock as i32);
        rt.emit_raw_enter(asm);
        asm.li(Reg::T0, srv_counter as i32);
        asm.lw(Reg::T6, Reg::T0, 0);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::T0, 0);
        asm.li(Reg::A0, slock as i32);
        rt.emit_raw_exit(asm);
    }
    emit_busy_work(asm, spec.server_work, Reg::T0);
    asm.li(Reg::A0, slock as i32);
    rt.emit_raw_enter(asm);
    asm.li(Reg::T0, handled as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, slock as i32);
    rt.emit_raw_exit(asm);
    // Reply to the client and wake it.
    asm.li(Reg::T0, reply as i32);
    asm.sw(Reg::S0, Reg::T0, 0);
    emit_wake(asm, Reg::T0, 1);
    asm.j(sloop);
    asm.bind(out);
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_release(asm);
    emit_exit(asm);

    // ---- main = single-threaded client ---------------------------------------
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for w in 0..spec.server_threads {
        asm.li(Reg::T0, 0);
        emit_spawn(asm, server, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    asm.li(Reg::S0, spec.requests as i32);
    let rloop = asm.bind_new();
    // The client's own computation.
    emit_busy_work(asm, spec.client_work, Reg::T0);
    // reply = 0, then submit request id s0.
    asm.li(Reg::T0, reply as i32);
    asm.sw(Reg::ZERO, Reg::T0, 0);
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_acquire(asm);
    asm.li(Reg::T0, qtail as i32);
    asm.lw(Reg::T7, Reg::T0, 0);
    asm.slli(Reg::T6, Reg::T7, 2);
    asm.li(Reg::T1, reqq as i32);
    asm.add(Reg::T1, Reg::T1, Reg::T6);
    asm.sw(Reg::S0, Reg::T1, 0);
    asm.addi(Reg::T7, Reg::T7, 1);
    asm.andi(Reg::T7, Reg::T7, 3);
    asm.sw(Reg::T7, Reg::T0, 0);
    asm.li(Reg::T0, qcount as i32);
    asm.lw(Reg::T6, Reg::T0, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::T0, 0);
    asm.li(Reg::A0, qcv as i32);
    rt.emit_cv_signal(asm);
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_release(asm);
    // Synchronous wait for the reply.
    let wait_reply = asm.bind_new();
    asm.li(Reg::A0, reply as i32);
    asm.li(Reg::A1, 0);
    asm.li(Reg::V0, abi::SYS_WAIT as i32);
    asm.syscall();
    asm.li(Reg::T0, reply as i32);
    asm.lw(Reg::T1, Reg::T0, 0);
    asm.beqz(Reg::T1, wait_reply);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, rloop);
    // Shutdown the server and join it.
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_acquire(asm);
    asm.li(Reg::T0, shutdown as i32);
    asm.li(Reg::T1, 1);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::A0, qcv as i32);
    rt.emit_cv_broadcast(asm);
    asm.li(Reg::A0, qm as i32);
    rt.emit_mutex_release(asm);
    for w in 0..spec.server_threads {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    b.finish(main).expect("client/server app assembles")
}
