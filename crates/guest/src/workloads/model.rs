//! The model-checking workload: a small, fully-instrumented critical
//! section whose safety properties are machine-checkable from final
//! memory.
//!
//! Each worker acquires a lock with a chosen read-modify-write flavor,
//! then inside the critical section (1) claims ownership by writing its
//! thread-unique token to `cs_owner`, (2) increments `counter`, (3)
//! re-reads `cs_owner` and increments `violations` if the token changed —
//! direct evidence that another thread entered the critical section
//! concurrently — then (4) clears `cs_owner` and releases the lock.
//!
//! `ras-model` drives this program through every preemption point and
//! checks, per schedule: `violations == 0` (mutual exclusion) and, at
//! completion, `counter == workers × iterations` (no lost updates). With
//! the atomicity strategy stripped ([`crate::BuiltGuest::strategy`] set
//! to `None`), both properties fail within a handful of schedules — the
//! paper's §2 hazard, exhibited exhaustively rather than statistically.

use ras_isa::Reg;

use crate::codegen::{emit_exit, emit_join, emit_spawn, emit_yield};
use crate::tas;
use crate::{BuiltGuest, GuestBuilder, Mechanism};

/// Which read-modify-write primitive guards the critical section.
///
/// [`TasFlavor::Tas`] uses the mechanism's native Test-And-Set (or, for
/// [`Mechanism::LamportPerLock`], its enter/exit protocol). The other
/// flavors are the richer designated sequences of §4.1 and are only
/// meaningful under [`Mechanism::RasInline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TasFlavor {
    /// Test-And-Set (Figure 5 inline, Figure 4 registered, trap, or
    /// hardware — whatever the mechanism provides).
    #[default]
    Tas,
    /// Compare-and-swap designated sequence (`lw; bne; landmark; sw`).
    Cas,
    /// Exchange designated sequence (`lw; landmark; sw`).
    Xchg,
    /// Fetch-and-add designated sequence (`lw; addi; landmark; sw`),
    /// used lock-free directly on the counter: only the lost-update
    /// property applies.
    Faa,
}

impl TasFlavor {
    /// Every flavor.
    pub fn all() -> [TasFlavor; 4] {
        [
            TasFlavor::Tas,
            TasFlavor::Cas,
            TasFlavor::Xchg,
            TasFlavor::Faa,
        ]
    }

    /// Stable identifier for reports and CLI flags.
    pub fn id(self) -> &'static str {
        match self {
            TasFlavor::Tas => "tas",
            TasFlavor::Cas => "cas",
            TasFlavor::Xchg => "xchg",
            TasFlavor::Faa => "faa",
        }
    }

    /// Whether `mechanism` can run this flavor.
    pub fn supported_by(self, mechanism: Mechanism) -> bool {
        self == TasFlavor::Tas || mechanism == Mechanism::RasInline
    }

    /// Whether the flavor is lock-free (no mutual-exclusion property).
    pub fn is_lock_free(self) -> bool {
        self == TasFlavor::Faa
    }
}

impl std::fmt::Display for TasFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.id())
    }
}

/// Parameters for [`model_counter`]. The defaults (two workers, one
/// critical section each) keep exhaustive exploration tractable while
/// still containing every two-thread interleaving hazard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSpec {
    /// Critical sections per worker.
    pub iterations: u32,
    /// Number of worker threads.
    pub workers: usize,
}

impl Default for ModelSpec {
    fn default() -> ModelSpec {
        ModelSpec {
            iterations: 1,
            workers: 2,
        }
    }
}

impl ModelSpec {
    /// The expected final `counter` value.
    pub fn expected_count(&self) -> u32 {
        self.iterations * self.workers as u32
    }
}

/// Builds the model-checking workload.
///
/// Data symbols: `lock`, `counter`, `cs_owner`, `violations`.
///
/// # Panics
///
/// Panics on a degenerate spec or a flavor the mechanism does not
/// support (see [`TasFlavor::supported_by`]).
pub fn model_counter(mechanism: Mechanism, flavor: TasFlavor, spec: &ModelSpec) -> BuiltGuest {
    assert!(spec.iterations > 0 && spec.workers > 0, "degenerate spec");
    assert!(
        flavor.supported_by(mechanism),
        "{flavor} requires RasInline, got {mechanism}"
    );
    let mut b = GuestBuilder::new(mechanism, spec.workers + 1);
    let (asm, data, rt) = b.parts();
    let lock = rt.alloc_raw_lock(data, "lock");
    let counter = data.word("counter", 0);
    let cs_owner = data.word("cs_owner", 0);
    let violations = data.word("violations", 0);
    let tids = data.array("tids", spec.workers, 0);

    // ---- worker (a0 = iterations) ----------------------------------------
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    asm.li(Reg::S1, lock as i32);
    asm.li(Reg::S2, counter as i32);
    asm.li(Reg::S3, cs_owner as i32);
    asm.li(Reg::S4, violations as i32);
    // Thread-unique, nonzero ownership token ($gp holds the thread id).
    asm.addi(Reg::S5, Reg::GP, 1);
    let top = asm.bind_new();
    if flavor == TasFlavor::Faa {
        // Lock-free: the designated fetch-and-add IS the increment.
        asm.mv(Reg::A0, Reg::S2);
        tas::emit_faa_inline(asm, 1);
    } else {
        // Acquire.
        if mechanism == Mechanism::LamportPerLock {
            asm.mv(Reg::A0, Reg::S1);
            rt.emit_raw_enter(asm);
        } else {
            let acquired = asm.label();
            let retry = asm.bind_new();
            asm.mv(Reg::A0, Reg::S1);
            match flavor {
                TasFlavor::Tas => rt.emit_tas(asm),
                TasFlavor::Cas => {
                    asm.li(Reg::A1, 0);
                    asm.li(Reg::A2, 1);
                    tas::emit_cas_inline(asm);
                }
                TasFlavor::Xchg => {
                    asm.li(Reg::A1, 1);
                    tas::emit_xchg_inline(asm);
                }
                TasFlavor::Faa => unreachable!("handled above"),
            }
            asm.beqz(Reg::V0, acquired);
            emit_yield(asm);
            asm.j(retry);
            asm.bind(acquired);
        }
        // Critical section: claim, increment, recheck.
        asm.sw(Reg::S5, Reg::S3, 0);
        asm.lw(Reg::T6, Reg::S2, 0);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S2, 0);
        let intact = asm.label();
        asm.lw(Reg::T7, Reg::S3, 0);
        asm.beq(Reg::T7, Reg::S5, intact);
        // Someone else wrote cs_owner while we were "alone" in the
        // critical section: record the mutual-exclusion violation.
        asm.lw(Reg::T6, Reg::S4, 0);
        asm.addi(Reg::T6, Reg::T6, 1);
        asm.sw(Reg::T6, Reg::S4, 0);
        asm.bind(intact);
        asm.sw(Reg::ZERO, Reg::S3, 0);
        // Release.
        asm.mv(Reg::A0, Reg::S1);
        if mechanism == Mechanism::LamportPerLock {
            rt.emit_raw_exit(asm);
        } else {
            rt.emit_clear(asm);
        }
    }
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    emit_exit(asm);

    // ---- main --------------------------------------------------------------
    let main = asm.bind_symbol("main");
    for w in 0..spec.workers {
        asm.li(Reg::T0, spec.iterations as i32);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..spec.workers {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::RA);

    b.finish(main).expect("model workload assembles")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_machine::CpuProfile;

    #[test]
    fn model_counter_is_correct_under_the_timer_for_every_config() {
        let spec = ModelSpec {
            iterations: 3,
            workers: 2,
        };
        for mechanism in Mechanism::all() {
            for flavor in TasFlavor::all() {
                if !flavor.supported_by(mechanism) {
                    continue;
                }
                let built = model_counter(mechanism, flavor, &spec);
                let profile = if mechanism.supported_by(&CpuProfile::r3000()) {
                    CpuProfile::r3000()
                } else {
                    CpuProfile::i860()
                };
                let mut config = built.kernel_config(profile);
                config.mem_bytes = 64 * 1024;
                config.stack_bytes = 4096;
                config.max_threads = 4;
                config.quantum = 137; // adversarial tiny quantum
                let mut kernel = built.boot(config).unwrap();
                assert_eq!(
                    kernel.run(u64::MAX),
                    ras_kernel::Outcome::Completed,
                    "{mechanism}/{flavor}"
                );
                let counter = built.data.symbol("counter").unwrap();
                let violations = built.data.symbol("violations").unwrap();
                assert_eq!(
                    kernel.read_word(counter).unwrap(),
                    spec.expected_count(),
                    "{mechanism}/{flavor}: lost update"
                );
                assert_eq!(
                    kernel.read_word(violations).unwrap(),
                    0,
                    "{mechanism}/{flavor}: mutual exclusion violated"
                );
            }
        }
    }

    #[test]
    fn stripping_the_strategy_makes_the_model_counter_racy() {
        // Sanity for the ablation the model checker proves exhaustively:
        // RasInline with no kernel strategy and a tiny quantum loses
        // updates under the timer given enough iterations.
        let spec = ModelSpec {
            iterations: 2000,
            workers: 2,
        };
        let mut built = model_counter(Mechanism::RasInline, TasFlavor::Tas, &spec);
        built.strategy = ras_kernel::StrategyKind::None;
        let mut config = built.kernel_config(CpuProfile::r3000());
        config.quantum = 61;
        let mut kernel = built.boot(config).unwrap();
        assert_eq!(kernel.run(u64::MAX), ras_kernel::Outcome::Completed);
        let counter = built.data.symbol("counter").unwrap();
        let violations = built.data.symbol("violations").unwrap();
        let lost = spec.expected_count() - kernel.read_word(counter).unwrap();
        let tainted = kernel.read_word(violations).unwrap();
        assert!(
            lost > 0 || tainted > 0,
            "expected the unprotected sequence to misbehave"
        );
    }
}
