//! The paper's benchmark and application workloads, generated as guest
//! programs parameterized by [`crate::Mechanism`].
//!
//! * [`counter_loop`] — the §5.1 microbenchmark behind Tables 1 and 4:
//!   enter a Test-And-Set critical section, increment a counter, leave.
//! * [`spinlock_bench`], [`mutex_bench`], [`fork_test`], [`ping_pong`] —
//!   the §5.2 thread-management benchmarks of Table 2.
//! * [`treiber_stack`] — a lock-free stack on designated CAS sequences,
//!   the §4.1 "richer sequences" demonstration.
//! * [`model_counter`] — the instrumented critical section driven
//!   exhaustively by the `ras-model` checker.
//! * [`lock_server`] — N clients hammering M locks under uniform,
//!   Zipfian, or bursty arrival schedules; the driver workload for the
//!   streaming telemetry pipeline.
//! * [`parthenon`], [`proton64`], [`text_format`], [`afs_bench`] —
//!   synthetic analogues of the §5.3 applications of Table 3 (the
//!   originals — a LaTeX run, the Andrew benchmark, the Parthenon theorem
//!   prover, and a producer/consumer file reader — are not available, so
//!   each is modeled by a workload with the same threading and
//!   synchronization structure; see DESIGN.md §2).

mod apps;
mod counter;
mod lockserver;
mod malloc;
mod model;
mod stack;
mod table2;

pub use apps::{
    afs_bench, parthenon, proton64, text_format, AfsSpec, ParthenonSpec, Proton64Spec,
    TextFormatSpec,
};
pub use counter::{counter_loop, CounterBody, CounterSpec};
pub use lockserver::{lock_addresses, lock_server, schedule, Arrival, LockServerSpec};
pub use malloc::{malloc_stress, MallocSpec};
pub use model::{model_counter, ModelSpec, TasFlavor};
pub use stack::{treiber_stack, StackSpec};
pub use table2::{fork_test, mutex_bench, ping_pong, spinlock_bench, Table2Spec};
