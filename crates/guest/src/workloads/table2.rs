//! The §5.2 thread-management benchmarks of Table 2: Spinlock, MutexLock,
//! ForkTest, and PingPong, "the kinds of operations typically found in
//! multithreaded programs."

use ras_isa::{abi, Reg};

use crate::codegen::{emit_exit, emit_join, emit_spawn, emit_wake};
use crate::{BuiltGuest, GuestBuilder, Mechanism};

/// Parameters for the Table 2 benchmarks. `iterations` is the operation
/// count: lock round-trips, forks, or ping-pong cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Spec {
    /// Number of operations to perform.
    pub iterations: u32,
}

impl Default for Table2Spec {
    fn default() -> Table2Spec {
        Table2Spec { iterations: 10_000 }
    }
}

/// Spinlock: one thread repeatedly acquires and releases a spin lock
/// implemented with the mechanism's Test-And-Set.
///
/// Data symbols: `lock`, plus `acquisitions` counting successful entries.
pub fn spinlock_bench(mechanism: Mechanism, spec: &Table2Spec) -> BuiltGuest {
    assert!(spec.iterations > 0);
    let mut b = GuestBuilder::new(mechanism, 2);
    let (asm, data, rt) = b.parts();
    let lock = rt.alloc_raw_lock(data, "lock");
    let acquisitions = data.word("acquisitions", 0);

    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    asm.li(Reg::S0, spec.iterations as i32);
    asm.li(Reg::S1, lock as i32);
    asm.li(Reg::S2, acquisitions as i32);
    let top = asm.bind_new();
    asm.mv(Reg::A0, Reg::S1);
    rt.emit_raw_enter(asm);
    asm.lw(Reg::T6, Reg::S2, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::S2, 0);
    asm.mv(Reg::A0, Reg::S1);
    rt.emit_raw_exit(asm);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    asm.jr(Reg::S3);
    b.finish(main).expect("spinlock bench assembles")
}

/// MutexLock: one thread repeatedly acquires and releases a relinquishing
/// mutex (a spinlock fast path plus a kernel wait queue, §5.2).
///
/// Data symbols: `mutex`, `acquisitions`.
pub fn mutex_bench(mechanism: Mechanism, spec: &Table2Spec) -> BuiltGuest {
    assert!(spec.iterations > 0);
    let mut b = GuestBuilder::new(mechanism, 2);
    let (asm, data, rt) = b.parts();
    let mutex = rt.alloc_mutex(data, "mutex");
    let acquisitions = data.word("acquisitions", 0);

    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    asm.li(Reg::S0, spec.iterations as i32);
    asm.li(Reg::S1, mutex as i32);
    asm.li(Reg::S2, acquisitions as i32);
    let top = asm.bind_new();
    asm.mv(Reg::A0, Reg::S1);
    rt.emit_mutex_acquire(asm);
    asm.lw(Reg::T6, Reg::S2, 0);
    asm.addi(Reg::T6, Reg::T6, 1);
    asm.sw(Reg::T6, Reg::S2, 0);
    asm.mv(Reg::A0, Reg::S1);
    rt.emit_mutex_release(asm);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    asm.jr(Reg::S3);
    b.finish(main).expect("mutex bench assembles")
}

/// ForkTest: threads are recursively forked in succession — thread 1 forks
/// thread 2, which forks thread 3, and so on; after forking, a thread
/// immediately terminates.
///
/// `spec.iterations` is the chain length, so the program creates
/// `iterations + 2` threads in total (main plus the chain). Size the
/// kernel's `max_threads` and shrink `stack_bytes` accordingly.
///
/// Data symbols: `forks_done` (incremented by every chain thread under the
/// mechanism's lock), `done` (completion flag the main thread waits on).
pub fn fork_test(mechanism: Mechanism, spec: &Table2Spec) -> BuiltGuest {
    assert!(spec.iterations > 0);
    let mut b = GuestBuilder::new(mechanism, spec.iterations as usize + 2);
    let (asm, data, rt) = b.parts();
    let lock = rt.alloc_raw_lock(data, "lock");
    let forks_done = data.word("forks_done", 0);
    let bookkeep_a = data.word("bookkeep_a", 0);
    let bookkeep_b = data.word("bookkeep_b", 0);
    let done = data.word("done", 0);

    // worker(a0 = remaining forks)
    let worker_label = asm.bind_new();
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    // Thread bookkeeping, as C-Threads does on every fork: stack
    // allocation, run-queue linkage, and the fork counter, each a short
    // lock-protected critical section.
    for slot in [bookkeep_a as i32, bookkeep_b as i32, forks_done as i32] {
        asm.li(Reg::A0, lock as i32);
        rt.emit_raw_enter(asm);
        asm.li(Reg::T6, slot);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::A0, lock as i32);
        rt.emit_raw_exit(asm);
    }
    let last = asm.label();
    asm.beqz(Reg::S0, last);
    asm.addi(Reg::A1, Reg::S0, -1);
    asm.li(Reg::V0, abi::SYS_SPAWN as i32);
    asm.li_label(Reg::A0, worker_label);
    asm.syscall();
    emit_exit(asm);
    asm.bind(last);
    asm.li(Reg::T0, done as i32);
    asm.li(Reg::T1, 1);
    asm.sw(Reg::T1, Reg::T0, 0);
    emit_wake(asm, Reg::T0, 1);
    emit_exit(asm);

    // main
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    asm.li(Reg::T0, spec.iterations as i32 - 1);
    emit_spawn(asm, worker, Reg::T0);
    // Wait for the completion flag.
    let check = asm.bind_new();
    asm.li(Reg::A0, done as i32);
    asm.li(Reg::A1, 0);
    asm.li(Reg::V0, abi::SYS_WAIT as i32);
    asm.syscall();
    asm.li(Reg::T0, done as i32);
    asm.lw(Reg::T1, Reg::T0, 0);
    asm.beqz(Reg::T1, check);
    asm.jr(Reg::S3);

    b.finish(main).expect("fork test assembles")
}

/// PingPong: two threads alternate in a tight loop using a mutex and a
/// condition variable.
///
/// `spec.iterations` is the number of full ping-pong cycles. Data
/// symbols: `mutex`, `cv`, `turn`, and `cycles` (incremented by thread 0
/// each cycle).
pub fn ping_pong(mechanism: Mechanism, spec: &Table2Spec) -> BuiltGuest {
    assert!(spec.iterations > 0);
    let mut b = GuestBuilder::new(mechanism, 3);
    let (asm, data, rt) = b.parts();
    let mutex = rt.alloc_mutex(data, "mutex");
    let cv = rt.alloc_condvar(data, "cv");
    let slock = rt.alloc_raw_lock(data, "slock");
    let turn = data.word("turn", 0);
    let cycles = data.word("cycles", 0);
    let stats = data.array("stats", 4, 0);
    let tids = data.array("tids", 2, 0);

    // worker(a0 = my side, 0 or 1)
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    asm.li(Reg::S1, spec.iterations as i32);
    asm.li(Reg::S2, mutex as i32);
    let top = asm.bind_new();
    asm.mv(Reg::A0, Reg::S2);
    rt.emit_mutex_acquire(asm);
    // while turn != me: wait
    let check = asm.bind_new();
    let proceed = asm.label();
    asm.li(Reg::T6, turn as i32);
    asm.lw(Reg::T7, Reg::T6, 0);
    asm.beq(Reg::T7, Reg::S0, proceed);
    asm.li(Reg::A0, cv as i32);
    asm.mv(Reg::A1, Reg::S2);
    rt.emit_cv_wait(asm);
    asm.j(check);
    asm.bind(proceed);
    // turn = 1 - me; thread 0 counts completed cycles.
    asm.li(Reg::T7, 1);
    asm.sub(Reg::T7, Reg::T7, Reg::S0);
    asm.li(Reg::T6, turn as i32);
    asm.sw(Reg::T7, Reg::T6, 0);
    // cycles++ only on side 0.
    let skip = asm.label();
    asm.bnez(Reg::S0, skip);
    asm.li(Reg::T6, cycles as i32);
    asm.lw(Reg::T7, Reg::T6, 0);
    asm.addi(Reg::T7, Reg::T7, 1);
    asm.sw(Reg::T7, Reg::T6, 0);
    asm.bind(skip);
    asm.li(Reg::A0, cv as i32);
    rt.emit_cv_signal(asm);
    asm.mv(Reg::A0, Reg::S2);
    rt.emit_mutex_release(asm);
    // Per-pass statistics, each under the package's internal lock — the
    // paper measures 26 Test-And-Sets per full ping-pong cycle, most of
    // them this kind of bookkeeping.
    for i in 0..4u32 {
        asm.li(Reg::A0, slock as i32);
        rt.emit_raw_enter(asm);
        asm.li(Reg::T6, (stats + 4 * i) as i32);
        asm.lw(Reg::T7, Reg::T6, 0);
        asm.addi(Reg::T7, Reg::T7, 1);
        asm.sw(Reg::T7, Reg::T6, 0);
        asm.li(Reg::A0, slock as i32);
        rt.emit_raw_exit(asm);
    }
    asm.addi(Reg::S1, Reg::S1, -1);
    asm.bnez(Reg::S1, top);
    emit_exit(asm);

    // main
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    for side in 0..2u32 {
        asm.li(Reg::T0, side as i32);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * side) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for side in 0..2u32 {
        asm.li(Reg::T1, (tids + 4 * side) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    b.finish(main).expect("ping pong assembles")
}
