//! The §5.1 microbenchmark: "a test that enters a critical section using a
//! Test-And-Set lock, increments a counter, and leaves the critical
//! section by clearing the Test-And-Set lock."
//!
//! With one worker the lock is always free, measuring the fast path of the
//! mechanism plus the interaction with the critical-section body — exactly
//! what Tables 1 and 4 report. With several workers and a small quantum it
//! becomes the adversarial correctness workload used throughout the test
//! suite: the final counter value must be exactly
//! `workers × iterations` under every schedule.

use ras_isa::Reg;

use crate::codegen::{emit_exit, emit_join, emit_spawn};
use crate::{BuiltGuest, GuestBuilder, Mechanism};

/// What the microbenchmark loop body contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CounterBody {
    /// Acquire, increment the shared counter, release — the Table 1
    /// measurement.
    #[default]
    LockAndCounter,
    /// Acquire and release only — the Table 4 measurement ("the overhead
    /// to acquire and release a Test-And-Set lock").
    LockOnly,
    /// Nothing — the calibration run whose time is subtracted, as the
    /// paper subtracts its loop overhead.
    Empty,
    /// The Table 1 body followed by `spin` iterations of private busy
    /// work outside the critical section. This models a realistic
    /// application where atomic sequences are a small fraction of
    /// execution, so a quantum expiry rarely lands inside one — the
    /// regime the paper's §5.2 "thread_fork test" argues is typical.
    LockCounterAndWork {
        /// Busy-loop iterations per critical section.
        spin: u32,
    },
}

/// Parameters for [`counter_loop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSpec {
    /// Critical sections per worker.
    pub iterations: u32,
    /// Number of worker threads (the paper's Table 1 uses one).
    pub workers: usize,
    /// Loop body variant.
    pub body: CounterBody,
}

impl Default for CounterSpec {
    fn default() -> CounterSpec {
        CounterSpec {
            iterations: 100_000,
            workers: 1,
            body: CounterBody::LockAndCounter,
        }
    }
}

impl CounterSpec {
    /// The expected final counter value.
    pub fn expected_count(&self) -> u32 {
        match self.body {
            CounterBody::LockAndCounter | CounterBody::LockCounterAndWork { .. } => {
                self.iterations * self.workers as u32
            }
            CounterBody::LockOnly | CounterBody::Empty => 0,
        }
    }

    /// Total critical sections entered across all workers.
    pub fn total_ops(&self) -> u64 {
        u64::from(self.iterations) * self.workers as u64
    }
}

/// Builds the microbenchmark for `mechanism`.
///
/// Data symbols: `lock` (the raw lock) and `counter`.
///
/// # Panics
///
/// Panics if `iterations` is zero or `workers` is zero or exceeds the
/// runtime's thread capacity.
pub fn counter_loop(mechanism: Mechanism, spec: &CounterSpec) -> BuiltGuest {
    assert!(spec.iterations > 0 && spec.workers > 0, "degenerate spec");
    let mut b = GuestBuilder::new(mechanism, spec.workers + 1);
    let (asm, data, rt) = b.parts();
    let lock = rt.alloc_raw_lock(data, "lock");
    let counter = data.word("counter", 0);
    let tids = data.array("tids", spec.workers, 0);

    // ---- worker (a0 = iterations) ----------------------------------------
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    asm.li(Reg::S1, lock as i32);
    asm.li(Reg::S2, counter as i32);
    let top = asm.bind_new();
    match spec.body {
        CounterBody::Empty => {}
        CounterBody::LockAndCounter => {
            asm.mv(Reg::A0, Reg::S1);
            rt.emit_raw_enter(asm);
            asm.lw(Reg::T6, Reg::S2, 0);
            asm.addi(Reg::T6, Reg::T6, 1);
            asm.sw(Reg::T6, Reg::S2, 0);
            asm.mv(Reg::A0, Reg::S1);
            rt.emit_raw_exit(asm);
        }
        CounterBody::LockCounterAndWork { spin } => {
            asm.mv(Reg::A0, Reg::S1);
            rt.emit_raw_enter(asm);
            asm.lw(Reg::T6, Reg::S2, 0);
            asm.addi(Reg::T6, Reg::T6, 1);
            asm.sw(Reg::T6, Reg::S2, 0);
            asm.mv(Reg::A0, Reg::S1);
            rt.emit_raw_exit(asm);
            // Private, lock-free padding: dilutes the atomic sections so
            // preemptions overwhelmingly land in ordinary code.
            if spin > 0 {
                asm.li(Reg::T5, spin as i32);
                let work = asm.bind_new();
                asm.addi(Reg::T5, Reg::T5, -1);
                asm.bnez(Reg::T5, work);
            }
        }
        CounterBody::LockOnly => {
            // The Table 4 measurement: the bare Test-And-Set fast path and
            // its release, with no spin check — exactly "the overhead to
            // acquire and release a Test-And-Set lock" with one thread
            // (the designated sequence's own branch covers the contended
            // case, as in Figure 5). Protocol (a) has no TAS, so it uses
            // its enter/exit pair.
            asm.mv(Reg::A0, Reg::S1);
            if mechanism == Mechanism::LamportPerLock {
                rt.emit_raw_enter(asm);
                asm.mv(Reg::A0, Reg::S1);
                rt.emit_raw_exit(asm);
            } else {
                rt.emit_tas(asm);
                asm.mv(Reg::A0, Reg::S1);
                rt.emit_clear(asm);
            }
        }
    }
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    emit_exit(asm);

    // ---- main --------------------------------------------------------------
    let main = asm.bind_symbol("main");
    for w in 0..spec.workers {
        asm.li(Reg::T0, spec.iterations as i32);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..spec.workers {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::RA);

    b.finish(main).expect("counter workload assembles")
}
