//! An allocator-stress workload: a shared free list of fixed-size blocks
//! protected by the mechanism's lock — the storage-allocator pattern that
//! userspace runtimes of the paper's era (C-Threads, PRESTO) guard with
//! exactly these locks.
//!
//! Workers repeatedly allocate a block, stamp it with a unique signature,
//! do some work, verify the signature survived, and free the block. Any
//! atomicity failure in the lock shows up as either a corrupted signature
//! (two owners of one block) or a broken free list (lost blocks and a
//! starved allocator).

use ras_isa::Reg;

use crate::codegen::{emit_busy_work, emit_exit, emit_join, emit_spawn, emit_yield};
use crate::{BuiltGuest, GuestBuilder, Mechanism};

/// Parameters for [`malloc_stress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MallocSpec {
    /// Worker thread count.
    pub workers: usize,
    /// Allocate/free rounds per worker.
    pub rounds: u32,
    /// Blocks in the arena (must be ≥ `workers`; each worker holds at
    /// most one block at a time).
    pub blocks: usize,
}

impl Default for MallocSpec {
    fn default() -> MallocSpec {
        MallocSpec {
            workers: 4,
            rounds: 300,
            blocks: 6,
        }
    }
}

/// Builds the allocator-stress workload for any mechanism.
///
/// Data symbols: `alloc_count` (must equal `workers × rounds`),
/// `corruptions` (must be zero), `free_head` (must be nonzero — the list
/// survives).
///
/// # Panics
///
/// Panics if `blocks < workers` (the allocator could legitimately starve).
pub fn malloc_stress(mechanism: Mechanism, spec: &MallocSpec) -> BuiltGuest {
    assert!(spec.blocks >= spec.workers, "arena must cover all workers");
    assert!(spec.workers >= 1 && spec.rounds >= 1);
    let mut b = GuestBuilder::new(mechanism, spec.workers + 1);
    let (asm, data, rt) = b.parts();
    let lock = rt.alloc_raw_lock(data, "alloc_lock");
    let free_head = data.word("free_head", 0);
    let alloc_count = data.word("alloc_count", 0);
    let corruptions = data.word("corruptions", 0);
    let tids = data.array("tids", spec.workers, 0);
    // Blocks: [next, payload] (2 words each), linked into a free list.
    // The arena base is the current cursor, so the links can be computed
    // before allocation.
    const BLOCK_BYTES: u32 = 8;
    let arena_base = data.cursor();
    let mut init = Vec::with_capacity(spec.blocks * 2);
    for i in 0..spec.blocks {
        let next = if i + 1 < spec.blocks {
            arena_base + (i as u32 + 1) * BLOCK_BYTES
        } else {
            0
        };
        init.push(next);
        init.push(0);
    }
    let arena = data.array_init("arena", &init);
    assert_eq!(arena, arena_base, "cursor math");
    // free_head starts at the first block. (word() elides zero inits, so
    // re-allocate via a patch at boot: easiest is an init pass in main.)

    // ---- worker (a0 = rounds) ----------------------------------------------
    let worker = asm.bind_symbol("worker");
    asm.mv(Reg::S0, Reg::A0);
    let round = asm.bind_new();
    // Allocate: pop the free list under the lock.
    let alloc_retry = asm.bind_new();
    let got_block = asm.label();
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_enter(asm);
    asm.li(Reg::T0, free_head as i32);
    asm.lw(Reg::S1, Reg::T0, 0);
    let empty = asm.label();
    asm.beqz(Reg::S1, empty);
    asm.lw(Reg::T1, Reg::S1, 0);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_exit(asm);
    asm.j(got_block);
    asm.bind(empty);
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_exit(asm);
    emit_yield(asm);
    asm.j(alloc_retry);
    asm.bind(got_block);
    // Stamp a unique signature: (tid << 20) | round counter.
    asm.slli(Reg::T2, Reg::GP, 20);
    asm.or(Reg::T2, Reg::T2, Reg::S0);
    asm.sw(Reg::T2, Reg::S1, 4);
    emit_busy_work(asm, 15, Reg::T0);
    // Verify the signature survived sole ownership.
    asm.lw(Reg::T3, Reg::S1, 4);
    let intact = asm.label();
    asm.beq(Reg::T3, Reg::T2, intact);
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_enter(asm);
    asm.li(Reg::T0, corruptions as i32);
    asm.lw(Reg::T1, Reg::T0, 0);
    asm.addi(Reg::T1, Reg::T1, 1);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_exit(asm);
    asm.bind(intact);
    // Free: push back and count the completed round, under the lock.
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_enter(asm);
    asm.li(Reg::T0, free_head as i32);
    asm.lw(Reg::T1, Reg::T0, 0);
    asm.sw(Reg::T1, Reg::S1, 0);
    asm.sw(Reg::S1, Reg::T0, 0);
    asm.li(Reg::T0, alloc_count as i32);
    asm.lw(Reg::T1, Reg::T0, 0);
    asm.addi(Reg::T1, Reg::T1, 1);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::A0, lock as i32);
    rt.emit_raw_exit(asm);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, round);
    emit_exit(asm);

    // ---- main ---------------------------------------------------------------
    let main = asm.bind_symbol("main");
    asm.mv(Reg::S3, Reg::RA);
    // Initialize the free-list head (before any worker exists).
    asm.li(Reg::T0, free_head as i32);
    asm.li(Reg::T1, arena_base as i32);
    asm.sw(Reg::T1, Reg::T0, 0);
    for w in 0..spec.workers {
        asm.li(Reg::T0, spec.rounds as i32);
        emit_spawn(asm, worker, Reg::T0);
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.sw(Reg::V0, Reg::T1, 0);
    }
    for w in 0..spec.workers {
        asm.li(Reg::T1, (tids + 4 * w as u32) as i32);
        asm.lw(Reg::A0, Reg::T1, 0);
        emit_join(asm, Reg::A0);
    }
    asm.jr(Reg::S3);
    b.finish(main).expect("malloc workload assembles")
}
