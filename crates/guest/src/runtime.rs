//! The guest-side runtime: a C-Threads-like synchronization library
//! generated as guest machine code, parameterized by [`Mechanism`].
//!
//! [`GuestBuilder`] assembles a complete program image: the runtime
//! functions (Test-And-Set in the chosen flavor, blocking mutexes,
//! condition variables), the user's code, a `crt0` that performs explicit
//! registration when required (§3.1) and calls `main`, and — for the
//! user-level restart mechanism — the recovery routine of §4.1.

use ras_isa::{
    abi, Asm, AsmError, CodeAddr, DataAddr, DataImage, DataLayout, Program, Reg, RseqCs,
};
use ras_kernel::{BootError, Kernel, KernelConfig, StrategyKind};
use ras_machine::CpuProfile;

use crate::codegen::emit_yield;
use crate::lamport;
use crate::lock;
use crate::rseq;
use crate::tas::{self, SeqRange};
use crate::Mechanism;

/// Addresses and emitters for the synchronization runtime of one program.
///
/// All emitters follow these conventions:
///
/// * `emit_tas` / `emit_clear`: `$a0` = word address; old value in `$v0`;
///   clobbers `$t0` and (for out-of-line flavors) `$ra`.
/// * `emit_raw_enter` / `emit_raw_exit`: `$a0` = raw lock address;
///   clobbers `$v0`, `$t0..$t5`, `$ra`; spins by yielding.
/// * The mutex and condition-variable functions preserve everything except
///   `$v0`, `$t0..$t7`, `$a0..$a1` and are called with `jal`.
#[derive(Debug, Clone)]
pub struct SyncRuntime {
    pub(crate) mechanism: Mechanism,
    pub(crate) max_threads: usize,
    pub(crate) tas_fn: Option<CodeAddr>,
    pub(crate) tas_seq: Option<SeqRange>,
    pub(crate) meta_tas_fn: Option<CodeAddr>,
    pub(crate) lamport_enter: Option<CodeAddr>,
    pub(crate) lamport_exit: Option<CodeAddr>,
    pub(crate) rseq_fn: Option<CodeAddr>,
    pub(crate) rseq_desc: Option<RseqCs>,
    pub(crate) mutex_acquire_fn: CodeAddr,
    pub(crate) mutex_release_fn: CodeAddr,
    pub(crate) cv_wait_fn: CodeAddr,
    pub(crate) cv_signal_fn: CodeAddr,
    pub(crate) cv_broadcast_fn: CodeAddr,
    pub(crate) user_seq_ranges: Vec<SeqRange>,
}

impl SyncRuntime {
    /// The mechanism this runtime was generated for.
    pub fn mechanism(&self) -> Mechanism {
        self.mechanism
    }

    /// Maximum number of threads the Lamport structures are sized for.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Words occupied by a raw (spin) lock under this mechanism.
    pub fn raw_lock_words(&self) -> usize {
        match self.mechanism {
            Mechanism::LamportPerLock => 2 + self.max_threads,
            _ => 1,
        }
    }

    /// Allocates a raw lock in the data segment.
    pub fn alloc_raw_lock(&self, data: &mut DataLayout, name: &str) -> DataAddr {
        data.array(name, self.raw_lock_words(), 0)
    }

    /// Allocates a blocking mutex: `[raw lock][state][waiters]`.
    pub fn alloc_mutex(&self, data: &mut DataLayout, name: &str) -> DataAddr {
        data.array(name, self.raw_lock_words() + 2, 0)
    }

    /// Allocates a condition variable (a sequence word).
    pub fn alloc_condvar(&self, data: &mut DataLayout, name: &str) -> DataAddr {
        data.array(name, 1, 0)
    }

    /// Byte offset of the mutex `state` word.
    pub fn mutex_state_offset(&self) -> i32 {
        4 * self.raw_lock_words() as i32
    }

    /// Byte offset of the mutex `waiters` word.
    pub fn mutex_waiters_offset(&self) -> i32 {
        self.mutex_state_offset() + 4
    }

    /// Emits a single Test-And-Set of the word at `$a0`, old value to
    /// `$v0`, in this runtime's flavor.
    ///
    /// # Panics
    ///
    /// Panics for [`Mechanism::LamportPerLock`], which has no Test-And-Set
    /// primitive — use [`SyncRuntime::emit_raw_enter`] instead.
    pub fn emit_tas(&self, asm: &mut Asm) {
        match self.mechanism {
            Mechanism::RasRegistered | Mechanism::UserLevelRestart => {
                asm.jal_to(self.tas_fn.expect("tas function emitted"));
            }
            Mechanism::RasInline => {
                tas::emit_tas_inline(asm);
            }
            Mechanism::KernelEmulation => tas::emit_tas_kernel(asm),
            Mechanism::Interlocked => tas::emit_tas_interlocked(asm),
            Mechanism::HardwareBit => tas::emit_tas_hardware_bit(asm),
            Mechanism::LamportBundled => {
                asm.jal_to(self.meta_tas_fn.expect("meta tas emitted"));
            }
            Mechanism::Rseq => {
                asm.jal_to(self.rseq_fn.expect("rseq tas emitted"));
            }
            Mechanism::LamportPerLock => {
                panic!("protocol (a) has no Test-And-Set; use emit_raw_enter")
            }
        }
    }

    /// Emits the atomic clear of the word at `$a0`.
    pub fn emit_clear(&self, asm: &mut Asm) {
        tas::emit_clear(asm);
    }

    /// Emits an inline spin-acquire of the raw lock at `$a0`: Test-And-Set
    /// until free, yielding the processor on contention (the uniprocessor
    /// form of `await`, §2.2).
    pub fn emit_raw_enter(&self, asm: &mut Asm) {
        if self.mechanism == Mechanism::LamportPerLock {
            asm.jal_to(self.lamport_enter.expect("lamport functions emitted"));
            return;
        }
        let retry = asm.bind_new();
        let done = asm.label();
        self.emit_tas(asm);
        asm.beqz(Reg::V0, done);
        emit_yield(asm);
        asm.j(retry);
        asm.bind(done);
    }

    /// Emits the inline release of the raw lock at `$a0`.
    pub fn emit_raw_exit(&self, asm: &mut Asm) {
        if self.mechanism == Mechanism::LamportPerLock {
            asm.jal_to(self.lamport_exit.expect("lamport functions emitted"));
            return;
        }
        self.emit_clear(asm);
    }

    /// Emits `jal __mutex_acquire` (`$a0` = mutex address).
    pub fn emit_mutex_acquire(&self, asm: &mut Asm) {
        asm.jal_to(self.mutex_acquire_fn);
    }

    /// Emits `jal __mutex_release` (`$a0` = mutex address).
    pub fn emit_mutex_release(&self, asm: &mut Asm) {
        asm.jal_to(self.mutex_release_fn);
    }

    /// Emits `jal __cv_wait` (`$a0` = condvar, `$a1` = mutex; the caller
    /// must hold the mutex).
    pub fn emit_cv_wait(&self, asm: &mut Asm) {
        asm.jal_to(self.cv_wait_fn);
    }

    /// Emits `jal __cv_signal` (`$a0` = condvar; caller holds the mutex).
    pub fn emit_cv_signal(&self, asm: &mut Asm) {
        asm.jal_to(self.cv_signal_fn);
    }

    /// Emits `jal __cv_broadcast` (`$a0` = condvar; caller holds the mutex).
    pub fn emit_cv_broadcast(&self, asm: &mut Asm) {
        asm.jal_to(self.cv_broadcast_fn);
    }

    /// The registered sequence range (Figure 4 window), when the mechanism
    /// uses one.
    pub fn registered_seq(&self) -> Option<SeqRange> {
        self.tas_seq
    }

    /// The rseq critical-section descriptor of `__rseq_tas`, when the
    /// mechanism is [`Mechanism::Rseq`].
    pub fn rseq_desc(&self) -> Option<RseqCs> {
        self.rseq_desc
    }

    /// Entry address of `__mutex_acquire` (for custom emitters that call
    /// it directly rather than through [`SyncRuntime::emit_mutex_acquire`]).
    pub fn mutex_acquire_addr(&self) -> CodeAddr {
        self.mutex_acquire_fn
    }

    /// Entry address of `__mutex_release`.
    pub fn mutex_release_addr(&self) -> CodeAddr {
        self.mutex_release_fn
    }

    /// Entry address of `__cv_wait`.
    pub fn cv_wait_addr(&self) -> CodeAddr {
        self.cv_wait_fn
    }

    /// Entry address of `__cv_signal`.
    pub fn cv_signal_addr(&self) -> CodeAddr {
        self.cv_signal_fn
    }

    /// Entry address of `__cv_broadcast`.
    pub fn cv_broadcast_addr(&self) -> CodeAddr {
        self.cv_broadcast_fn
    }
}

/// Builds a complete guest program around a [`SyncRuntime`].
#[derive(Debug)]
pub struct GuestBuilder {
    asm: Asm,
    data: DataLayout,
    rt: SyncRuntime,
}

impl GuestBuilder {
    /// Creates a builder and emits the runtime functions for `mechanism`.
    ///
    /// `max_threads` sizes the Lamport busy arrays and must cover every
    /// thread the program will create (including main).
    pub fn new(mechanism: Mechanism, max_threads: usize) -> GuestBuilder {
        assert!(max_threads >= 1, "at least the main thread exists");
        let mut asm = Asm::new();
        let mut data = DataLayout::new();
        data.word("__ras_register_result", 0);

        let mut rt = SyncRuntime {
            mechanism,
            max_threads,
            tas_fn: None,
            tas_seq: None,
            meta_tas_fn: None,
            lamport_enter: None,
            lamport_exit: None,
            rseq_fn: None,
            rseq_desc: None,
            mutex_acquire_fn: 0,
            mutex_release_fn: 0,
            cv_wait_fn: 0,
            cv_signal_fn: 0,
            cv_broadcast_fn: 0,
            user_seq_ranges: Vec::new(),
        };
        match mechanism {
            Mechanism::RasRegistered | Mechanism::UserLevelRestart => {
                let (entry, seq) = tas::emit_tas_registered(&mut asm);
                rt.tas_fn = Some(entry);
                rt.tas_seq = Some(seq);
                if mechanism == Mechanism::UserLevelRestart {
                    rt.user_seq_ranges.push(seq);
                }
            }
            Mechanism::LamportBundled => {
                let table = lamport::alloc_self_table(&mut data, max_threads);
                let self_fn = lamport::emit_cthread_self(&mut asm, table);
                let meta = lamport::alloc_lock(&mut data, "__lamport_meta", max_threads);
                rt.meta_tas_fn = Some(lamport::emit_meta_tas(&mut asm, meta, max_threads, self_fn));
            }
            Mechanism::LamportPerLock => {
                let table = lamport::alloc_self_table(&mut data, max_threads);
                let self_fn = lamport::emit_cthread_self(&mut asm, table);
                let (enter, exit) = lamport::emit_functions(&mut asm, max_threads, self_fn);
                rt.lamport_enter = Some(enter);
                rt.lamport_exit = Some(exit);
            }
            Mechanism::Rseq => {
                let t = rseq::emit_rseq_tas(&mut asm, &mut data, max_threads);
                rt.rseq_fn = Some(t.entry);
                rt.rseq_desc = Some(t.desc);
            }
            Mechanism::RasInline
            | Mechanism::KernelEmulation
            | Mechanism::Interlocked
            | Mechanism::HardwareBit => {}
        }
        lock::emit_lock_functions(&mut asm, &mut rt);
        GuestBuilder { asm, data, rt }
    }

    /// The assembler, for emitting user code.
    pub fn asm(&mut self) -> &mut Asm {
        &mut self.asm
    }

    /// The data layout, for allocating user data.
    pub fn data(&mut self) -> &mut DataLayout {
        &mut self.data
    }

    /// The runtime emitters.
    pub fn rt(&self) -> &SyncRuntime {
        self.rt_ref()
    }

    fn rt_ref(&self) -> &SyncRuntime {
        &self.rt
    }

    /// Splits the builder into its assembler/data/runtime parts — needed
    /// when an emitter requires the runtime and the assembler at once.
    pub fn parts(&mut self) -> (&mut Asm, &mut DataLayout, &SyncRuntime) {
        (&mut self.asm, &mut self.data, &self.rt)
    }

    /// Finishes the program: emits `crt0` (the entry point — explicit
    /// registration when needed, then a call to `main`, then exit) and the
    /// user-level recovery routine, and resolves all labels.
    ///
    /// # Errors
    ///
    /// Propagates [`AsmError`] from unresolved labels in user code.
    pub fn finish(mut self, main: CodeAddr) -> Result<BuiltGuest, AsmError> {
        self.asm.set_entry_here();
        self.asm.bind_symbol("__crt0");
        if self.rt.mechanism == Mechanism::RasRegistered {
            let seq = self
                .rt
                .tas_seq
                .expect("registered mechanism has a sequence");
            self.asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
            self.asm.li(Reg::A0, seq.start as i32);
            self.asm.li(Reg::A1, seq.len as i32);
            self.asm.syscall();
            let result = self
                .data
                .symbol("__ras_register_result")
                .expect("allocated in new()");
            self.asm.li(Reg::T0, result as i32);
            self.asm.sw(Reg::V0, Reg::T0, 0);
        }
        self.asm.jal_to(main);
        crate::codegen::emit_exit(&mut self.asm);

        let mut recovery = None;
        if self.rt.mechanism == Mechanism::UserLevelRestart {
            let entry = emit_recovery(&mut self.asm, &self.rt.user_seq_ranges);
            let len = self.asm.here() - entry;
            recovery = Some((entry, len));
        }

        let mechanism = self.rt.mechanism;
        let registered_seq = self.rt.tas_seq;
        let program = self.asm.finish()?;
        let strategy = match mechanism {
            Mechanism::UserLevelRestart => {
                let (recovery_pc, recovery_len) = recovery.expect("emitted above");
                StrategyKind::UserLevel {
                    recovery_pc,
                    recovery_len,
                }
            }
            other => other.base_strategy(),
        };
        Ok(BuiltGuest {
            program,
            data: self.data.finish(),
            mechanism,
            strategy,
            registered_seq,
        })
    }
}

/// Emits the fixed user-level recovery routine of §4.1. Entered with the
/// interrupted PC pushed at `0($sp)` by the kernel; determines whether
/// that PC lies inside a restartable sequence, rewrites it to the
/// sequence start if so, then pops and resumes.
///
/// Uses only `$k0`/`$k1`, which the register convention reserves for the
/// kernel — the interrupted context never holds live values there.
fn emit_recovery(asm: &mut Asm, ranges: &[SeqRange]) -> CodeAddr {
    let entry = asm.bind_symbol("__recovery");
    let done = asm.label();
    asm.lw(Reg::K0, Reg::SP, 0);
    for range in ranges {
        let next = asm.label();
        asm.li(Reg::K1, range.start as i32);
        asm.bltu(Reg::K0, Reg::K1, next);
        asm.li(Reg::K1, range.end() as i32);
        asm.bgeu(Reg::K0, Reg::K1, next);
        asm.li(Reg::K0, range.start as i32);
        asm.sw(Reg::K0, Reg::SP, 0);
        asm.j(done);
        asm.bind(next);
    }
    asm.bind(done);
    asm.lw(Reg::K0, Reg::SP, 0);
    asm.addi(Reg::SP, Reg::SP, 4);
    asm.jr(Reg::K0);
    entry
}

/// A finished guest program plus everything needed to boot it.
#[derive(Debug, Clone)]
pub struct BuiltGuest {
    /// The program image.
    pub program: Program,
    /// The static data segment.
    pub data: DataImage,
    /// The mechanism the runtime was generated for.
    pub mechanism: Mechanism,
    /// The kernel strategy this program requires.
    pub strategy: StrategyKind,
    /// The registered (Figure 4) sequence window, if the mechanism has one.
    pub registered_seq: Option<SeqRange>,
}

impl BuiltGuest {
    /// A kernel configuration for running this guest on `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile cannot run the mechanism (e.g.
    /// [`Mechanism::Interlocked`] on the R3000).
    pub fn kernel_config(&self, profile: CpuProfile) -> KernelConfig {
        assert!(
            self.mechanism.supported_by(&profile),
            "{} is not supported by {}",
            self.mechanism,
            profile.name()
        );
        KernelConfig::new(profile, self.strategy.clone())
    }

    /// Boots a kernel with this guest and the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates [`BootError`].
    pub fn boot(&self, config: KernelConfig) -> Result<Kernel, BootError> {
        Kernel::boot(config, self.program.clone(), &self.data)
    }

    /// Applies the §3.1 binary-compatibility fallback: overwrites the
    /// registered restartable sequence with a kernel-emulation call, for
    /// running a [`Mechanism::RasRegistered`] binary on a kernel without
    /// registration support. The strategy downgrades to
    /// [`StrategyKind::None`].
    ///
    /// # Panics
    ///
    /// Panics if the mechanism has no registered sequence to overwrite.
    pub fn apply_emulation_fallback(&mut self) {
        let seq = self
            .registered_seq
            .expect("only registered mechanisms can fall back");
        let body = tas::emulation_fallback_body();
        // The window is the sequence plus its return jump (Figure 4's four
        // instructions).
        self.program.patch(seq.start, seq.len as usize + 1, &body);
        self.strategy = StrategyKind::None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_emits_runtime_for_every_mechanism() {
        for mechanism in Mechanism::all() {
            let mut b = GuestBuilder::new(mechanism, 4);
            let main = b.asm().here();
            b.asm().jr(Reg::RA);
            let built = b.finish(main).unwrap();
            assert!(built.program.len() > 2, "{mechanism}: too little code");
            assert_eq!(built.mechanism, mechanism);
            assert!(built.program.symbol("__crt0").is_some());
        }
    }

    #[test]
    fn lock_entry_and_exit_points_carry_their_analyzer_symbols() {
        // The static lockset pass (`ras-analyze`) summarizes calls into
        // the runtime *by symbol name*: `__mutex_acquire` must-acquires
        // the lock in `$a0`, `__mutex_release` releases it,
        // `__tas_registered` / `__meta_tas` return Test-And-Set results,
        // `__lamport_enter`/`__lamport_exit` bracket protocol (a)'s
        // critical sections, and any `__`-prefixed region is trusted
        // runtime interior (its unprovable windows are not warned about).
        // Renaming or unbinding any of these silently blinds the
        // analysis, so the binding is a cross-crate contract, not a
        // debugging nicety.
        for mechanism in Mechanism::all() {
            let mut b = GuestBuilder::new(mechanism, 4);
            let rt = b.rt().clone();
            let main = b.asm().here();
            b.asm().jr(Reg::RA);
            let built = b.finish(main).unwrap();
            let sym = |name: &str| built.program.symbol(name);
            assert_eq!(
                sym("__mutex_acquire"),
                Some(rt.mutex_acquire_fn),
                "{mechanism}"
            );
            assert_eq!(
                sym("__mutex_release"),
                Some(rt.mutex_release_fn),
                "{mechanism}"
            );
            assert_eq!(sym("__cv_wait"), Some(rt.cv_wait_fn), "{mechanism}");
            assert_eq!(sym("__cv_signal"), Some(rt.cv_signal_fn), "{mechanism}");
            assert_eq!(
                sym("__cv_broadcast"),
                Some(rt.cv_broadcast_fn),
                "{mechanism}"
            );
            assert_eq!(sym("__tas_registered"), rt.tas_fn, "{mechanism}");
            assert_eq!(sym("__meta_tas"), rt.meta_tas_fn, "{mechanism}");
            assert_eq!(sym("__lamport_enter"), rt.lamport_enter, "{mechanism}");
            assert_eq!(sym("__lamport_exit"), rt.lamport_exit, "{mechanism}");
            assert_eq!(sym("__rseq_tas"), rt.rseq_fn, "{mechanism}");
        }
    }

    #[test]
    fn registered_mechanism_records_its_window() {
        let mut b = GuestBuilder::new(Mechanism::RasRegistered, 2);
        let main = b.asm().here();
        b.asm().jr(Reg::RA);
        let built = b.finish(main).unwrap();
        let seq = built.registered_seq.unwrap();
        assert_eq!(seq.len, 3);
        assert_eq!(built.strategy, StrategyKind::Registered);
        assert_eq!(built.program.symbol("__tas_registered"), Some(seq.start));
    }

    #[test]
    fn user_level_strategy_points_at_the_recovery_routine() {
        let mut b = GuestBuilder::new(Mechanism::UserLevelRestart, 2);
        let main = b.asm().here();
        b.asm().jr(Reg::RA);
        let built = b.finish(main).unwrap();
        let recovery = built.program.symbol("__recovery").unwrap();
        match built.strategy {
            StrategyKind::UserLevel {
                recovery_pc,
                recovery_len,
            } => {
                assert_eq!(recovery_pc, recovery);
                assert!(recovery_len >= 4, "routine spans its check and return");
            }
            other => panic!("wrong strategy {other:?}"),
        }
    }

    #[test]
    fn fallback_patch_replaces_the_sequence() {
        let mut b = GuestBuilder::new(Mechanism::RasRegistered, 2);
        let main = b.asm().here();
        b.asm().jr(Reg::RA);
        let mut built = b.finish(main).unwrap();
        let seq = built.registered_seq.unwrap();
        built.apply_emulation_fallback();
        assert_eq!(built.strategy, StrategyKind::None);
        assert_eq!(
            built.program.fetch(seq.start).unwrap().opcode(),
            ras_isa::Opcode::Li
        );
        assert_eq!(
            built.program.fetch(seq.start + 1).unwrap().opcode(),
            ras_isa::Opcode::Syscall
        );
    }

    #[test]
    fn raw_lock_sizes_differ_by_mechanism() {
        let b = GuestBuilder::new(Mechanism::RasInline, 8);
        assert_eq!(b.rt().raw_lock_words(), 1);
        let b = GuestBuilder::new(Mechanism::LamportPerLock, 8);
        assert_eq!(b.rt().raw_lock_words(), 10);
        assert_eq!(b.rt().mutex_state_offset(), 40);
        assert_eq!(b.rt().mutex_waiters_offset(), 44);
    }

    #[test]
    #[should_panic(expected = "no Test-And-Set")]
    fn per_lock_lamport_has_no_tas() {
        let b = GuestBuilder::new(Mechanism::LamportPerLock, 2);
        let mut asm = Asm::new();
        b.rt().emit_tas(&mut asm);
    }

    #[test]
    fn kernel_config_rejects_unsupported_profile() {
        let mut b = GuestBuilder::new(Mechanism::Interlocked, 2);
        let main = b.asm().here();
        b.asm().jr(Reg::RA);
        let built = b.finish(main).unwrap();
        assert!(std::panic::catch_unwind(|| { built.kernel_config(CpuProfile::r3000()) }).is_err());
        let _ = built.kernel_config(CpuProfile::i486());
    }
}
