//! rseq-style critical-section code generators — the modern Linux
//! descendant of the paper's restartable atomic sequences, with abort
//! handlers instead of restart-from-top.
//!
//! The generated `__rseq_tas` follows the production `rseq` shape:
//!
//! 1. **Lazy registration** — the first call on each thread registers a
//!    per-thread area word with the kernel (`SYS_RSEQ`) and marks a guard
//!    word so later calls skip the syscall (glibc registers at thread
//!    start; this runtime has no TLS init hook, so the fast path carries
//!    a two-instruction guard check instead).
//! 2. **Publish** — store the descriptor address into the area word.
//! 3. **Window** — the three-instruction Test-And-Set
//!    (`lw; li; sw`). A preemption anywhere in the window redirects the
//!    thread to the abort handler.
//! 4. **Commit + clear** — past the committing store the kernel lazily
//!    clears the stale descriptor pointer; the function clears it eagerly
//!    on the common path.
//! 5. **Abort handler** — placed after the `jr ra`, reachable only via
//!    kernel abort dispatch; it simply retries from the publish store
//!    (re-publication re-arms the descriptor).
//!
//! The descriptor's code addresses are only known after emission, so the
//! four descriptor words are allocated zeroed up front and patched via
//! [`DataLayout::set_word`].

use ras_isa::{abi, Asm, CodeAddr, DataLayout, Reg, RseqCs, RSEQ_CS_WORDS};

/// An emitted rseq Test-And-Set: its entry point and the descriptor its
/// window publishes.
#[derive(Debug, Clone, Copy)]
pub struct RseqTas {
    /// Entry address of the `__rseq_tas` function.
    pub entry: CodeAddr,
    /// The critical-section descriptor (also declared on the program for
    /// the static abort-safety pass).
    pub desc: RseqCs,
}

/// Emits the `__rseq_tas` function (`$a0` = lock word, old value in
/// `$v0`; preserves `$a0`, clobbers `$v0`, `$t0..$t4`, and — on each
/// thread's first call — traps into the kernel to register). Allocates
/// the per-thread area and guard arrays plus the descriptor words in
/// `data`, sized for `max_threads` threads.
pub fn emit_rseq_tas(asm: &mut Asm, data: &mut DataLayout, max_threads: usize) -> RseqTas {
    emit_rseq_tas_named(
        asm,
        data,
        max_threads,
        "__rseq_tas",
        "__rseq_area",
        "__rseq_registered",
        "__rseq_cs_tas",
        None,
    )
}

/// Emits a deliberately **broken** variant of [`emit_rseq_tas`] whose
/// abort handler performs a visible store (to `scratch`) before
/// re-publishing the descriptor — the classic abort-path bug the static
/// abort-safety pass exists to catch. Used by lint tests; never by real
/// workloads.
pub fn emit_rseq_tas_broken(
    asm: &mut Asm,
    data: &mut DataLayout,
    max_threads: usize,
    scratch: u32,
) -> RseqTas {
    emit_rseq_tas_named(
        asm,
        data,
        max_threads,
        "__rseq_tas_broken",
        "__rseq_area_broken",
        "__rseq_registered_broken",
        "__rseq_cs_tas_broken",
        Some(scratch),
    )
}

#[allow(clippy::too_many_arguments)]
fn emit_rseq_tas_named(
    asm: &mut Asm,
    data: &mut DataLayout,
    max_threads: usize,
    fn_name: &str,
    area_name: &str,
    guard_name: &str,
    cs_name: &str,
    broken_scratch: Option<u32>,
) -> RseqTas {
    let area = data.array(area_name, max_threads, 0);
    let guard = data.array(guard_name, max_threads, 0);
    let cs_addr = data.array(cs_name, RSEQ_CS_WORDS, 0);

    let entry = asm.bind_symbol(fn_name);
    let registered = asm.label();
    // $t1 = 4 * thread id; $gp carries the id (ABI, written at spawn).
    asm.slli(Reg::T1, Reg::GP, 2);
    asm.li(Reg::T3, guard as i32);
    asm.add(Reg::T3, Reg::T3, Reg::T1);
    asm.lw(Reg::T2, Reg::T3, 0);
    asm.bnez(Reg::T2, registered);
    // First call on this thread: register our area slot. The kernel
    // writes only $v0 back, but $a0/$a1/$v0 are trap arguments, so the
    // lock address is stashed in $t4 across the syscall.
    asm.mv(Reg::T4, Reg::A0);
    asm.li(Reg::T0, area as i32);
    asm.add(Reg::A0, Reg::T0, Reg::T1);
    asm.li(Reg::A1, 0);
    asm.li(Reg::V0, abi::SYS_RSEQ as i32);
    asm.syscall();
    asm.mv(Reg::A0, Reg::T4);
    asm.li(Reg::T2, 1);
    asm.sw(Reg::T2, Reg::T3, 0);
    asm.bind(registered);
    // $t0 = this thread's area word.
    asm.li(Reg::T0, area as i32);
    asm.add(Reg::T0, Reg::T0, Reg::T1);
    // Publish the descriptor, then run the window. The window starts at
    // the instruction after the publish store, so there is no gap in
    // which the kernel could see a published descriptor with the PC
    // still outside it (and lazily clear it mid-entry).
    let retry = asm.bind_new();
    asm.li(Reg::V0, cs_addr as i32);
    asm.sw(Reg::V0, Reg::T0, 0);
    let start_ip = asm.here();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T2, 1);
    asm.sw(Reg::T2, Reg::A0, 0); // committing store
    asm.sw(Reg::ZERO, Reg::T0, 0); // eager clear on the common path
    asm.jr(Reg::RA);
    // Abort handler: after the return, reachable only via kernel abort
    // dispatch. The kernel cleared the area word, so retrying through the
    // publish store re-arms the descriptor.
    let abort_ip = asm.here();
    if let Some(scratch) = broken_scratch {
        // BROKEN: a visible side effect before the retry republishes —
        // if this handler itself is preempted, the store has escaped an
        // aborted (never-committed) critical section.
        asm.li(Reg::T5, scratch as i32);
        asm.sw(Reg::T2, Reg::T5, 0);
    }
    asm.j(retry);

    let desc = RseqCs {
        start_ip,
        post_commit_offset: 3,
        abort_ip,
        flags: 0,
        cs_addr,
    };
    // Dual declaration: the ordinary seq-range makes the window visible
    // to every existing range-aware consumer (observability booleans,
    // protected-range reconciliation); the rseq descriptor drives the
    // kernel ABI and the abort-safety pass.
    asm.declare_seq(desc.window());
    asm.declare_rseq(desc);
    for (i, w) in desc.to_words().iter().enumerate() {
        data.set_word(cs_addr + 4 * i as u32, *w);
    }
    RseqTas { entry, desc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_isa::Opcode;

    #[test]
    fn descriptor_words_are_patched_into_the_data_image() {
        let mut asm = Asm::new();
        let mut data = DataLayout::new();
        let t = emit_rseq_tas(&mut asm, &mut data, 4);
        let p = asm.finish().unwrap();
        let img = data.finish();
        let cs = img.symbol("__rseq_cs_tas").unwrap();
        assert_eq!(cs, t.desc.cs_addr);
        let init: std::collections::BTreeMap<u32, u32> =
            img.initializers().iter().copied().collect();
        assert_eq!(init.get(&cs).copied().unwrap_or(0), t.desc.start_ip);
        assert_eq!(init.get(&(cs + 4)).copied().unwrap_or(0), 3);
        assert_eq!(init.get(&(cs + 8)).copied().unwrap_or(0), t.desc.abort_ip);
        assert_eq!(init.get(&(cs + 12)).copied().unwrap_or(0), 0);
        assert_eq!(p.rseq_descs(), &[t.desc]);
        assert_eq!(p.seq_ranges(), &[t.desc.window()]);
    }

    #[test]
    fn window_is_publish_adjacent_and_handler_follows_the_return() {
        let mut asm = Asm::new();
        let mut data = DataLayout::new();
        let t = emit_rseq_tas(&mut asm, &mut data, 2);
        let p = asm.finish().unwrap();
        // Publish store immediately precedes the window.
        assert_eq!(
            p.fetch(t.desc.start_ip - 1).unwrap().opcode(),
            Opcode::Sw,
            "publish store"
        );
        let ops: Vec<Opcode> = (t.desc.start_ip..t.desc.post_commit_ip())
            .map(|pc| p.fetch(pc).unwrap().opcode())
            .collect();
        assert_eq!(ops, vec![Opcode::Lw, Opcode::Li, Opcode::Sw]);
        // The clear and return sit between commit and abort handler.
        assert_eq!(
            p.fetch(t.desc.post_commit_ip()).unwrap().opcode(),
            Opcode::Sw
        );
        assert_eq!(
            p.fetch(t.desc.abort_ip - 1).unwrap().opcode(),
            Opcode::Jr,
            "handler is unreachable by fallthrough"
        );
        assert_eq!(p.fetch(t.desc.abort_ip).unwrap().opcode(), Opcode::J);
    }

    #[test]
    fn broken_variant_stores_before_republishing() {
        let mut asm = Asm::new();
        let mut data = DataLayout::new();
        let scratch = data.word("scratch", 0);
        let t = emit_rseq_tas_broken(&mut asm, &mut data, 2, scratch);
        let p = asm.finish().unwrap();
        assert_eq!(p.fetch(t.desc.abort_ip).unwrap().opcode(), Opcode::Li);
        assert_eq!(p.fetch(t.desc.abort_ip + 1).unwrap().opcode(), Opcode::Sw);
    }
}
