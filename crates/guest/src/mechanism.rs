use std::fmt;

use ras_kernel::StrategyKind;
use ras_machine::CpuProfile;

/// A mutual-exclusion mechanism from the paper, selecting both the guest
/// code shape and the kernel support it requires.
///
/// | Variant | Paper section | Kernel strategy |
/// |---|---|---|
/// | [`Mechanism::RasRegistered`] | §3.1 (Mach, Figure 4) | explicit registration |
/// | [`Mechanism::RasInline`] | §3.2 (Taos, Figure 5) | designated sequences |
/// | [`Mechanism::KernelEmulation`] | §2.3 | none (always available) |
/// | [`Mechanism::Interlocked`] | §2.1 / §6 | none (hardware TAS) |
/// | [`Mechanism::LamportPerLock`] | §2.2 protocol (a), Figure 1 | none |
/// | [`Mechanism::LamportBundled`] | §2.2 protocol (b), Figure 2 | none |
/// | [`Mechanism::UserLevelRestart`] | §4.1 | user-level redirect |
/// | [`Mechanism::HardwareBit`] | §7 (i860) | hardware restart bit |
/// | [`Mechanism::Rseq`] | modern descendant (Linux `rseq`) | rseq abort dispatch |
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mechanism {
    /// Out-of-line restartable atomic sequence, explicitly registered with
    /// the kernel. The Table 1 row "Restartable Atomic Sequences (branch)".
    RasRegistered,
    /// Inlined designated restartable atomic sequence with the landmark
    /// no-op. The Table 1 row "Restartable Atomic Sequences (inline)".
    RasInline,
    /// Test-And-Set as a system call with interrupts disabled.
    KernelEmulation,
    /// The hardware memory-interlocked Test-And-Set instruction.
    Interlocked,
    /// Lamport's fast mutual exclusion, one reservation structure per lock
    /// — software reservation protocol (a).
    LamportPerLock,
    /// Lamport's algorithm bundled into a single "meta" Test-And-Set
    /// guarding all regular atomic objects — protocol (b).
    LamportBundled,
    /// Restartable sequences detected and repaired at user level (§4.1):
    /// the kernel redirects every involuntarily suspended thread through a
    /// guest recovery routine.
    UserLevelRestart,
    /// The i860's `begin_atomic` processor-status bit.
    HardwareBit,
    /// Linux-`rseq`-style restartable sequences with abort handlers: each
    /// thread registers an rseq area with the kernel (`SYS_RSEQ`),
    /// publishes a critical-section descriptor before entering the window,
    /// and is redirected to the descriptor's abort handler — not the
    /// window top — when preempted inside it.
    Rseq,
}

impl Mechanism {
    /// All mechanisms, in presentation order.
    pub fn all() -> [Mechanism; 9] {
        [
            Mechanism::RasRegistered,
            Mechanism::RasInline,
            Mechanism::KernelEmulation,
            Mechanism::Interlocked,
            Mechanism::LamportPerLock,
            Mechanism::LamportBundled,
            Mechanism::UserLevelRestart,
            Mechanism::HardwareBit,
            Mechanism::Rseq,
        ]
    }

    /// The software mechanisms measured on the R3000 in Table 1 (which has
    /// no hardware atomic support), in the table's row order.
    pub fn table1_lineup() -> [Mechanism; 5] {
        [
            Mechanism::RasRegistered,
            Mechanism::RasInline,
            Mechanism::KernelEmulation,
            Mechanism::LamportPerLock,
            Mechanism::LamportBundled,
        ]
    }

    /// Short lowercase identifier for reports.
    pub fn id(self) -> &'static str {
        match self {
            Mechanism::RasRegistered => "ras-registered",
            Mechanism::RasInline => "ras-inline",
            Mechanism::KernelEmulation => "kernel-emulation",
            Mechanism::Interlocked => "interlocked",
            Mechanism::LamportPerLock => "lamport-a",
            Mechanism::LamportBundled => "lamport-b",
            Mechanism::UserLevelRestart => "user-level",
            Mechanism::HardwareBit => "hardware-bit",
            Mechanism::Rseq => "rseq",
        }
    }

    /// Human-readable name matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            Mechanism::RasRegistered => "Restartable Atomic Sequences (branch)",
            Mechanism::RasInline => "Restartable Atomic Sequences (inline)",
            Mechanism::KernelEmulation => "Kernel Emulation",
            Mechanism::Interlocked => "Memory-Interlocked Instruction",
            Mechanism::LamportPerLock => "Software-reservation (a)",
            Mechanism::LamportBundled => "Software-reservation (b)",
            Mechanism::UserLevelRestart => "User-Level Restart",
            Mechanism::HardwareBit => "Hardware Restart Bit (i860)",
            Mechanism::Rseq => "Restartable Sequences (abort handler)",
        }
    }

    /// Whether the guest code for this mechanism uses restartable atomic
    /// sequences (as opposed to a pessimistic technique).
    pub fn is_optimistic(self) -> bool {
        matches!(
            self,
            Mechanism::RasRegistered
                | Mechanism::RasInline
                | Mechanism::UserLevelRestart
                | Mechanism::HardwareBit
                | Mechanism::Rseq
        )
    }

    /// Whether `profile` can run this mechanism.
    pub fn supported_by(self, profile: &CpuProfile) -> bool {
        match self {
            Mechanism::Interlocked => profile.has_interlocked(),
            Mechanism::HardwareBit => profile.has_restart_bit(),
            _ => true,
        }
    }

    /// The kernel strategy this mechanism requires. The user-level restart
    /// mechanism needs the guest recovery routine's address, which is only
    /// known once the program is built, so it is provided by
    /// [`crate::BuiltGuest::strategy`] rather than here.
    pub fn base_strategy(self) -> StrategyKind {
        match self {
            Mechanism::RasRegistered => StrategyKind::Registered,
            Mechanism::RasInline => StrategyKind::Designated,
            Mechanism::HardwareBit => StrategyKind::HardwareBit,
            Mechanism::Rseq => StrategyKind::Rseq,
            Mechanism::UserLevelRestart
            | Mechanism::KernelEmulation
            | Mechanism::Interlocked
            | Mechanism::LamportPerLock
            | Mechanism::LamportBundled => StrategyKind::None,
        }
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let ids: Vec<_> = Mechanism::all().iter().map(|m| m.id()).collect();
        for (i, a) in ids.iter().enumerate() {
            for b in &ids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn r3000_supports_exactly_the_software_mechanisms() {
        let p = CpuProfile::r3000();
        assert!(Mechanism::RasInline.supported_by(&p));
        assert!(Mechanism::KernelEmulation.supported_by(&p));
        assert!(!Mechanism::Interlocked.supported_by(&p));
        assert!(!Mechanism::HardwareBit.supported_by(&p));
    }

    #[test]
    fn i860_supports_everything() {
        let p = CpuProfile::i860();
        for m in Mechanism::all() {
            assert!(m.supported_by(&p), "{m}");
        }
    }

    #[test]
    fn optimism_classification_matches_the_paper() {
        assert!(Mechanism::Rseq.is_optimistic());
        assert!(Mechanism::RasInline.is_optimistic());
        assert!(Mechanism::UserLevelRestart.is_optimistic());
        assert!(!Mechanism::KernelEmulation.is_optimistic());
        assert!(!Mechanism::LamportPerLock.is_optimistic());
        assert!(!Mechanism::Interlocked.is_optimistic());
    }

    #[test]
    fn table1_lineup_has_no_hardware_rows() {
        for m in Mechanism::table1_lineup() {
            assert!(m.supported_by(&CpuProfile::r3000()), "{m}");
        }
    }
}
