//! The paper's figures, regenerated from the real code generators.
//!
//! Figures 1–5 of the paper are code listings, not data plots. Each
//! renderer below assembles the corresponding implementation with the
//! same emitters the experiments use and disassembles it, so the listings
//! shown in documentation are guaranteed to match the code that actually
//! ran — the executable equivalent of "reproducing the figure".

use ras_guest::{lamport, tas};
use ras_isa::{Asm, Program, Reg};

fn listing(title: &str, description: &str, program: &Program) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(description);
    out.push_str("\n\n");
    for line in program.disassemble().lines() {
        out.push_str("    ");
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Figure 1: Lamport's fast mutual exclusion algorithm, as the
/// `__lamport_enter`/`__lamport_exit` guest functions (protocol (a)),
/// including the `__cthread_self` identifier lookup whose cost drives the
/// (a)/(b) comparison.
pub fn figure1() -> String {
    let mut asm = Asm::new();
    let self_fn = lamport::emit_cthread_self(&mut asm, 0x100);
    lamport::emit_functions(&mut asm, 4, self_fn);
    let program = asm.finish().expect("assembles");
    listing(
        "Figure 1: Lamport's fast mutual exclusion algorithm",
        "Protocol (a): per-lock reservation structure {y, x, b[N]} at $a0;\n\
         `await` is a load/branch/yield loop; N = 4 in this listing.",
        &program,
    )
}

/// Figure 2: the bundled "meta" Test-And-Set (protocol (b)).
pub fn figure2() -> String {
    let mut asm = Asm::new();
    let self_fn = lamport::emit_cthread_self(&mut asm, 0x100);
    lamport::emit_meta_tas(&mut asm, 0x200, 4, self_fn);
    let program = asm.finish().expect("assembles");
    listing(
        "Figure 2: Bundled Test-And-Set using Lamport's algorithm",
        "Lamport's enter/exit (on the meta structure at 0x200) brackets the\n\
         conditional test-and-set of the word at $a0; the store is\n\
         conditional exactly as in the paper, because AtomicClear is a bare\n\
         store outside the meta lock.",
        &program,
    )
}

/// Figure 3: the generic restartable-sequence Test-And-Set. The generic
/// form is Figure 4's window without the linkage: load, set, store — the
/// kernel guarantees the three instructions re-execute from the load if
/// interrupted.
pub fn figure3() -> String {
    let mut asm = Asm::new();
    asm.bind_symbol("Test-And-Set");
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.bind_symbol("AtomicClear");
    asm.sw(Reg::ZERO, Reg::A0, 0);
    let program = asm.finish().expect("assembles");
    listing(
        "Figure 3: Generic Test-And-Set using a restartable atomic sequence",
        "Instructions 0..3 form the restartable sequence: re-executing from\n\
         the load after any interruption yields an atomic read-modify-write.\n\
         The clear is a single store, atomic on its own.",
        &program,
    )
}

/// Figure 4: the explicitly registered (Mach 3.0) Test-And-Set procedure.
pub fn figure4() -> String {
    let mut asm = Asm::new();
    tas::emit_tas_registered(&mut asm);
    let program = asm.finish().expect("assembles");
    listing(
        "Figure 4: Restartable Test-And-Set procedure using explicit registration",
        "The registered window is instructions 0..3 (lw/li/sw); the return\n\
         jump lies outside it. (The paper's MIPS version places the store\n\
         in the `j ra` delay slot; this ISA has no delay slots.)",
        &program,
    )
}

/// Figure 5: the inlined designated sequence for mutex acquisition.
pub fn figure5() -> String {
    let mut asm = Asm::new();
    asm.bind_symbol("acquire");
    tas::emit_tas_inline(&mut asm);
    asm.bind_symbol("SlowPath");
    asm.jr(Reg::RA);
    let program = asm.finish().expect("assembles");
    listing(
        "Figure 5: A restartable atomic sequence for mutex acquisition (designated)",
        "The landmark no-op is never emitted outside designated sequences,\n\
         making the kernel's two-stage opcode/landmark check unambiguous.\n\
         The branch exits to the out-of-line slow path on contention.",
        &program,
    )
}

/// All five figures concatenated.
pub fn render_figures() -> String {
    [figure1(), figure2(), figure3(), figure4(), figure5()].join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders_nonempty_assembly() {
        for (i, fig) in [figure1(), figure2(), figure3(), figure4(), figure5()]
            .iter()
            .enumerate()
        {
            assert!(fig.lines().count() > 5, "figure {} too short", i + 1);
            assert!(fig.contains("Figure"), "figure {} missing title", i + 1);
        }
    }

    #[test]
    fn designated_figures_show_the_landmark() {
        assert!(figure5().contains("landmark"));
        assert!(!figure4().contains("landmark"), "registered form has none");
    }

    #[test]
    fn lamport_figures_contain_their_symbols() {
        let f1 = figure1();
        assert!(f1.contains("__lamport_enter:"));
        assert!(f1.contains("__lamport_exit:"));
        assert!(f1.contains("__cthread_self:"));
        assert!(figure2().contains("__meta_tas:"));
    }

    #[test]
    fn render_figures_concatenates_all_five() {
        let all = render_figures();
        for n in ["Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"] {
            assert!(all.contains(n));
        }
    }
}
