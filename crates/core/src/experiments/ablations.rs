//! Ablation experiments for the design choices the paper discusses in
//! prose: the optimism assumption as a function of the quantum, the PC
//! check placement (§4.1), in-kernel versus user-level recovery (§4.1),
//! and the instruction mix each mechanism actually executes.

use ras_guest::workloads::{counter_loop, CounterSpec};
use ras_guest::Mechanism;
use ras_isa::Opcode;
use ras_machine::CpuProfile;

use crate::report::AsciiTable;
use crate::{run_guest, run_guest_keeping_kernel, CheckTime, RunOptions};

/// One row of the quantum sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantumSweepRow {
    /// Preemption quantum in cycles.
    pub quantum: u64,
    /// Timer preemptions observed.
    pub preemptions: u64,
    /// Sequence restarts performed.
    pub restarts: u64,
    /// Microseconds per critical section.
    pub us_per_op: f64,
}

impl QuantumSweepRow {
    /// Restarts per preemption — the probability a suspension landed
    /// inside a sequence.
    pub fn restart_rate(&self) -> f64 {
        self.restarts as f64 / self.preemptions.max(1) as f64
    }
}

/// Sweeps the preemption quantum for a mechanism on the two-worker
/// counter microbenchmark. Each quantum is an independent deterministic
/// cell, so the sweep points fan out across a worker pool and come back
/// in input order.
pub fn quantum_sweep(
    mechanism: Mechanism,
    quanta: &[u64],
    iterations: u32,
) -> Vec<QuantumSweepRow> {
    ras_par::parallel_map(quanta, |&quantum| {
        let spec = CounterSpec {
            iterations,
            workers: 2,
            ..Default::default()
        };
        let mut options = RunOptions::new(CpuProfile::r3000());
        options.quantum = quantum;
        options.jitter = 5;
        options.seed = 11;
        let report = run_guest(&counter_loop(mechanism, &spec), &options);
        QuantumSweepRow {
            quantum,
            preemptions: report.stats.preemptions,
            restarts: report.stats.ras_restarts,
            us_per_op: report.micros / f64::from(iterations * 2),
        }
    })
}

/// Renders the quantum sweep.
pub fn render_quantum_sweep(mechanism: Mechanism, rows: &[QuantumSweepRow]) -> String {
    let mut t = AsciiTable::new(
        &format!(
            "Ablation: restart behavior vs preemption quantum ({})",
            mechanism.id()
        ),
        &[
            "Quantum",
            "Preemptions",
            "Restarts",
            "Restart rate",
            "µs/op",
        ],
    );
    for row in rows {
        t.row(vec![
            row.quantum.to_string(),
            row.preemptions.to_string(),
            row.restarts.to_string(),
            format!("{:.4}", row.restart_rate()),
            format!("{:.3}", row.us_per_op),
        ]);
    }
    t.to_string()
}

/// One row of the check-placement comparison (§4.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckTimeRow {
    /// The mechanism.
    pub mechanism: Mechanism,
    /// When the check ran.
    pub check: CheckTime,
    /// Total machine cycles for the run.
    pub cycles: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Final counter value (must be identical across placements).
    pub counter: u32,
}

/// Runs the same hostile workload with the PC check at suspend (Mach) and
/// at resume (Taos).
pub fn check_time_comparison(mechanism: Mechanism, iterations: u32) -> Vec<CheckTimeRow> {
    [CheckTime::OnSuspend, CheckTime::OnResume]
        .into_iter()
        .map(|check| {
            let spec = CounterSpec {
                iterations,
                workers: 2,
                ..Default::default()
            };
            let mut options = RunOptions::new(CpuProfile::r3000());
            options.quantum = 500;
            options.check_time = check;
            let built = counter_loop(mechanism, &spec);
            let (report, kernel) = run_guest_keeping_kernel(&built, &options);
            CheckTimeRow {
                mechanism,
                check,
                cycles: report.cycles,
                restarts: report.stats.ras_restarts,
                counter: kernel
                    .read_word(built.data.symbol("counter").expect("counter"))
                    .expect("aligned"),
            }
        })
        .collect()
}

/// One row of the recovery-home comparison (§4.1): where the rollback
/// logic lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryHomeRow {
    /// The mechanism.
    pub mechanism: Mechanism,
    /// Microseconds per critical section.
    pub us_per_op: f64,
    /// Cycles spent in kernel paths.
    pub kernel_cycles: u64,
    /// Rollbacks (kernel restarts) or redirects (user-level).
    pub recovery_events: u64,
}

/// Compares in-kernel recovery (registered sequences) against user-level
/// detection and restart on the same workload.
pub fn recovery_home_comparison(iterations: u32) -> Vec<RecoveryHomeRow> {
    [Mechanism::RasRegistered, Mechanism::UserLevelRestart]
        .into_iter()
        .map(|mechanism| {
            let spec = CounterSpec {
                iterations,
                workers: 2,
                ..Default::default()
            };
            let mut options = RunOptions::new(CpuProfile::r3000());
            options.quantum = 500;
            let report = run_guest(&counter_loop(mechanism, &spec), &options);
            RecoveryHomeRow {
                mechanism,
                us_per_op: report.micros / f64::from(iterations * 2),
                kernel_cycles: report.stats.kernel_cycles,
                recovery_events: report.stats.ras_restarts + report.stats.user_restart_redirects,
            }
        })
        .collect()
}

/// Instruction-mix profile of one mechanism on the microbenchmark:
/// retired instruction counts per interesting class, normalized per
/// critical section.
#[derive(Debug, Clone, PartialEq)]
pub struct MixRow {
    /// The mechanism.
    pub mechanism: Mechanism,
    /// Loads per operation.
    pub loads_per_op: f64,
    /// Stores per operation.
    pub stores_per_op: f64,
    /// Branches per operation.
    pub branches_per_op: f64,
    /// Landmark no-ops per operation (designated flavors only).
    pub landmarks_per_op: f64,
    /// Syscalls per operation (kernel emulation only, plus thread mgmt).
    pub syscalls_per_op: f64,
    /// Total retired instructions per operation.
    pub total_per_op: f64,
}

/// Measures the instruction mix for each mechanism — the §2 comparison
/// ("one load and one store per atomic read-modify-write" for RAS versus
/// "at least three loads and seven stores" for bundled reservation) made
/// concrete.
pub fn instruction_mix(mechanisms: &[Mechanism], iterations: u32) -> Vec<MixRow> {
    mechanisms
        .iter()
        .map(|&mechanism| {
            let spec = CounterSpec {
                iterations,
                workers: 1,
                ..Default::default()
            };
            let mut options = RunOptions::new(CpuProfile::r3000());
            options.collect_mix = true;
            let built = counter_loop(mechanism, &spec);
            let (_, kernel) = run_guest_keeping_kernel(&built, &options);
            let mix = kernel.machine().instruction_mix();
            let ops = f64::from(iterations);
            let per = |op: Opcode| mix[op.index()] as f64 / ops;
            MixRow {
                mechanism,
                loads_per_op: per(Opcode::Lw),
                stores_per_op: per(Opcode::Sw),
                branches_per_op: per(Opcode::Branch),
                landmarks_per_op: per(Opcode::Landmark),
                syscalls_per_op: per(Opcode::Syscall),
                total_per_op: kernel.machine().instructions_retired() as f64 / ops,
            }
        })
        .collect()
}

/// Renders the instruction-mix table.
pub fn render_instruction_mix(rows: &[MixRow]) -> String {
    let mut t = AsciiTable::new(
        "Ablation: retired instructions per critical section",
        &[
            "Mechanism",
            "Loads",
            "Stores",
            "Branches",
            "Landmarks",
            "Syscalls",
            "Total",
        ],
    );
    for row in rows {
        t.row(vec![
            row.mechanism.id().to_owned(),
            format!("{:.2}", row.loads_per_op),
            format!("{:.2}", row.stores_per_op),
            format!("{:.2}", row.branches_per_op),
            format!("{:.2}", row.landmarks_per_op),
            format!("{:.2}", row.syscalls_per_op),
            format!("{:.2}", row.total_per_op),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_rate_falls_as_the_quantum_grows() {
        let rows = quantum_sweep(Mechanism::RasInline, &[50, 1_000, 250_000], 8_000);
        assert!(rows[0].restarts > rows[1].restarts);
        assert!(rows[2].restarts <= 2, "optimism at realistic quanta");
        assert!(rows[0].restart_rate() > rows[2].restart_rate());
        // Overhead per op also falls with the quantum.
        assert!(rows[0].us_per_op > rows[2].us_per_op);
    }

    #[test]
    fn check_placement_is_result_equivalent() {
        for mechanism in [Mechanism::RasRegistered, Mechanism::RasInline] {
            let rows = check_time_comparison(mechanism, 4_000);
            assert_eq!(rows.len(), 2);
            assert_eq!(rows[0].counter, rows[1].counter, "{mechanism}");
            assert_eq!(rows[0].counter, 8_000);
        }
    }

    #[test]
    fn user_level_recovery_costs_more_than_in_kernel() {
        let rows = recovery_home_comparison(8_000);
        let kernel_row = &rows[0];
        let user_row = &rows[1];
        assert_eq!(kernel_row.mechanism, Mechanism::RasRegistered);
        assert_eq!(user_row.mechanism, Mechanism::UserLevelRestart);
        // Every involuntary suspension takes the user-level redirect,
        // whether or not a sequence was interrupted — so it records more
        // recovery events and burns more time overall.
        assert!(user_row.recovery_events >= kernel_row.recovery_events);
        assert!(user_row.us_per_op > kernel_row.us_per_op);
    }

    #[test]
    fn instruction_mix_matches_the_paper_characterization() {
        let rows = instruction_mix(
            &[
                Mechanism::RasInline,
                Mechanism::KernelEmulation,
                Mechanism::LamportBundled,
            ],
            4_000,
        );
        let inline = &rows[0];
        let emul = &rows[1];
        let bundled = &rows[2];
        // "A short code path with one load and one store per atomic
        // read-modify-write" — inline RAS: 1 TAS load + counter load.
        assert!(inline.landmarks_per_op >= 0.99);
        assert!(inline.loads_per_op <= 2.5);
        assert!(inline.syscalls_per_op < 0.01);
        // Kernel emulation: one trap per op.
        assert!(emul.syscalls_per_op >= 0.99);
        // Bundled reservation: "at least three loads and seven stores" to
        // enter and exit — far more memory traffic than RAS.
        assert!(
            bundled.loads_per_op >= 3.0,
            "loads {}",
            bundled.loads_per_op
        );
        assert!(
            bundled.stores_per_op >= 5.0,
            "stores {}",
            bundled.stores_per_op
        );
        assert!(bundled.total_per_op > inline.total_per_op * 2.0);
    }

    #[test]
    fn rendering_includes_all_rows() {
        let rows = instruction_mix(&[Mechanism::RasInline], 500);
        let text = render_instruction_mix(&rows);
        assert!(text.contains("ras-inline"));
        assert!(text.contains("Landmarks"));
        let sweep = quantum_sweep(Mechanism::RasInline, &[100], 500);
        let text = render_quantum_sweep(Mechanism::RasInline, &sweep);
        assert!(text.contains("100"));
    }
}
