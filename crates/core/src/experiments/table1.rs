//! Table 1: microbenchmark results for the DECstation 5000/200 (§5.1).
//!
//! "The values in the table were determined by executing the test in a
//! tight loop 1,000,000 times, computing the average elapsed time of each
//! pass through the loop, and subtracting off the loop overhead." We do
//! the same (default 100,000 iterations — the simulator is deterministic,
//! so more repetitions only cost wall-clock time), including the
//! loop-overhead calibration run.

use ras_guest::workloads::{counter_loop, CounterBody, CounterSpec};
use ras_guest::Mechanism;
use ras_machine::CpuProfile;

use crate::report::{fmt_us, AsciiTable};
use crate::{run_guest, RunOptions};

/// Scale knob for [`table1`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Scale {
    /// Loop iterations per mechanism.
    pub iterations: u32,
}

impl Default for Table1Scale {
    fn default() -> Table1Scale {
        Table1Scale {
            iterations: 100_000,
        }
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// The software mechanism measured.
    pub mechanism: Mechanism,
    /// Measured µs per enter–increment–exit, loop overhead subtracted.
    pub measured_us: f64,
    /// The paper's published value in µs.
    pub paper_us: f64,
}

/// The paper's Table 1 values (µs on the 25 MHz R3000).
pub const PAPER_TABLE1: [(Mechanism, f64); 5] = [
    (Mechanism::RasRegistered, 0.64),
    (Mechanism::RasInline, 0.51),
    (Mechanism::KernelEmulation, 4.15),
    (Mechanism::LamportPerLock, 1.51),
    (Mechanism::LamportBundled, 1.16),
];

/// Runs the Table 1 experiment on the R3000 profile. Each mechanism is
/// an independent deterministic cell, so the rows fan out across a
/// worker pool and come back in paper order.
pub fn table1(scale: Table1Scale) -> Vec<Table1Row> {
    let options = RunOptions::new(CpuProfile::r3000());
    ras_par::parallel_map(&PAPER_TABLE1, |&(mechanism, paper_us)| {
        let measured_us = measure_per_op(
            mechanism,
            scale.iterations,
            CounterBody::LockAndCounter,
            &options,
        );
        Table1Row {
            mechanism,
            measured_us,
            paper_us,
        }
    })
}

/// Measures µs per operation for one mechanism and body, subtracting the
/// empty-loop calibration run. Shared with Table 4.
pub(crate) fn measure_per_op(
    mechanism: Mechanism,
    iterations: u32,
    body: CounterBody,
    options: &RunOptions,
) -> f64 {
    let spec = CounterSpec {
        iterations,
        workers: 1,
        body,
    };
    let cal_spec = CounterSpec {
        body: CounterBody::Empty,
        ..spec
    };
    let full = run_guest(&counter_loop(mechanism, &spec), options);
    let cal = run_guest(&counter_loop(mechanism, &cal_spec), options);
    (full.micros - cal.micros) / f64::from(iterations)
}

/// Renders the rows in the paper's layout.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut t = AsciiTable::new(
        "Table 1: Microbenchmark results for the DECstation 5000/200 (µs per op)",
        &["Software Mechanism", "Measured", "Paper"],
    );
    for row in rows {
        t.row(vec![
            row.mechanism.label().to_owned(),
            fmt_us(row.measured_us),
            fmt_us(row.paper_us),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<Table1Row> {
        table1(Table1Scale { iterations: 4_000 })
    }

    #[test]
    fn table1_reproduces_the_paper_ordering() {
        let rows = quick();
        assert_eq!(rows.len(), 5);
        let us = |m: Mechanism| {
            rows.iter()
                .find(|r| r.mechanism == m)
                .expect("row present")
                .measured_us
        };
        // The paper's ordering: inline < branch < bundled < per-lock < emulation.
        assert!(us(Mechanism::RasInline) < us(Mechanism::RasRegistered));
        assert!(us(Mechanism::RasRegistered) < us(Mechanism::LamportBundled));
        assert!(us(Mechanism::LamportBundled) < us(Mechanism::LamportPerLock));
        assert!(us(Mechanism::LamportPerLock) < us(Mechanism::KernelEmulation));
    }

    #[test]
    fn kernel_emulation_dominates_by_the_paper_factor() {
        let rows = quick();
        let emul = rows
            .iter()
            .find(|r| r.mechanism == Mechanism::KernelEmulation)
            .unwrap()
            .measured_us;
        let inline = rows
            .iter()
            .find(|r| r.mechanism == Mechanism::RasInline)
            .unwrap()
            .measured_us;
        // Paper: 4.15 / 0.51 ≈ 8.1×. Accept a broad band around it.
        let factor = emul / inline;
        assert!(
            (4.0..16.0).contains(&factor),
            "emulation/inline factor {factor:.1} out of band"
        );
    }

    #[test]
    fn measured_magnitudes_are_near_the_paper() {
        for row in quick() {
            let ratio = row.measured_us / row.paper_us;
            assert!(
                (0.4..2.5).contains(&ratio),
                "{}: measured {:.2} vs paper {:.2}",
                row.mechanism,
                row.measured_us,
                row.paper_us
            );
        }
    }

    #[test]
    fn rendering_contains_every_mechanism() {
        let rows = quick();
        let text = render_table1(&rows);
        for row in &rows {
            assert!(text.contains(row.mechanism.label()));
        }
    }

    #[test]
    fn fan_out_matches_a_serial_recomputation_byte_for_byte() {
        // The production path may run the cells on a worker pool; an
        // explicitly serial recomputation of the same cells must produce
        // bit-equal rows and byte-equal rendered output.
        let scale = Table1Scale { iterations: 2_000 };
        let rows = table1(scale);
        let options = RunOptions::new(CpuProfile::r3000());
        let serial: Vec<Table1Row> = PAPER_TABLE1
            .iter()
            .map(|&(mechanism, paper_us)| Table1Row {
                mechanism,
                measured_us: measure_per_op(
                    mechanism,
                    scale.iterations,
                    CounterBody::LockAndCounter,
                    &options,
                ),
                paper_us,
            })
            .collect();
        assert_eq!(rows, serial);
        assert_eq!(render_table1(&rows), render_table1(&serial));
    }
}
