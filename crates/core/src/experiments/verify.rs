//! A structured self-check of the reproduction: every qualitative claim
//! the paper makes about its tables, evaluated against fresh simulator
//! runs. Used by the `tables --verify` binary and by the test suite; a
//! downstream user can call [`verify_reproduction`] after changing cost
//! models or workloads to see exactly which claims still hold.

use std::fmt;

use ras_guest::Mechanism;

use super::{table1, table2, table3, table4, Table1Scale, Table2Scale, Table3Scale, Table4Scale};
use super::{Table2Bench, Table3App};

/// One verified claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Which table the claim belongs to.
    pub table: u8,
    /// The claim, in the paper's terms.
    pub statement: String,
    /// Whether this run satisfied it.
    pub holds: bool,
    /// The measured evidence.
    pub evidence: String,
}

/// The result of a full verification pass.
#[derive(Debug, Clone, PartialEq)]
pub struct Verification {
    /// All claims checked, in table order.
    pub claims: Vec<Claim>,
}

impl Verification {
    /// Whether every claim held.
    pub fn all_hold(&self) -> bool {
        self.claims.iter().all(|c| c.holds)
    }

    /// The claims that failed.
    pub fn failures(&self) -> Vec<&Claim> {
        self.claims.iter().filter(|c| !c.holds).collect()
    }
}

impl fmt::Display for Verification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "reproduction self-check: {}/{} claims hold",
            self.claims.iter().filter(|c| c.holds).count(),
            self.claims.len()
        )?;
        for c in &self.claims {
            writeln!(
                f,
                "  [{}] T{}: {} — {}",
                if c.holds { "ok" } else { "FAIL" },
                c.table,
                c.statement,
                c.evidence
            )?;
        }
        Ok(())
    }
}

/// Scales for a verification pass. The defaults finish in a few seconds.
#[derive(Debug, Clone, Copy)]
pub struct VerifyScale {
    /// Table 1 iterations.
    pub t1: Table1Scale,
    /// Table 2 scale.
    pub t2: Table2Scale,
    /// Table 3 scale.
    pub t3: Table3Scale,
    /// Table 4 iterations.
    pub t4: Table4Scale,
}

impl Default for VerifyScale {
    fn default() -> VerifyScale {
        VerifyScale {
            t1: Table1Scale { iterations: 6_000 },
            t2: Table2Scale {
                lock_iterations: 3_000,
                forks: 120,
                pingpong_cycles: 250,
            },
            t3: Table3Scale {
                text: ras_guest::workloads::TextFormatSpec {
                    requests: 25,
                    client_work: 16_000,
                    server_work: 1_000,
                },
                afs: ras_guest::workloads::AfsSpec {
                    requests: 120,
                    client_work: 8_000,
                    server_work: 4_000,
                },
                parthenon_clauses: 400,
                parthenon_work: 650,
                proton_items: 1_500,
            },
            t4: Table4Scale { iterations: 4_000 },
        }
    }
}

fn claim(table: u8, statement: &str, holds: bool, evidence: String) -> Claim {
    Claim {
        table,
        statement: statement.to_owned(),
        holds,
        evidence,
    }
}

/// Runs all four experiments at the given scale and evaluates the paper's
/// qualitative claims against them.
pub fn verify_reproduction(scale: &VerifyScale) -> Verification {
    let mut claims = Vec::new();

    // ---- Static verification (table 0: the §3 invariants) -----------------
    // These cost no simulation time: they check the code generators and the
    // kernel's recognizer tables against the restartability rules directly.
    let set = ras_kernel::DesignatedSet::standard();
    claims.push(claim(
        0,
        "the standard designated-sequence templates are mutually unambiguous",
        ras_analyze::check_template_ambiguity(&set).is_empty(),
        format!(
            "{} templates, no overlapping co-match",
            set.templates().len()
        ),
    ));
    let spec = ras_guest::workloads::CounterSpec {
        iterations: 10,
        workers: 2,
        body: ras_guest::workloads::CounterBody::LockAndCounter,
    };
    let mut dirty = Vec::new();
    for m in Mechanism::all() {
        let built = ras_guest::workloads::counter_loop(m, &spec);
        if ras_analyze::analyze(&built.program, &set).has_errors() {
            dirty.push(format!("{m}"));
        }
    }
    claims.push(claim(
        0,
        "every generated atomicity sequence passes the static restartability verifier",
        dirty.is_empty(),
        if dirty.is_empty() {
            format!("all {} mechanisms verify clean", Mechanism::all().len())
        } else {
            format!("errors in: {}", dirty.join(", "))
        },
    ));

    // ---- Dataflow analysis (table 0: lockset verdicts, DESIGN.md §13) -----
    // The lockset abstract interpretation must find nothing to prove racy
    // in any bundled workload, and sequence inference must reproduce every
    // hand-declared restartable range exactly — the tool can name the
    // declarations the guest authors wrote by hand.
    {
        let sweep = ras_analyze::bundled_workloads();
        let mut racy = Vec::new();
        let mut misinferred = Vec::new();
        for t in &sweep {
            if ras_analyze::analyze(&t.program, &set).has_errors() {
                racy.push(t.name.clone());
            }
            let inferred: Vec<_> = ras_analyze::infer_sequences(&t.program)
                .iter()
                .filter(|i| i.already_declared)
                .map(|i| i.range)
                .collect();
            let mut declared = t.program.seq_ranges().to_vec();
            declared.sort_by_key(|r| r.start);
            if inferred != declared {
                misinferred.push(t.name.clone());
            }
        }
        claims.push(claim(
            0,
            "no bundled workload has a statically provable race under any mechanism",
            racy.is_empty(),
            if racy.is_empty() {
                format!("{} targets sweep clean", sweep.len())
            } else {
                format!("racy: {}", racy.join(", "))
            },
        ));
        claims.push(claim(
            0,
            "sequence inference reproduces every hand-declared restartable range",
            misinferred.is_empty(),
            if misinferred.is_empty() {
                format!("declared ranges recovered across {} targets", sweep.len())
            } else {
                format!("mismatch in: {}", misinferred.join(", "))
            },
        ));
    }
    {
        // Cross-validate the static verdict against the model checker on the
        // ablated target: the words the lockset proves racy must be exactly
        // the words the exhaustive search races (no false positives, none
        // missed). Bound 3 saturates the ablated race set without hitting
        // the schedule cap.
        let config = ras_model::CheckConfig {
            preemption_bound: 3,
            ..Default::default()
        };
        let target = *ras_model::ModelTarget::all()
            .iter()
            .find(|t| t.ablated)
            .expect("the matrix includes an ablated target");
        let report = ras_model::race_report(target, &config);
        let spec = ras_guest::workloads::ModelSpec {
            iterations: config.iterations,
            workers: config.workers,
        };
        let mut built = ras_guest::workloads::model_counter(target.mechanism, target.flavor, &spec);
        built.strategy = ras_kernel::StrategyKind::None;
        let cfg = ras_analyze::Cfg::build(&built.program);
        let ls_config = ras_analyze::LocksetConfig::for_guest(&built);
        let ls = ras_analyze::lockset(&built.program, &cfg, &ls_config);
        let statics = ls.racy_words();
        let dynamic = report.raced_words();
        claims.push(claim(
            0,
            "the lockset analysis and the model checker name exactly the same \
             racy words on the ablated sequence",
            !dynamic.is_empty() && statics == dynamic && !report.hit_schedule_cap,
            format!(
                "static {statics:x?} vs dynamic {dynamic:x?} over {} schedules",
                report.schedules
            ),
        ));
    }

    // ---- Model checking (table 0: the safety claims, exhaustively) --------
    // The timer experiments above *sample* interleavings; the model checker
    // enumerates them. Every (mechanism × flavor) target must hold its
    // safety properties over all bounded preemption schedules, and the
    // ablated sequence (kernel rollback stripped) must demonstrably fail.
    let mc = ras_model::model_check(&ras_model::CheckConfig::default());
    let safe_ok = mc
        .targets
        .iter()
        .filter(|t| !t.target.expects_violations())
        .all(ras_model::TargetReport::ok);
    claims.push(claim(
        0,
        "every mechanism preserves mutual exclusion and loses no update under \
         every bounded preemption schedule",
        safe_ok,
        format!(
            "{} targets, {} schedules explored, {} branches pruned by POR",
            mc.targets.len(),
            mc.total_schedules(),
            mc.total_pruned()
        ),
    ));
    let ablated = mc.targets.iter().find(|t| t.target.expects_violations());
    claims.push(claim(
        0,
        "without kernel rollback the same inline sequence demonstrably loses updates",
        ablated.is_some_and(ras_model::TargetReport::ok),
        ablated.map_or("ablated target missing".to_owned(), |t| {
            t.violations
                .iter()
                .map(|v| {
                    format!(
                        "{} after {} schedules ({} preemptions suffice)",
                        v.diag.kind.code(),
                        v.found_after,
                        v.schedule.len()
                    )
                })
                .collect::<Vec<_>>()
                .join(", ")
        }),
    ));

    // ---- Observability (§5.2: suspensions inside sequences are rare) ------
    // The paper's case for optimism rests on atomic sequences being a tiny
    // fraction of real execution. Measure it directly: a Mach-style
    // registered sequence surrounded by realistic non-critical work must
    // roll back less than once per hundred quantum expiries.
    {
        let spec = ras_guest::workloads::CounterSpec {
            iterations: 6_000,
            workers: 2,
            body: ras_guest::workloads::CounterBody::LockCounterAndWork { spin: 400 },
        };
        let built = ras_guest::workloads::counter_loop(Mechanism::RasRegistered, &spec);
        let options = crate::RunOptions {
            quantum: 25_000,
            observe: crate::Observe::Metrics,
            ..Default::default()
        };
        let report = crate::run_guest(&built, &options);
        let metrics = report.metrics.expect("metrics mode records metrics");
        let rate = metrics.rollbacks_per_100_quanta();
        claims.push(claim(
            0,
            "a registered sequence amid realistic work rolls back less than \
             once per 100 quanta",
            metrics.quantum_expiries > 0 && rate < 1.0,
            format!(
                "{} rollbacks over {} quantum expiries = {:.3} per 100",
                metrics.rollbacks, metrics.quantum_expiries, rate
            ),
        ));
    }

    // ---- Table 1 ----------------------------------------------------------
    let t1 = table1(scale.t1);
    let us = |m: Mechanism| t1.iter().find(|r| r.mechanism == m).unwrap().measured_us;
    claims.push(claim(
        1,
        "inline RAS is the cheapest software mechanism",
        t1.iter().all(|r| us(Mechanism::RasInline) <= r.measured_us),
        format!("inline = {:.2} µs", us(Mechanism::RasInline)),
    ));
    claims.push(claim(
        1,
        "kernel emulation is by far the most expensive approach",
        t1.iter()
            .all(|r| us(Mechanism::KernelEmulation) >= r.measured_us)
            && us(Mechanism::KernelEmulation) > 3.0 * us(Mechanism::RasRegistered),
        format!("emulation = {:.2} µs", us(Mechanism::KernelEmulation)),
    ));
    claims.push(claim(
        1,
        "protocol (b) executes more quickly than protocol (a)",
        us(Mechanism::LamportBundled) < us(Mechanism::LamportPerLock),
        format!(
            "(a) = {:.2} µs, (b) = {:.2} µs",
            us(Mechanism::LamportPerLock),
            us(Mechanism::LamportBundled)
        ),
    ));
    claims.push(claim(
        1,
        "both reservation schemes are faster than kernel emulation",
        us(Mechanism::LamportPerLock) < us(Mechanism::KernelEmulation)
            && us(Mechanism::LamportBundled) < us(Mechanism::KernelEmulation),
        format!("emulation = {:.2} µs", us(Mechanism::KernelEmulation)),
    ));

    // ---- Table 2 ----------------------------------------------------------
    let t2 = table2(&scale.t2);
    claims.push(claim(
        2,
        "thread management performance depends on the synchronization mechanism",
        t2.iter().all(|r| r.ras_us < r.emulation_us),
        t2.iter()
            .map(|r| format!("{} {:.1}x", r.bench.label(), r.speedup()))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    let spin = t2
        .iter()
        .find(|r| r.bench == Table2Bench::Spinlock)
        .unwrap();
    claims.push(claim(
        2,
        "with RAS, synchronization overhead becomes negligible on spinlocks",
        spin.speedup() > 3.0,
        format!("spinlock speedup {:.1}x", spin.speedup()),
    ));

    // ---- Table 3 ----------------------------------------------------------
    let t3 = table3(&scale.t3);
    let app = |a: Table3App| t3.iter().find(|r| r.app == a).unwrap();
    claims.push(claim(
        3,
        "threaded applications improve by tens of percent",
        app(Table3App::Parthenon10).speedup() > 1.15 && app(Table3App::Proton64).speedup() > 1.3,
        format!(
            "parthenon-10 {:.2}x, proton-64 {:.2}x",
            app(Table3App::Parthenon10).speedup(),
            app(Table3App::Proton64).speedup()
        ),
    ));
    claims.push(claim(
        3,
        "single-threaded applications benefit indirectly by a few percent",
        app(Table3App::TextFormat).speedup() > 1.0 && app(Table3App::TextFormat).speedup() < 1.25,
        format!("text-format {:.2}x", app(Table3App::TextFormat).speedup()),
    ));
    claims.push(claim(
        3,
        "the likelihood of suspension inside a sequence is extremely small",
        t3.iter()
            .all(|r| r.restarts * 50 <= r.emulation_traps.max(1)),
        t3.iter()
            .map(|r| format!("{} {}r/{}t", r.app.label(), r.restarts, r.emulation_traps))
            .collect::<Vec<_>>()
            .join(", "),
    ));
    claims.push(claim(
        3,
        "thread suspensions occur far less often than atomic operations",
        t3.iter()
            .all(|r| r.suspensions.0 < r.emulation_traps.max(1)),
        t3.iter()
            .map(|r| format!("{} {}s", r.app.label(), r.suspensions.0))
            .collect::<Vec<_>>()
            .join(", "),
    ));

    // ---- Table 4 ----------------------------------------------------------
    let t4 = table4(scale.t4);
    let row = |name: &str| t4.iter().find(|r| r.processor == name).unwrap();
    let expected_wins = ["DEC CVAX", "Intel 486", "Motorola 88000", "HP 9000/700"];
    let expected_losses = ["Motorola 68030", "Intel 386", "Intel 860", "Sun SPARC"];
    claims.push(claim(
        4,
        "explicit registration beats hardware exactly on CVAX/486/88000/HP-PA",
        expected_wins
            .iter()
            .all(|n| row(n).registered_us < row(n).interlocked_us)
            && expected_losses
                .iter()
                .all(|n| row(n).registered_us >= row(n).interlocked_us),
        "win/loss split as in the paper".to_owned(),
    ));
    claims.push(claim(
        4,
        "designated sequences outperform the hardware in all cases (68030 near-tie)",
        t4.iter().all(|r| {
            r.designated_us < r.interlocked_us
                || (r.processor == "Motorola 68030" && r.designated_us < r.interlocked_us * 1.3)
        }),
        t4.iter()
            .map(|r| {
                format!(
                    "{} {:.2}/{:.2}",
                    r.processor, r.designated_us, r.interlocked_us
                )
            })
            .collect::<Vec<_>>()
            .join(", "),
    ));
    claims.push(claim(
        4,
        "linkage overhead is positive everywhere (explicit = designated + linkage)",
        t4.iter().all(|r| r.linkage_us > 0.0),
        "identity holds by construction".to_owned(),
    ));

    Verification { claims }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_reproduction_verifies_itself() {
        let v = verify_reproduction(&VerifyScale::default());
        assert!(
            v.all_hold(),
            "failed claims:\n{}",
            v.failures()
                .iter()
                .map(|c| format!("  T{}: {} ({})", c.table, c.statement, c.evidence))
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert!(v.claims.len() >= 12);
        let text = v.to_string();
        assert!(text.contains("claims hold"));
    }
}
