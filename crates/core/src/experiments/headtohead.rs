//! Head-to-head recovery-cost table: the paper's restartable atomic
//! sequence against the rseq-style abort protocol and the pessimistic
//! kernel-emulation baseline, on one workload.
//!
//! The three strategies price the same hazard differently. RAS rolls an
//! interrupted sequence back to its start and re-executes it; rseq
//! redirects an interrupted window to its abort handler, which
//! republishes and retries; kernel emulation never gets interrupted at
//! all because every Test-And-Set traps into the kernel up front. The
//! table runs the identical contended counter under all three and puts
//! the recovery events (rollbacks, aborts, emulation traps), their rate
//! per hundred quanta, and the cycles they discard side by side — the
//! optimistic strategies pay a rare recovery, the pessimistic one pays
//! on every acquire.

use ras_guest::workloads::{counter_loop, CounterBody, CounterSpec};
use ras_guest::Mechanism;
use ras_machine::CpuProfile;
use ras_obs::Metrics;

use crate::report::AsciiTable;
use crate::{run_guest, Observe, RunOptions};

/// Scale knob for [`head_to_head`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeadToHeadScale {
    /// Counter iterations per worker.
    pub iterations: u32,
    /// Worker threads sharing the counter.
    pub workers: usize,
    /// Non-critical spin work per iteration, in loop turns.
    pub spin: u32,
    /// Scheduler quantum in cycles.
    pub quantum: u64,
}

impl Default for HeadToHeadScale {
    fn default() -> HeadToHeadScale {
        HeadToHeadScale {
            iterations: 6_000,
            workers: 2,
            spin: 400,
            quantum: 25_000,
        }
    }
}

/// The three strategies compared, optimistic first.
pub const HEAD_TO_HEAD_MECHANISMS: [Mechanism; 3] = [
    Mechanism::RasInline,
    Mechanism::Rseq,
    Mechanism::KernelEmulation,
];

/// One row of the head-to-head table.
#[derive(Debug, Clone)]
pub struct HeadToHeadRow {
    /// The mechanism measured.
    pub mechanism: Mechanism,
    /// Total machine cycles for the run.
    pub cycles: u64,
    /// Kernel-emulated Test-And-Set traps (the pessimistic strategy's
    /// per-acquire cost; zero for the optimistic strategies).
    pub emulation_traps: u64,
    /// The full metrics aggregate for the run.
    pub metrics: Metrics,
}

impl HeadToHeadRow {
    /// Recovery events: RAS rollbacks plus rseq abort dispatches.
    pub fn recovery_events(&self) -> u64 {
        self.metrics.rollbacks + self.metrics.rseq_aborts
    }

    /// Recovery events per hundred quantum expiries.
    pub fn recovery_per_100_quanta(&self) -> f64 {
        if self.metrics.quantum_expiries == 0 {
            0.0
        } else {
            self.recovery_events() as f64 * 100.0 / self.metrics.quantum_expiries as f64
        }
    }

    /// Straight-line cycles discarded by recovery: rolled-back work plus
    /// aborted window work.
    pub fn discarded_cycles(&self) -> u64 {
        self.metrics.wasted_cycles + self.metrics.rseq_wasted_cycles
    }
}

/// Runs the contended counter under each strategy and returns one row
/// per mechanism, in [`HEAD_TO_HEAD_MECHANISMS`] order.
pub fn head_to_head(scale: &HeadToHeadScale) -> Vec<HeadToHeadRow> {
    let spec = CounterSpec {
        iterations: scale.iterations,
        workers: scale.workers,
        body: CounterBody::LockCounterAndWork { spin: scale.spin },
    };
    let options = RunOptions {
        quantum: scale.quantum,
        observe: Observe::Metrics,
        ..RunOptions::new(CpuProfile::r3000())
    };
    ras_par::parallel_map(&HEAD_TO_HEAD_MECHANISMS, |&mechanism| {
        let report = run_guest(&counter_loop(mechanism, &spec), &options);
        HeadToHeadRow {
            mechanism,
            cycles: report.cycles,
            emulation_traps: report.stats.emulation_traps,
            metrics: report.metrics.expect("metrics mode records metrics"),
        }
    })
}

/// Renders the rows as a paper-style ASCII table.
pub fn render_head_to_head(rows: &[HeadToHeadRow]) -> String {
    let mut t = AsciiTable::new(
        "Recovery head-to-head: RAS restart vs rseq abort vs kernel emulation",
        &[
            "Strategy",
            "Cycles",
            "Quanta",
            "Rollbacks",
            "Aborts",
            "Emul traps",
            "Recov/100 quanta",
            "Discarded cyc",
        ],
    );
    for row in rows {
        let m = &row.metrics;
        t.row(vec![
            row.mechanism.label().to_owned(),
            row.cycles.to_string(),
            m.quantum_expiries.to_string(),
            m.rollbacks.to_string(),
            m.rseq_aborts.to_string(),
            row.emulation_traps.to_string(),
            format!("{:.3}", row.recovery_per_100_quanta()),
            row.discarded_cycles().to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Quantum 503 is deliberately hostile: preemptions sweep through the
    // critical windows, so the run deterministically produces both RAS
    // rollbacks and rseq aborts.
    fn quick() -> Vec<HeadToHeadRow> {
        head_to_head(&HeadToHeadScale {
            iterations: 1_500,
            workers: 2,
            spin: 100,
            quantum: 503,
        })
    }

    #[test]
    fn each_strategy_pays_only_its_own_recovery_cost() {
        let rows = quick();
        assert_eq!(rows.len(), HEAD_TO_HEAD_MECHANISMS.len());
        for row in &rows {
            assert!(
                row.metrics.quantum_expiries > 0,
                "{}: no quantum ever expired",
                row.mechanism
            );
            match row.mechanism {
                Mechanism::RasInline => {
                    assert!(
                        row.metrics.rollbacks > 0,
                        "the hostile quantum forces rollbacks"
                    );
                    assert_eq!(row.metrics.rseq_aborts, 0);
                    assert_eq!(row.emulation_traps, 0);
                }
                Mechanism::Rseq => {
                    assert!(
                        row.metrics.rseq_aborts > 0,
                        "the hostile quantum forces aborts"
                    );
                    assert_eq!(row.metrics.rollbacks, 0);
                    assert_eq!(row.emulation_traps, 0);
                }
                Mechanism::KernelEmulation => {
                    assert_eq!(row.metrics.rollbacks, 0);
                    assert_eq!(row.metrics.rseq_aborts, 0);
                    assert!(
                        row.emulation_traps > 0,
                        "every acquire must trap under emulation"
                    );
                }
                other => panic!("unexpected mechanism {other}"),
            }
        }
    }

    #[test]
    fn optimistic_strategies_beat_the_trap_on_total_cycles() {
        // The paper's core claim, §5: at realistic quanta the optimistic
        // strategies' rare recovery is cheaper than trapping per acquire.
        let rows = head_to_head(&HeadToHeadScale {
            iterations: 1_500,
            workers: 2,
            spin: 100,
            quantum: 25_000,
        });
        let cycles = |m: Mechanism| {
            rows.iter()
                .find(|r| r.mechanism == m)
                .expect("row present")
                .cycles
        };
        assert!(cycles(Mechanism::RasInline) < cycles(Mechanism::KernelEmulation));
        assert!(cycles(Mechanism::Rseq) < cycles(Mechanism::KernelEmulation));
    }

    #[test]
    fn rendering_contains_every_strategy() {
        let rows = quick();
        let text = render_head_to_head(&rows);
        for row in &rows {
            assert!(text.contains(row.mechanism.label()));
        }
    }
}
