//! Table 3: the effect of synchronization overhead on application
//! performance (§5.3) — elapsed time, emulation traps, restarts, and
//! thread suspensions for each application under kernel emulation and
//! under restartable atomic sequences.

use ras_guest::workloads::{
    afs_bench, parthenon, proton64, text_format, AfsSpec, ParthenonSpec, Proton64Spec,
    TextFormatSpec,
};
use ras_guest::{BuiltGuest, Mechanism};
use ras_machine::CpuProfile;

use crate::report::{fmt_ratio, AsciiTable};
use crate::{run_guest, RunOptions, RunReport};

/// The Table 3 applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table3App {
    /// LaTeX-like single-threaded formatter over a multithreaded server.
    TextFormat,
    /// File-system-intensive script over a multithreaded server.
    AfsBench,
    /// Or-parallel theorem prover with 1 worker.
    Parthenon1,
    /// Or-parallel theorem prover with 10 workers.
    Parthenon10,
    /// Producer/consumer with a 64-byte buffer.
    Proton64,
}

impl Table3App {
    /// The paper's row name.
    pub fn label(self) -> &'static str {
        match self {
            Table3App::TextFormat => "text-format",
            Table3App::AfsBench => "afs-bench",
            Table3App::Parthenon1 => "parthenon-1",
            Table3App::Parthenon10 => "parthenon-10",
            Table3App::Proton64 => "proton-64",
        }
    }

    /// All applications in the paper's row order.
    pub fn all() -> [Table3App; 5] {
        [
            Table3App::TextFormat,
            Table3App::AfsBench,
            Table3App::Parthenon1,
            Table3App::Parthenon10,
            Table3App::Proton64,
        ]
    }
}

/// Scale knobs for [`table3`]. The defaults are sized so each application
/// runs tens of millions of simulated cycles (about a second of simulated
/// time), preserving the paper's relative elapsed-time shape at a fraction
/// of its wall-clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table3Scale {
    /// text-format parameters.
    pub text: TextFormatSpec,
    /// afs-bench parameters.
    pub afs: AfsSpec,
    /// parthenon clauses (workers fixed at 1 and 10 by the rows).
    pub parthenon_clauses: u32,
    /// parthenon busy-work per clause.
    pub parthenon_work: i32,
    /// proton-64 items.
    pub proton_items: u32,
}

impl Default for Table3Scale {
    fn default() -> Table3Scale {
        Table3Scale {
            text: TextFormatSpec::default(),
            afs: AfsSpec::default(),
            parthenon_clauses: 3_000,
            parthenon_work: 650,
            proton_items: 10_000,
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table3Row {
    /// The application.
    pub app: Table3App,
    /// Simulated elapsed seconds under kernel emulation.
    pub elapsed_emul_s: f64,
    /// Simulated elapsed seconds under restartable atomic sequences.
    pub elapsed_ras_s: f64,
    /// Emulation traps in the emulation run ("Emulation Traps").
    pub emulation_traps: u64,
    /// Sequence restarts in the R.A.S. run ("Restarts").
    pub restarts: u64,
    /// Thread suspensions (emulation run, R.A.S. run).
    pub suspensions: (u64, u64),
    /// The paper's elapsed seconds (emulation, R.A.S.).
    pub paper_elapsed_s: (f64, f64),
}

impl Table3Row {
    /// Elapsed-time improvement of R.A.S. over emulation.
    pub fn speedup(&self) -> f64 {
        self.elapsed_emul_s / self.elapsed_ras_s
    }

    /// The paper's improvement for this row.
    pub fn paper_speedup(&self) -> f64 {
        self.paper_elapsed_s.0 / self.paper_elapsed_s.1
    }
}

/// The paper's Table 3 elapsed times in seconds (emulation, R.A.S.).
pub const PAPER_TABLE3: [(Table3App, f64, f64); 5] = [
    (Table3App::TextFormat, 10.1, 9.8),
    (Table3App::AfsBench, 239.4, 231.1),
    (Table3App::Parthenon1, 25.8, 18.5),
    (Table3App::Parthenon10, 26.1, 18.6),
    (Table3App::Proton64, 30.4, 15.7),
];

fn build(app: Table3App, mechanism: Mechanism, scale: &Table3Scale) -> BuiltGuest {
    match app {
        Table3App::TextFormat => text_format(mechanism, &scale.text),
        Table3App::AfsBench => afs_bench(mechanism, &scale.afs),
        Table3App::Parthenon1 => parthenon(
            mechanism,
            &ParthenonSpec {
                workers: 1,
                clauses: scale.parthenon_clauses,
                work_iters: scale.parthenon_work,
            },
        ),
        Table3App::Parthenon10 => parthenon(
            mechanism,
            &ParthenonSpec {
                workers: 10,
                clauses: scale.parthenon_clauses,
                work_iters: scale.parthenon_work,
            },
        ),
        Table3App::Proton64 => proton64(
            mechanism,
            &Proton64Spec {
                items: scale.proton_items,
            },
        ),
    }
}

fn run_app(app: Table3App, mechanism: Mechanism, scale: &Table3Scale) -> RunReport {
    let options = RunOptions::new(CpuProfile::r3000());
    run_guest(&build(app, mechanism, scale), &options)
}

/// Runs the Table 3 experiment: each application under kernel emulation
/// and under registered restartable atomic sequences. The five
/// applications are independent cells, so they fan out across a worker
/// pool and come back in the paper's row order.
pub fn table3(scale: &Table3Scale) -> Vec<Table3Row> {
    ras_par::parallel_map(&PAPER_TABLE3, |&(app, paper_emul, paper_ras)| {
        let emul = run_app(app, Mechanism::KernelEmulation, scale);
        let ras = run_app(app, Mechanism::RasRegistered, scale);
        Table3Row {
            app,
            elapsed_emul_s: emul.seconds(),
            elapsed_ras_s: ras.seconds(),
            emulation_traps: emul.stats.emulation_traps,
            restarts: ras.stats.ras_restarts,
            suspensions: (emul.stats.suspensions, ras.stats.suspensions),
            paper_elapsed_s: (paper_emul, paper_ras),
        }
    })
}

/// Renders the rows in the paper's layout.
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut t = AsciiTable::new(
        "Table 3: Effect of synchronization overhead on application performance",
        &[
            "Program",
            "Emul (s)",
            "R.A.S. (s)",
            "Speedup",
            "Paper speedup",
            "Emul. traps",
            "Restarts",
            "Susp. (E/R)",
        ],
    );
    for row in rows {
        t.row(vec![
            row.app.label().to_owned(),
            format!("{:.4}", row.elapsed_emul_s),
            format!("{:.4}", row.elapsed_ras_s),
            fmt_ratio(row.speedup()),
            fmt_ratio(row.paper_speedup()),
            row.emulation_traps.to_string(),
            row.restarts.to_string(),
            format!("{}/{}", row.suspensions.0, row.suspensions.1),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_scale() -> Table3Scale {
        Table3Scale {
            text: TextFormatSpec {
                requests: 25,
                client_work: 16_000,
                server_work: 1_000,
            },
            afs: AfsSpec {
                requests: 150,
                client_work: 8_000,
                server_work: 4_000,
            },
            parthenon_clauses: 400,
            parthenon_work: 650,
            proton_items: 1_500,
        }
    }

    #[test]
    fn ras_improves_every_application() {
        for row in table3(&quick_scale()) {
            assert!(
                row.speedup() > 1.0,
                "{}: speedup {:.3}",
                row.app.label(),
                row.speedup()
            );
        }
    }

    #[test]
    fn improvement_shape_matches_the_paper() {
        let rows = table3(&quick_scale());
        let get = |a: Table3App| rows.iter().find(|r| r.app == a).unwrap().speedup();
        // Single-threaded clients gain a little; explicitly threaded
        // programs gain 30–50%; proton-64 gains the most (paper: ~1.94x).
        assert!(
            get(Table3App::TextFormat) < 1.25,
            "text-format should gain least"
        );
        assert!(get(Table3App::AfsBench) < 1.4);
        assert!(get(Table3App::Parthenon10) > get(Table3App::TextFormat));
        assert!(get(Table3App::Proton64) > get(Table3App::Parthenon10));
        assert!(get(Table3App::Proton64) > 1.3);
    }

    #[test]
    fn restarts_are_rare_relative_to_traps() {
        // "The restart count demonstrates that the likelihood of a thread
        // being suspended during a restartable atomic sequence is
        // extremely small."
        for row in table3(&quick_scale()) {
            assert!(
                row.restarts * 100 <= row.emulation_traps.max(1),
                "{}: {} restarts vs {} traps",
                row.app.label(),
                row.restarts,
                row.emulation_traps
            );
        }
    }

    #[test]
    fn suspensions_are_far_fewer_than_atomic_operations() {
        // The justification for doing the check at suspension time (§5.3).
        for row in table3(&quick_scale()) {
            assert!(
                row.suspensions.0 < row.emulation_traps.max(1),
                "{}: suspensions {:?} vs traps {}",
                row.app.label(),
                row.suspensions,
                row.emulation_traps
            );
        }
    }

    #[test]
    fn rendering_lists_all_apps() {
        let text = render_table3(&table3(&quick_scale()));
        for app in Table3App::all() {
            assert!(text.contains(app.label()));
        }
    }
}
