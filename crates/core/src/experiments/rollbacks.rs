//! Rollback-rate table: the observability layer's per-mechanism view of
//! §5.2's optimism argument.
//!
//! The paper justifies restartable sequences by noting that suspensions
//! rarely land inside an atomic sequence, so rollback work is negligible.
//! This table measures that directly for every software mechanism on the
//! same realistic workload (a locked counter surrounded by non-critical
//! spin work): quantum expiries, how many landed inside a sequence, the
//! resulting rollbacks, and the cycles re-executed because of them.

use ras_guest::workloads::{counter_loop, CounterBody, CounterSpec};
use ras_guest::Mechanism;
use ras_machine::CpuProfile;
use ras_obs::Metrics;

use crate::report::AsciiTable;
use crate::{run_guest, Observe, RunOptions};

/// Scale knob for [`rollback_table`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RollbackScale {
    /// Counter iterations per worker.
    pub iterations: u32,
    /// Worker threads sharing the counter.
    pub workers: usize,
    /// Non-critical spin work per iteration, in loop turns.
    pub spin: u32,
    /// Scheduler quantum in cycles.
    pub quantum: u64,
}

impl Default for RollbackScale {
    fn default() -> RollbackScale {
        RollbackScale {
            iterations: 6_000,
            workers: 2,
            spin: 400,
            quantum: 25_000,
        }
    }
}

/// One row of the rollback table.
#[derive(Debug, Clone)]
pub struct RollbackRow {
    /// The software mechanism measured.
    pub mechanism: Mechanism,
    /// The full metrics aggregate for the run.
    pub metrics: Metrics,
}

/// The mechanisms the table covers: every software mechanism from
/// Table 1, in the paper's order.
pub const ROLLBACK_MECHANISMS: [Mechanism; 5] = [
    Mechanism::RasRegistered,
    Mechanism::RasInline,
    Mechanism::KernelEmulation,
    Mechanism::LamportPerLock,
    Mechanism::LamportBundled,
];

/// Runs the contended counter workload under every software mechanism
/// with metrics-only recording and returns one row per mechanism.
pub fn rollback_table(scale: &RollbackScale) -> Vec<RollbackRow> {
    let spec = CounterSpec {
        iterations: scale.iterations,
        workers: scale.workers,
        body: CounterBody::LockCounterAndWork { spin: scale.spin },
    };
    let options = RunOptions {
        quantum: scale.quantum,
        observe: Observe::Metrics,
        ..RunOptions::new(CpuProfile::r3000())
    };
    ras_par::parallel_map(&ROLLBACK_MECHANISMS, |&mechanism| {
        let report = run_guest(&counter_loop(mechanism, &spec), &options);
        RollbackRow {
            mechanism,
            metrics: report.metrics.expect("metrics mode records metrics"),
        }
    })
}

/// Renders the rows as a paper-style ASCII table.
pub fn render_rollback_table(rows: &[RollbackRow]) -> String {
    let mut t = AsciiTable::new(
        "Rollback metrics: contended counter with non-critical work (2 workers)",
        &[
            "Software Mechanism",
            "Quanta",
            "In-seq",
            "Rollbacks",
            "/100 quanta",
            "Wasted cyc",
        ],
    );
    for row in rows {
        let m = &row.metrics;
        t.row(vec![
            row.mechanism.label().to_owned(),
            m.quantum_expiries.to_string(),
            m.preemptions_inside_sequence.to_string(),
            m.rollbacks.to_string(),
            format!("{:.3}", m.rollbacks_per_100_quanta()),
            m.wasted_cycles.to_string(),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<RollbackRow> {
        rollback_table(&RollbackScale {
            iterations: 1_500,
            workers: 2,
            spin: 100,
            quantum: 5_000,
        })
    }

    #[test]
    fn every_mechanism_sees_preemption_and_only_ras_rolls_back() {
        let rows = quick();
        assert_eq!(rows.len(), ROLLBACK_MECHANISMS.len());
        for row in &rows {
            assert!(
                row.metrics.quantum_expiries > 0,
                "{}: no quantum ever expired",
                row.mechanism
            );
            let is_ras = matches!(
                row.mechanism,
                Mechanism::RasRegistered | Mechanism::RasInline
            );
            if !is_ras {
                assert_eq!(
                    row.metrics.rollbacks, 0,
                    "{}: non-RAS mechanism reported rollbacks",
                    row.mechanism
                );
            }
        }
    }

    #[test]
    fn wasted_cycles_move_with_rollbacks() {
        for row in quick() {
            if row.metrics.rollbacks == 0 {
                assert_eq!(row.metrics.wasted_cycles, 0, "{}", row.mechanism);
            }
        }
    }

    #[test]
    fn rendering_contains_every_mechanism() {
        let rows = quick();
        let text = render_rollback_table(&rows);
        for row in &rows {
            assert!(text.contains(row.mechanism.label()));
        }
    }
}
