//! Table 2: the effect of synchronization on thread-management overhead
//! under Mach 3.0 (§5.2) — Spinlock, MutexLock, ForkTest, and PingPong,
//! each under kernel emulation and under restartable atomic sequences
//! (the registered flavor, as Mach's C-Threads used).

use ras_guest::workloads::{fork_test, mutex_bench, ping_pong, spinlock_bench, Table2Spec};
use ras_guest::Mechanism;
use ras_machine::CpuProfile;

use crate::report::{fmt_us, AsciiTable};
use crate::{run_guest, RunOptions};

/// Which Table 2 benchmark a row describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table2Bench {
    /// Repeated spin-lock acquire/release.
    Spinlock,
    /// Repeated blocking-mutex acquire/release.
    MutexLock,
    /// Recursive thread forking.
    ForkTest,
    /// Two threads alternating through a mutex and condition variable.
    PingPong,
}

impl Table2Bench {
    /// The paper's row name.
    pub fn label(self) -> &'static str {
        match self {
            Table2Bench::Spinlock => "Spinlock",
            Table2Bench::MutexLock => "MutexLock",
            Table2Bench::ForkTest => "ForkTest",
            Table2Bench::PingPong => "PingPong",
        }
    }
}

/// Scale knobs for [`table2`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table2Scale {
    /// Iterations for Spinlock and MutexLock.
    pub lock_iterations: u32,
    /// Chain length for ForkTest.
    pub forks: u32,
    /// Cycles for PingPong.
    pub pingpong_cycles: u32,
}

impl Default for Table2Scale {
    fn default() -> Table2Scale {
        Table2Scale {
            lock_iterations: 20_000,
            forks: 500,
            pingpong_cycles: 2_000,
        }
    }
}

/// One row of Table 2: µs per operation under each system version.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// The benchmark.
    pub bench: Table2Bench,
    /// Measured µs/op with kernel emulation.
    pub emulation_us: f64,
    /// Measured µs/op with restartable atomic sequences.
    pub ras_us: f64,
    /// The paper's (emulation, R.A.S.) values in µs.
    pub paper_us: (f64, f64),
}

impl Table2Row {
    /// Speedup of restartable atomic sequences over emulation.
    pub fn speedup(&self) -> f64 {
        self.emulation_us / self.ras_us
    }
}

/// The paper's Table 2 values: (emulation µs, R.A.S. µs).
pub const PAPER_TABLE2: [(Table2Bench, f64, f64); 4] = [
    (Table2Bench::Spinlock, 4.3, 0.58),
    (Table2Bench::MutexLock, 4.6, 0.91),
    (Table2Bench::ForkTest, 43.7, 23.8),
    (Table2Bench::PingPong, 230.8, 115.2),
];

fn run_bench(bench: Table2Bench, mechanism: Mechanism, scale: &Table2Scale) -> f64 {
    let mut options = RunOptions::new(CpuProfile::r3000());
    match bench {
        Table2Bench::Spinlock => {
            let spec = Table2Spec {
                iterations: scale.lock_iterations,
            };
            let report = run_guest(&spinlock_bench(mechanism, &spec), &options);
            report.micros / f64::from(spec.iterations)
        }
        Table2Bench::MutexLock => {
            let spec = Table2Spec {
                iterations: scale.lock_iterations,
            };
            let report = run_guest(&mutex_bench(mechanism, &spec), &options);
            report.micros / f64::from(spec.iterations)
        }
        Table2Bench::ForkTest => {
            let spec = Table2Spec {
                iterations: scale.forks,
            };
            options.stack_bytes = 2048;
            options.max_threads = scale.forks as usize + 2;
            options.mem_bytes = (8 * 1024 * 1024).max(options.stack_bytes * (scale.forks + 8));
            let report = run_guest(&fork_test(mechanism, &spec), &options);
            report.micros / f64::from(spec.iterations)
        }
        Table2Bench::PingPong => {
            let spec = Table2Spec {
                iterations: scale.pingpong_cycles,
            };
            let report = run_guest(&ping_pong(mechanism, &spec), &options);
            report.micros / f64::from(spec.iterations)
        }
    }
}

/// Runs the Table 2 experiment. The four benchmarks are independent
/// cells, so they fan out across a worker pool and come back in the
/// paper's row order.
pub fn table2(scale: &Table2Scale) -> Vec<Table2Row> {
    ras_par::parallel_map(&PAPER_TABLE2, |&(bench, paper_emul, paper_ras)| Table2Row {
        bench,
        emulation_us: run_bench(bench, Mechanism::KernelEmulation, scale),
        ras_us: run_bench(bench, Mechanism::RasRegistered, scale),
        paper_us: (paper_emul, paper_ras),
    })
}

/// Renders the rows in the paper's layout.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut t = AsciiTable::new(
        "Table 2: Thread management overhead, Mach 3.0 / DECstation 5000/200 (µs per op)",
        &[
            "Benchmark",
            "Emulation",
            "R.A.S.",
            "Paper Emul.",
            "Paper R.A.S.",
        ],
    );
    for row in rows {
        t.row(vec![
            row.bench.label().to_owned(),
            fmt_us(row.emulation_us),
            fmt_us(row.ras_us),
            fmt_us(row.paper_us.0),
            fmt_us(row.paper_us.1),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<Table2Row> {
        table2(&Table2Scale {
            lock_iterations: 2_000,
            forks: 60,
            pingpong_cycles: 150,
        })
    }

    #[test]
    fn ras_beats_emulation_on_every_benchmark() {
        for row in quick() {
            assert!(
                row.ras_us < row.emulation_us,
                "{}: RAS {:.2} vs emulation {:.2}",
                row.bench.label(),
                row.ras_us,
                row.emulation_us
            );
        }
    }

    #[test]
    fn speedups_have_the_paper_shape() {
        let rows = quick();
        let get = |b: Table2Bench| rows.iter().find(|r| r.bench == b).unwrap().speedup();
        // Paper: spinlock 7.4x, mutex 5.1x, fork 1.8x, pingpong 2.0x — the
        // lock microbenchmarks gain far more than the heavyweight ops.
        assert!(get(Table2Bench::Spinlock) > 3.0);
        assert!(get(Table2Bench::MutexLock) > 2.0);
        assert!(get(Table2Bench::ForkTest) > 1.1);
        assert!(get(Table2Bench::ForkTest) < get(Table2Bench::Spinlock));
        assert!(get(Table2Bench::PingPong) > 1.2);
        assert!(get(Table2Bench::PingPong) < get(Table2Bench::Spinlock));
    }

    #[test]
    fn per_op_costs_order_like_the_paper() {
        // Spinlock < MutexLock < ForkTest < PingPong within each column.
        let rows = quick();
        let col = |f: fn(&Table2Row) -> f64| -> Vec<f64> { rows.iter().map(f).collect() };
        for us in [col(|r| r.emulation_us), col(|r| r.ras_us)] {
            assert!(us[0] < us[1], "spinlock < mutex: {us:?}");
            assert!(us[1] < us[2], "mutex < fork: {us:?}");
            assert!(us[2] < us[3], "fork < pingpong: {us:?}");
        }
    }

    #[test]
    fn rendering_contains_all_benchmarks() {
        let text = render_table2(&quick());
        for (bench, _, _) in PAPER_TABLE2 {
            assert!(text.contains(bench.label()));
        }
    }
}
