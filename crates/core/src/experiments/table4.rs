//! Table 4: hardware vs software support for mutual exclusion across
//! eight processor architectures (§6) — the overhead of acquiring and
//! releasing a Test-And-Set lock with memory-interlocked instructions,
//! explicitly registered sequences, and inlined designated sequences.

use ras_guest::workloads::CounterBody;
use ras_guest::Mechanism;
use ras_machine::CpuProfile;

use super::table1::measure_per_op;
use crate::report::{fmt_us, AsciiTable};
use crate::RunOptions;

/// Scale knob for [`table4`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table4Scale {
    /// Loop iterations per cell.
    pub iterations: u32,
}

impl Default for Table4Scale {
    fn default() -> Table4Scale {
        Table4Scale { iterations: 50_000 }
    }
}

/// One row of Table 4 (one processor architecture), µs per
/// acquire+release.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Architecture name.
    pub processor: String,
    /// Hardware memory-interlocked instruction.
    pub interlocked_us: f64,
    /// Explicitly registered sequence (includes call linkage).
    pub registered_us: f64,
    /// Call-linkage overhead (registered minus designated, as in the
    /// paper: "subtract the overhead of linkage from that of an explicitly
    /// registered sequence" to get the designated cost).
    pub linkage_us: f64,
    /// Inlined designated sequence.
    pub designated_us: f64,
    /// The paper's values: (interlocked, registered, linkage, designated).
    pub paper_us: [f64; 4],
}

/// The paper's Table 4 (µs): interlocked, explicit registration, linkage
/// overhead, designated sequence.
pub const PAPER_TABLE4: [(&str, [f64; 4]); 8] = [
    ("DEC CVAX", [2.8, 2.2, 0.6, 1.6]),
    ("Motorola 68030", [1.1, 2.0, 0.8, 1.2]),
    ("Intel 386", [1.0, 1.6, 0.7, 0.9]),
    ("Intel 486", [0.7, 0.6, 0.3, 0.3]),
    ("Intel 860", [0.3, 0.4, 0.2, 0.2]),
    ("Motorola 88000", [0.9, 0.3, 0.1, 0.2]),
    ("Sun SPARC", [0.8, 1.0, 0.3, 0.7]),
    ("HP 9000/700", [0.94, 0.17, 0.08, 0.09]),
];

/// Runs the Table 4 experiment: the acquire+release microbenchmark (no
/// counter body) on every architecture profile under each mechanism.
pub fn table4(scale: Table4Scale) -> Vec<Table4Row> {
    // One cell per architecture: each boots its own simulations, so the
    // eight processors fan out across a worker pool and come back in
    // lineup order.
    let lineup = CpuProfile::table4_lineup();
    ras_par::parallel_map(&lineup, |profile| {
        let options = RunOptions::new(profile.clone());
        let measure = |mechanism: Mechanism| {
            measure_per_op(mechanism, scale.iterations, CounterBody::LockOnly, &options)
        };
        let interlocked_us = measure(Mechanism::Interlocked);
        let registered_us = measure(Mechanism::RasRegistered);
        let designated_us = measure(Mechanism::RasInline);
        let paper_us = PAPER_TABLE4
            .iter()
            .find(|(name, _)| *name == profile.name())
            .map(|(_, v)| *v)
            .expect("profile present in paper table");
        Table4Row {
            processor: profile.name().to_owned(),
            interlocked_us,
            registered_us,
            linkage_us: registered_us - designated_us,
            designated_us,
            paper_us,
        }
    })
}

/// Renders the rows in the paper's layout, measured beside paper values.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut t = AsciiTable::new(
        "Table 4: Hardware and software overheads of Test-And-Set (µs; paper values in parentheses)",
        &[
            "Processor",
            "Interlocked",
            "Explicit Reg.",
            "Linkage",
            "Designated",
        ],
    );
    for row in rows {
        t.row(vec![
            row.processor.clone(),
            format!(
                "{} ({})",
                fmt_us(row.interlocked_us),
                fmt_us(row.paper_us[0])
            ),
            format!(
                "{} ({})",
                fmt_us(row.registered_us),
                fmt_us(row.paper_us[1])
            ),
            format!("{} ({})", fmt_us(row.linkage_us), fmt_us(row.paper_us[2])),
            format!(
                "{} ({})",
                fmt_us(row.designated_us),
                fmt_us(row.paper_us[3])
            ),
        ]);
    }
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Vec<Table4Row> {
        table4(Table4Scale { iterations: 3_000 })
    }

    #[test]
    fn designated_beats_or_matches_hardware_everywhere() {
        // "Using designated sequences, the software approach outperforms
        // the hardware in all cases" — though the paper's own Table 4 has
        // one exception: on the 68030 the well-implemented TAS instruction
        // (1.1 µs) edges the designated sequence (1.2 µs). We require a
        // strict win everywhere else and near-parity (within 30%) there.
        for row in quick() {
            if row.processor == "Motorola 68030" {
                assert!(
                    row.designated_us < row.interlocked_us * 1.3,
                    "{}: designated {:.2} vs interlocked {:.2}",
                    row.processor,
                    row.designated_us,
                    row.interlocked_us
                );
            } else {
                assert!(
                    row.designated_us < row.interlocked_us,
                    "{}: designated {:.2} vs interlocked {:.2}",
                    row.processor,
                    row.designated_us,
                    row.interlocked_us
                );
            }
        }
    }

    #[test]
    fn registered_beats_hardware_where_the_paper_says() {
        // Registered sequences beat interlocked instructions on the CVAX,
        // 486, 88000, and HP-PA; lose on the 68030, 386, i860, and SPARC.
        let rows = quick();
        let wins: Vec<&str> = rows
            .iter()
            .filter(|r| r.registered_us < r.interlocked_us)
            .map(|r| r.processor.as_str())
            .collect();
        for expected in ["DEC CVAX", "Intel 486", "Motorola 88000", "HP 9000/700"] {
            assert!(
                wins.contains(&expected),
                "{expected} should win, wins={wins:?}"
            );
        }
        for expected_loss in ["Motorola 68030", "Intel 386", "Intel 860", "Sun SPARC"] {
            assert!(
                !wins.contains(&expected_loss),
                "{expected_loss} should lose, wins={wins:?}"
            );
        }
    }

    #[test]
    fn registered_equals_designated_plus_linkage() {
        for row in quick() {
            let sum = row.designated_us + row.linkage_us;
            assert!(
                (row.registered_us - sum).abs() < 1e-9,
                "{}: identity violated",
                row.processor
            );
            assert!(row.linkage_us > 0.0, "{}: linkage must cost", row.processor);
        }
    }

    #[test]
    fn magnitudes_are_near_the_paper() {
        for row in quick() {
            for (measured, paper) in [
                (row.interlocked_us, row.paper_us[0]),
                (row.registered_us, row.paper_us[1]),
                (row.designated_us, row.paper_us[3]),
            ] {
                let ratio = measured / paper;
                assert!(
                    (0.4..2.5).contains(&ratio),
                    "{}: measured {measured:.2} vs paper {paper:.2}",
                    row.processor
                );
            }
        }
    }

    #[test]
    fn rendering_contains_all_processors() {
        let text = render_table4(&quick());
        for (name, _) in PAPER_TABLE4 {
            assert!(text.contains(name));
        }
    }
}
