//! Runners that regenerate every table in the paper's evaluation.
//!
//! Each `tableN` function executes the corresponding experiment on the
//! simulator and returns typed rows carrying both the measured value and
//! the paper's published value, so callers (the `ras-bench` harness,
//! EXPERIMENTS.md generation, and the shape-assertion tests) can compare
//! them. `render_tableN` produces the paper-style ASCII table.

pub mod ablations;
pub mod figures;
mod headtohead;
mod rollbacks;
mod table1;
mod table2;
mod table3;
mod table4;
mod verify;

pub use headtohead::{
    head_to_head, render_head_to_head, HeadToHeadRow, HeadToHeadScale, HEAD_TO_HEAD_MECHANISMS,
};
pub use rollbacks::{
    render_rollback_table, rollback_table, RollbackRow, RollbackScale, ROLLBACK_MECHANISMS,
};
pub use table1::{render_table1, table1, Table1Row, Table1Scale, PAPER_TABLE1};
pub use table2::{render_table2, table2, Table2Bench, Table2Row, Table2Scale, PAPER_TABLE2};
pub use table3::{render_table3, table3, Table3App, Table3Row, Table3Scale, PAPER_TABLE3};
pub use table4::{render_table4, table4, Table4Row, Table4Scale, PAPER_TABLE4};
pub use verify::{verify_reproduction, Claim, Verification, VerifyScale};

/// Runs every experiment at full scale and renders all four tables.
pub fn render_all() -> String {
    let mut out = String::new();
    out.push_str(&render_table1(&table1(Table1Scale::default())));
    out.push('\n');
    out.push_str(&render_table2(&table2(&Table2Scale::default())));
    out.push('\n');
    out.push_str(&render_table3(&table3(&Table3Scale::default())));
    out.push('\n');
    out.push_str(&render_table4(&table4(Table4Scale::default())));
    out
}
