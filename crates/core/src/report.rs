//! Plain-text table rendering for experiment reports.

use std::fmt;

/// A plain-text table renderer for experiment output, mirroring the
/// paper's table layout in monospace.
///
/// # Example
///
/// ```
/// use ras_core::report::AsciiTable;
///
/// let mut t = AsciiTable::new("Table 1", &["Mechanism", "Time (µs)"]);
/// t.row(vec!["RAS (inline)".into(), "0.51".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Mechanism"));
/// assert!(text.contains("0.51"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl AsciiTable {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> AsciiTable {
        AsciiTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for AsciiTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}", self.title)?;
        let line: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        writeln!(f, "{line}")?;
        let fmt_row = |row: &[String]| -> String {
            (0..cols)
                .map(|i| format!(" {:<w$} ", row[i], w = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(f, "{line}")?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a microsecond value the way the paper prints it (two decimals
/// under 10, one decimal above).
pub fn fmt_us(us: f64) -> String {
    if us < 10.0 {
        format!("{us:.2}")
    } else {
        format!("{us:.1}")
    }
}

/// Formats a ratio like `1.38x`.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = AsciiTable::new("T", &["a", "bbbb"]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "T");
        assert!(lines[2].contains("a"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All data lines have equal width.
        assert_eq!(lines[4].len(), lines[5].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_is_checked() {
        let mut t = AsciiTable::new("T", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn microsecond_formatting_matches_paper_style() {
        assert_eq!(fmt_us(0.51), "0.51");
        assert_eq!(fmt_us(4.154), "4.15");
        assert_eq!(fmt_us(230.84), "230.8");
        assert_eq!(fmt_ratio(1.376), "1.38x");
    }
}
