//! High-level facade for the *Fast Mutual Exclusion for Uniprocessors*
//! reproduction: build a workload for a [`Mechanism`], run it on a
//! simulated uniprocessor, and regenerate the paper's evaluation tables.
//!
//! This crate re-exports the pieces most users need — the mechanisms and
//! workloads from `ras-guest`, the kernel configuration surface from
//! `ras-kernel`, and the CPU profiles from `ras-machine` — plus the
//! [`experiments`] module, whose `table1`…`table4` runners regenerate
//! every table in the paper's evaluation section.
//!
//! # Example
//!
//! ```
//! use ras_core::{run_guest, Mechanism, RunOptions};
//! use ras_guest::workloads::{counter_loop, CounterSpec};
//!
//! let spec = CounterSpec { iterations: 2_000, ..Default::default() };
//! let ras = run_guest(&counter_loop(Mechanism::RasInline, &spec), &RunOptions::default());
//! let emu = run_guest(&counter_loop(Mechanism::KernelEmulation, &spec), &RunOptions::default());
//! assert!(ras.micros < emu.micros, "optimism wins on the fast path");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
mod run;

pub use ras_guest::{workloads, BuiltGuest, GuestBuilder, Mechanism, SeqRange, SyncRuntime};
pub use ras_kernel::{
    CheckTime, Kernel, KernelConfig, KernelStats, Outcome, StrategyKind, ThreadId,
};
pub use ras_machine::{CostModel, CpuProfile, PagingConfig};
pub use ras_model::{model_check, CheckConfig, CheckReport, ModelTarget};
pub use run::{run_guest, run_guest_keeping_kernel, Observe, RunOptions, RunReport};
