//! `ras-stat` — run the lock-server workload with streaming telemetry
//! and export per-lock latency percentiles.
//!
//! Usage: `ras-stat [options]`
//!
//! Options:
//!
//! * `--mechanism ID` — one of the `Mechanism` ids (default
//!   `ras-registered`)
//! * `--clients N` — client threads (default 8)
//! * `--locks N` — distinct locks (default 4)
//! * `--ops N` — lock operations per client (default 24)
//! * `--arrival KIND` — `uniform`, `zipfian`, or `bursty` (default
//!   `uniform`)
//! * `--think N` — busy-work iterations inside each critical section
//!   (default 0)
//! * `--quantum N` — preemption quantum in cycles (default 25000)
//! * `--seed N` — schedule-generator seed (default the spec's)
//! * `--format FMT` — `table` (percentile table, default),
//!   `prometheus` (text exposition), or `json` (schema-validated
//!   snapshot)
//! * `--out PATH` — write to a file instead of stdout
//! * `--check` — validate the JSON snapshot against the `ras-stat-v1`
//!   schema and print a one-line summary
//! * `--overhead-gate RATIO` — additionally run the same workload with
//!   telemetry off (interleaved best of 5 each) and fail if
//!   enabled/disabled wall time exceeds RATIO
//!
//! Exit codes: `0` success, `1` validation or gate failure, `2` usage
//! error.

use std::process::ExitCode;
use std::time::Instant;

use ras_core::{run_guest_keeping_kernel, Mechanism, Observe, RunOptions};
use ras_guest::workloads::{lock_addresses, lock_server, Arrival, LockServerSpec};
use ras_machine::CpuProfile;
use ras_obs::{validate_stat_snapshot, SnapshotMeta, StatSnapshot};

struct Options {
    mechanism: Mechanism,
    spec: LockServerSpec,
    quantum: u64,
    format: String,
    out: Option<String>,
    check: bool,
    overhead_gate: Option<f64>,
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let mut opts = Options {
        mechanism: Mechanism::RasRegistered,
        spec: LockServerSpec::default(),
        quantum: 25_000,
        format: "table".to_owned(),
        out: None,
        check: false,
        overhead_gate: None,
    };
    args.next(); // program name
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--mechanism" => {
                let id = value("--mechanism")?;
                opts.mechanism = Mechanism::all()
                    .into_iter()
                    .find(|m| m.id() == id)
                    .ok_or_else(|| {
                        let ids: Vec<&str> = Mechanism::all().iter().map(|m| m.id()).collect();
                        format!("unknown mechanism `{id}` (one of: {})", ids.join(", "))
                    })?;
            }
            "--clients" => {
                opts.spec.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--locks" => {
                opts.spec.locks = value("--locks")?
                    .parse()
                    .map_err(|e| format!("--locks: {e}"))?;
            }
            "--ops" => {
                opts.spec.ops_per_client =
                    value("--ops")?.parse().map_err(|e| format!("--ops: {e}"))?;
            }
            "--arrival" => {
                let id = value("--arrival")?;
                opts.spec.arrival = Arrival::from_id(&id)
                    .ok_or_else(|| "--arrival must be uniform, zipfian, or bursty".to_owned())?;
            }
            "--think" => {
                opts.spec.think = value("--think")?
                    .parse()
                    .map_err(|e| format!("--think: {e}"))?;
            }
            "--quantum" => {
                opts.quantum = value("--quantum")?
                    .parse()
                    .map_err(|e| format!("--quantum: {e}"))?;
            }
            "--seed" => {
                opts.spec.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--format" => {
                let f = value("--format")?;
                if f != "table" && f != "prometheus" && f != "json" {
                    return Err(format!(
                        "--format must be table, prometheus, or json, got `{f}`"
                    ));
                }
                opts.format = f;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--check" => opts.check = true,
            "--overhead-gate" => {
                opts.overhead_gate = Some(
                    value("--overhead-gate")?
                        .parse()
                        .map_err(|e| format!("--overhead-gate: {e}"))?,
                );
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// The least exotic CPU able to run the mechanism.
fn pick_profile(mechanism: Mechanism) -> CpuProfile {
    for profile in [CpuProfile::r3000(), CpuProfile::i486(), CpuProfile::i860()] {
        if mechanism.supported_by(&profile) {
            return profile;
        }
    }
    unreachable!("every mechanism runs on at least one profile");
}

fn run_options(opts: &Options, telemetry_locks: Option<Vec<u32>>) -> RunOptions {
    RunOptions {
        quantum: opts.quantum,
        observe: Observe::Off,
        max_threads: opts.spec.clients + 2,
        stack_bytes: stack_bytes_for(opts.spec.clients),
        telemetry_locks,
        ..RunOptions::new(pick_profile(opts.mechanism))
    }
}

/// Thousands of client threads only fit in the 8 MiB data image with
/// small stacks; the lock-server client needs very little.
fn stack_bytes_for(clients: usize) -> u32 {
    if clients > 512 {
        512
    } else {
        16 * 1024
    }
}

fn emit(path: Option<&str>, content: &str) -> Result<(), String> {
    match path {
        Some(p) => std::fs::write(p, content).map_err(|e| format!("writing {p}: {e}")),
        None => {
            print!("{content}");
            if !content.ends_with('\n') {
                println!();
            }
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ras-stat: {e}");
            return ExitCode::from(2);
        }
    };
    let built = lock_server(opts.mechanism, &opts.spec);
    let watch = lock_addresses(&built, &opts.spec);

    if let Some(gate) = opts.overhead_gate {
        // Best-of-5 wall time with and without telemetry. The arms are
        // interleaved — disabled, enabled, disabled, … — so host clock
        // drift (frequency scaling, thermal throttling) cannot
        // systematically penalize whichever arm runs later; the minimum
        // over repeats then filters scheduler noise.
        let wall = |telemetry: Option<&[u32]>| {
            let options = run_options(&opts, telemetry.map(<[u32]>::to_vec));
            let start = Instant::now();
            let _ = run_guest_keeping_kernel(&built, &options);
            start.elapsed().as_secs_f64()
        };
        let (mut disabled, mut enabled) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..5 {
            disabled = disabled.min(wall(None));
            enabled = enabled.min(wall(Some(&watch)));
        }
        let ratio = if disabled > 0.0 {
            enabled / disabled
        } else {
            1.0
        };
        println!(
            "overhead: disabled {:.3} ms, enabled {:.3} ms, ratio {ratio:.3} (gate {gate:.2})",
            disabled * 1e3,
            enabled * 1e3
        );
        if ratio > gate {
            eprintln!("ras-stat: telemetry overhead ratio {ratio:.3} exceeds gate {gate:.2}");
            return ExitCode::from(1);
        }
    }

    let options = run_options(&opts, Some(watch.clone()));
    let (report, mut kernel) = run_guest_keeping_kernel(&built, &options);
    // Correctness first: the per-lock operation counters must account
    // for every client operation.
    let ops_done = built.data.symbol("ops_done").expect("ops_done exists");
    let total_ops: u64 = (0..opts.spec.locks)
        .map(|i| {
            u64::from(
                kernel
                    .read_word(ops_done + 4 * i as u32)
                    .expect("counter readable"),
            )
        })
        .sum();
    if total_ops != opts.spec.total_ops() {
        eprintln!(
            "ras-stat: lost updates: {total_ops} ops recorded, expected {}",
            opts.spec.total_ops()
        );
        return ExitCode::from(1);
    }
    let telemetry = kernel.take_telemetry().expect("telemetry was enabled");
    let snapshot = StatSnapshot {
        meta: SnapshotMeta {
            mechanism: opts.mechanism.id().to_owned(),
            workload: "lock-server".to_owned(),
            clients: opts.spec.clients as u64,
            locks: opts.spec.locks as u64,
            ops_per_client: u64::from(opts.spec.ops_per_client),
            arrival: opts.spec.arrival.id().to_owned(),
            total_cycles: report.cycles,
            total_ops,
        },
        telemetry: &telemetry,
    };
    let content = match opts.format.as_str() {
        "json" => snapshot.to_json(),
        "prometheus" => snapshot.to_prometheus(),
        _ => snapshot.to_table(),
    };
    if opts.check {
        let json = if opts.format == "json" {
            content.clone()
        } else {
            snapshot.to_json()
        };
        match validate_stat_snapshot(&json) {
            Ok(summary) => println!(
                "ok: {} locks, {} threads, {} acquisitions",
                summary.locks, summary.threads, summary.acquisitions
            ),
            Err(e) => {
                eprintln!("ras-stat: invalid snapshot: {e}");
                return ExitCode::from(1);
            }
        }
    }
    if let Err(e) = emit(opts.out.as_deref(), &content) {
        eprintln!("ras-stat: {e}");
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
