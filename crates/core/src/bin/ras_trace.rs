//! `ras-trace` — run a (mechanism × workload) pair with full event
//! recording and export the result as a Perfetto-loadable Chrome trace or
//! a compact text report.
//!
//! Usage: `ras-trace [options]`
//!
//! Options:
//!
//! * `--mechanism ID` — one of the `Mechanism` ids, e.g. `ras-registered`,
//!   `ras-inline`, `kernel-emulation` (default `ras-registered`)
//! * `--workload NAME` — `counter`, `counter-work`, `lock-only`,
//!   `spinlock`, or `mutex` (default `counter`)
//! * `--iterations N` — operations per worker (default 2000)
//! * `--workers N` — worker threads for the counter workloads (default 2)
//! * `--spin N` — busy-work per critical section for `counter-work`
//!   (default 400)
//! * `--quantum N` — preemption quantum in cycles (default 25000, small
//!   enough that a short run still shows context switches)
//! * `--format FMT` — `perfetto` (Chrome trace-event JSON, load it at
//!   `ui.perfetto.dev`) or `text` (metrics + hot spots; default `perfetto`)
//! * `--out PATH` — write to a file instead of stdout
//! * `--check` — validate the generated trace against the trace-event
//!   schema and print a one-line summary instead of the trace itself
//!
//! Exit codes: `0` success, `1` validation failed, `2` usage error.

use std::process::ExitCode;

use ras_core::{run_guest_keeping_kernel, Mechanism, Observe, RunOptions};
use ras_guest::workloads::{
    counter_loop, mutex_bench, spinlock_bench, CounterBody, CounterSpec, Table2Spec,
};
use ras_guest::BuiltGuest;
use ras_machine::CpuProfile;
use ras_obs::{
    chrome_trace, chrome_trace_to, render_hotspots, symbolized_profile, validate_chrome_trace,
};

struct Options {
    mechanism: Mechanism,
    workload: String,
    iterations: u32,
    workers: usize,
    spin: u32,
    quantum: u64,
    format: String,
    out: Option<String>,
    check: bool,
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let mut opts = Options {
        mechanism: Mechanism::RasRegistered,
        workload: "counter".to_owned(),
        iterations: 2_000,
        workers: 2,
        spin: 400,
        quantum: 25_000,
        format: "perfetto".to_owned(),
        out: None,
        check: false,
    };
    args.next(); // program name
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--mechanism" => {
                let id = value("--mechanism")?;
                opts.mechanism = Mechanism::all()
                    .into_iter()
                    .find(|m| m.id() == id)
                    .ok_or_else(|| {
                        let ids: Vec<&str> = Mechanism::all().iter().map(|m| m.id()).collect();
                        format!("unknown mechanism `{id}` (one of: {})", ids.join(", "))
                    })?;
            }
            "--workload" => opts.workload = value("--workload")?,
            "--iterations" => {
                opts.iterations = value("--iterations")?
                    .parse()
                    .map_err(|e| format!("--iterations: {e}"))?;
            }
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--spin" => {
                opts.spin = value("--spin")?
                    .parse()
                    .map_err(|e| format!("--spin: {e}"))?;
            }
            "--quantum" => {
                opts.quantum = value("--quantum")?
                    .parse()
                    .map_err(|e| format!("--quantum: {e}"))?;
            }
            "--format" => {
                let f = value("--format")?;
                if f != "perfetto" && f != "text" {
                    return Err(format!("--format must be perfetto or text, got `{f}`"));
                }
                opts.format = f;
            }
            "--out" => opts.out = Some(value("--out")?),
            "--check" => opts.check = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// The least exotic CPU able to run the mechanism: the DECstation's R3000
/// when possible, otherwise a processor with the required hardware.
fn pick_profile(mechanism: Mechanism) -> CpuProfile {
    for profile in [CpuProfile::r3000(), CpuProfile::i486(), CpuProfile::i860()] {
        if mechanism.supported_by(&profile) {
            return profile;
        }
    }
    unreachable!("every mechanism runs on at least one profile");
}

fn build_workload(opts: &Options) -> Result<BuiltGuest, String> {
    let counter_spec = |body: CounterBody| CounterSpec {
        iterations: opts.iterations,
        workers: opts.workers,
        body,
    };
    let table2_spec = Table2Spec {
        iterations: opts.iterations,
    };
    Ok(match opts.workload.as_str() {
        "counter" => counter_loop(opts.mechanism, &counter_spec(CounterBody::LockAndCounter)),
        "counter-work" => counter_loop(
            opts.mechanism,
            &counter_spec(CounterBody::LockCounterAndWork { spin: opts.spin }),
        ),
        "lock-only" => counter_loop(opts.mechanism, &counter_spec(CounterBody::LockOnly)),
        "spinlock" => spinlock_bench(opts.mechanism, &table2_spec),
        "mutex" => mutex_bench(opts.mechanism, &table2_spec),
        other => {
            return Err(format!(
                "unknown workload `{other}` (one of: counter, counter-work, \
                 lock-only, spinlock, mutex)"
            ))
        }
    })
}

fn stream_trace(
    path: &str,
    events: &[ras_obs::TimedObsEvent],
    mhz: f64,
    name: &str,
) -> std::io::Result<()> {
    use std::io::Write as _;
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    chrome_trace_to(&mut w, events, mhz, name)?;
    w.flush()
}

fn emit(path: Option<&str>, content: &str) -> Result<(), String> {
    match path {
        Some(p) => std::fs::write(p, content).map_err(|e| format!("writing {p}: {e}")),
        None => {
            println!("{content}");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("ras-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let built = match build_workload(&opts) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("ras-trace: {e}");
            return ExitCode::from(2);
        }
    };
    let profile = pick_profile(opts.mechanism);
    let mhz = profile.mhz();
    let run_options = RunOptions {
        quantum: opts.quantum,
        observe: Observe::Events,
        pc_profile: opts.format == "text",
        ..RunOptions::new(profile.clone())
    };
    let (report, mut kernel) = run_guest_keeping_kernel(&built, &run_options);
    let recording = kernel.take_recording().expect("events mode records");

    match opts.format.as_str() {
        "perfetto" => {
            let name = format!("{} / {}", opts.mechanism.id(), opts.workload);
            // With --out, stream the trace straight to the file so the
            // JSON document is never held in memory; validation re-reads
            // the bytes actually written. Without --out the trace is
            // small enough to buffer for stdout.
            let trace = match opts.out.as_deref() {
                Some(path) => {
                    if let Err(e) = stream_trace(path, recording.events(), mhz, &name) {
                        eprintln!("ras-trace: writing {path}: {e}");
                        return ExitCode::from(1);
                    }
                    if !opts.check {
                        return ExitCode::SUCCESS;
                    }
                    match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("ras-trace: re-reading {path}: {e}");
                            return ExitCode::from(1);
                        }
                    }
                }
                None => chrome_trace(recording.events(), mhz, &name),
            };
            if opts.check {
                match validate_chrome_trace(&trace) {
                    Ok(summary) => {
                        println!(
                            "ok: {} events, {} slices, {} instants, {} tracks",
                            summary.events, summary.slices, summary.instants, summary.tracks
                        );
                    }
                    Err(e) => {
                        eprintln!("ras-trace: invalid trace: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            if opts.out.is_none() {
                println!("{trace}");
            }
        }
        _ => {
            let mut text = String::new();
            text.push_str(&format!(
                "ras-trace: {} / {} on {} ({} cycles, {:.1} µs simulated)\n\n",
                opts.mechanism.id(),
                opts.workload,
                profile.name(),
                report.cycles,
                report.micros
            ));
            text.push_str(&recording.metrics().render());
            let hotspots = symbolized_profile(&built.program, kernel.pc_cycles());
            if !hotspots.is_empty() {
                text.push('\n');
                text.push_str(&render_hotspots(&hotspots));
            }
            if let Err(e) = emit(opts.out.as_deref(), &text) {
                eprintln!("ras-trace: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}
