use ras_guest::BuiltGuest;
use ras_isa::Opcode;
use ras_kernel::{CheckTime, Kernel, KernelStats, Outcome};
use ras_machine::{CpuProfile, EngineKind, PagingConfig};
use ras_obs::{Metrics, TranslationCounters};

/// What the kernel's observability layer records during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Observe {
    /// Record nothing — the zero-overhead default.
    #[default]
    Off,
    /// Aggregate rollback/lock/scheduling counters only.
    Metrics,
    /// Counters plus the full timestamped event stream (what the
    /// Perfetto exporter consumes). Unbounded memory for long runs.
    Events,
}

/// Options for executing a built guest on the simulator.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// The CPU to run on.
    pub profile: CpuProfile,
    /// Preemption quantum in cycles (default: 250,000 — the DECstation's
    /// 100 Hz tick at 25 MHz).
    pub quantum: u64,
    /// Timer jitter in cycles.
    pub jitter: u64,
    /// Seed for the jitter generator.
    pub seed: u64,
    /// When the kernel's PC check runs (§4.1).
    pub check_time: CheckTime,
    /// Optional demand paging.
    pub paging: Option<PagingConfig>,
    /// Per-thread stack size.
    pub stack_bytes: u32,
    /// Maximum thread count.
    pub max_threads: usize,
    /// Data memory size.
    pub mem_bytes: u32,
    /// Cycle budget; [`RunReport::outcome`] is
    /// [`Outcome::OutOfFuel`] if exceeded.
    pub fuel: u64,
    /// Collect the per-opcode instruction mix (forces the machine onto its
    /// instrumented loop; see [`ras_machine::Machine::enable_mix`]).
    pub collect_mix: bool,
    /// Structured observability recording (see [`Observe`]).
    pub observe: Observe,
    /// Accumulate the per-PC cycle histogram (forces the machine onto its
    /// instrumented loop; see [`ras_machine::Machine::enable_pc_profile`]).
    pub pc_profile: bool,
    /// Which execution engine drives guest timeslices (see
    /// [`ras_machine::EngineKind`]). Instrumented options (`collect_mix`,
    /// `pc_profile`, event observation) win over the translated engine:
    /// the machine deoptimizes wholesale so collectors see every
    /// instruction.
    pub engine: EngineKind,
    /// Lock words to watch with streaming telemetry (wait/hold
    /// histograms, sharded counters — see [`ras_obs::Telemetry`]).
    /// `None` leaves telemetry off; retrieve the aggregate from the kept
    /// kernel with `take_telemetry`.
    pub telemetry_locks: Option<Vec<u32>>,
    /// Additionally retain every watched access in the telemetry
    /// aggregate (O(events) memory — differential tests only).
    pub telemetry_raw: bool,
}

impl RunOptions {
    /// Paper-realistic defaults on the given profile.
    pub fn new(profile: CpuProfile) -> RunOptions {
        RunOptions {
            profile,
            quantum: 250_000,
            jitter: 0,
            seed: 0,
            check_time: CheckTime::OnSuspend,
            paging: None,
            stack_bytes: 16 * 1024,
            max_threads: 64,
            mem_bytes: 8 * 1024 * 1024,
            fuel: u64::MAX,
            collect_mix: false,
            observe: Observe::Off,
            pc_profile: false,
            engine: EngineKind::default(),
            telemetry_locks: None,
            telemetry_raw: false,
        }
    }
}

impl Default for RunOptions {
    fn default() -> RunOptions {
        RunOptions::new(CpuProfile::r3000())
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: Outcome,
    /// Total machine cycles.
    pub cycles: u64,
    /// Elapsed simulated time in microseconds.
    pub micros: f64,
    /// Guest instructions retired.
    pub instructions: u64,
    /// Kernel statistics (Table 3's columns live here).
    pub stats: KernelStats,
    /// Observability metrics, present when [`RunOptions::observe`] was
    /// not [`Observe::Off`].
    pub metrics: Option<Metrics>,
    /// Per-opcode retirement counts indexed by [`Opcode`]'s dense code,
    /// present when [`RunOptions::collect_mix`] was set.
    pub mix: Option<[u64; Opcode::COUNT]>,
    /// Translation-tier counters, present when [`RunOptions::engine`] was
    /// [`EngineKind::Translated`].
    pub translation: Option<TranslationCounters>,
}

impl RunReport {
    /// Elapsed simulated time in seconds.
    pub fn seconds(&self) -> f64 {
        self.micros / 1e6
    }
}

/// Boots and runs a built guest, returning the report.
///
/// # Panics
///
/// Panics if the kernel cannot boot (data image too large) or the run does
/// not complete — experiment harnesses treat those as configuration bugs.
pub fn run_guest(built: &BuiltGuest, options: &RunOptions) -> RunReport {
    let (report, _) = run_guest_keeping_kernel(built, options);
    report
}

/// Like [`run_guest`] but also returns the final kernel for inspection
/// (memory contents, output log).
pub fn run_guest_keeping_kernel(built: &BuiltGuest, options: &RunOptions) -> (RunReport, Kernel) {
    // In debug builds, statically verify the guest before booting it. A
    // broken restartable sequence or stray landmark does not fail loudly
    // at run time — it silently corrupts shared state on an unlucky
    // preemption — so catching it here turns a flaky heisenbug into a
    // deterministic panic with the offending instructions.
    #[cfg(debug_assertions)]
    {
        let analysis = ras_analyze::analyze_standard(&built.program);
        if analysis.has_errors() {
            let report: String = analysis
                .errors()
                .map(|d| d.render(&built.program))
                .collect();
            panic!(
                "static verification failed for {} guest:\n{report}",
                built.mechanism
            );
        }
    }

    let mut config = built.kernel_config(options.profile.clone());
    config.quantum = options.quantum;
    config.jitter = options.jitter;
    config.seed = options.seed;
    config.check_time = options.check_time;
    config.paging = options.paging;
    config.stack_bytes = options.stack_bytes;
    config.max_threads = options.max_threads;
    config.mem_bytes = options.mem_bytes;
    config.collect_mix = options.collect_mix;
    config.engine = options.engine;
    let mut kernel = built.boot(config).expect("guest boots");
    match options.observe {
        Observe::Off => {}
        Observe::Metrics => kernel.enable_recording(false),
        Observe::Events => kernel.enable_recording(true),
    }
    if options.pc_profile {
        kernel.enable_pc_profile();
    }
    if let Some(locks) = &options.telemetry_locks {
        kernel.enable_telemetry(locks, options.telemetry_raw);
    }
    let outcome = kernel.run(options.fuel);
    assert!(
        matches!(outcome, Outcome::Completed),
        "experiment run must complete, got {outcome:?} for {}",
        built.mechanism
    );
    let report = RunReport {
        outcome,
        cycles: kernel.machine().clock(),
        micros: kernel.machine().elapsed_micros(),
        instructions: kernel.machine().instructions_retired(),
        stats: *kernel.stats(),
        metrics: kernel.recording().map(|r| r.metrics().clone()),
        mix: options
            .collect_mix
            .then(|| kernel.machine().instruction_mix()),
        translation: kernel.translation_stats().map(TranslationCounters::from),
    };
    (report, kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ras_guest::{workloads, Mechanism};

    #[test]
    fn run_guest_reports_cycles_and_stats() {
        let spec = workloads::CounterSpec {
            iterations: 100,
            workers: 1,
            body: workloads::CounterBody::LockAndCounter,
        };
        let built = workloads::counter_loop(Mechanism::KernelEmulation, &spec);
        let report = run_guest(&built, &RunOptions::default());
        assert_eq!(report.outcome, Outcome::Completed);
        assert!(report.cycles > 0);
        assert!(report.micros > 0.0);
        assert!(report.stats.emulation_traps >= 100);
        assert!((report.seconds() - report.micros / 1e6).abs() < 1e-12);
    }

    #[test]
    fn keeping_kernel_allows_memory_inspection() {
        let spec = workloads::CounterSpec {
            iterations: 50,
            workers: 2,
            body: workloads::CounterBody::LockAndCounter,
        };
        let built = workloads::counter_loop(Mechanism::RasInline, &spec);
        let (report, kernel) = run_guest_keeping_kernel(&built, &RunOptions::default());
        assert_eq!(report.outcome, Outcome::Completed);
        let counter = built.data.symbol("counter").unwrap();
        assert_eq!(kernel.read_word(counter).unwrap(), 100);
    }
}
