//! A/B of the two engines on the trajectory benchmark workload (the
//! single-worker RAS-inline lock-and-counter loop), printing the
//! translation tier's counters — handy when the `--bench-json` gate
//! moves.
//!
//! Run with: `cargo run --release -p ras-core --example engine_workload_perf`

use std::time::Instant;

use ras_core::{run_guest, Mechanism, RunOptions};
use ras_guest::workloads::{counter_loop, CounterBody, CounterSpec};
use ras_machine::{CpuProfile, EngineKind};

fn main() {
    let spec = CounterSpec {
        iterations: 200_000,
        workers: 1,
        body: CounterBody::LockAndCounter,
    };
    let built = counter_loop(Mechanism::RasInline, &spec);

    let fast = RunOptions::new(CpuProfile::r3000());
    let mut translated = RunOptions::new(CpuProfile::r3000());
    translated.engine = EngineKind::Translated;

    let t = Instant::now();
    let a = run_guest(&built, &fast);
    let fast_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let b = run_guest(&built, &translated);
    let translated_ms = t.elapsed().as_secs_f64() * 1e3;

    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.instructions, b.instructions);
    let fast_ips = a.instructions as f64 / (fast_ms / 1e3);
    let translated_ips = b.instructions as f64 / (translated_ms / 1e3);
    println!(
        "fast       {fast_ms:8.1} ms  {:.1}M instr/s",
        fast_ips / 1e6
    );
    println!(
        "translated {translated_ms:8.1} ms  {:.1}M instr/s  ({:.2}x)",
        translated_ips / 1e6,
        translated_ips / fast_ips
    );
    let stats = b.translation.expect("translated run reports counters");
    print!("{}", stats.render());
}
