//! The event timeline: chronology, causality, and restart bookkeeping.

use ras_isa::{abi, Asm, DataLayout, Reg};
use ras_kernel::{Event, Kernel, KernelConfig, Outcome, StrategyKind, ThreadId};
use ras_machine::CpuProfile;

fn cfg(strategy: StrategyKind, quantum: u64) -> KernelConfig {
    let mut c = KernelConfig::new(CpuProfile::r3000(), strategy);
    c.quantum = quantum;
    c.mem_bytes = 1 << 20;
    c.stack_bytes = 4096;
    c
}

/// A two-worker designated fetch-and-add program (from the kernel test
/// helpers), small enough to inspect its full timeline.
fn faa_program(counter: u32) -> ras_isa::Program {
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    asm.mv(Reg::S0, Reg::A0);
    let top = asm.bind_new();
    asm.li(Reg::A1, counter as i32);
    asm.lw(Reg::V0, Reg::A1, 0);
    asm.addi(Reg::V0, Reg::V0, 1);
    asm.landmark();
    asm.sw(Reg::V0, Reg::A1, 0);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
    asm.bind(jump_main);
    asm.set_entry_here();
    for save in [Reg::S1, Reg::S2] {
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li(Reg::A0, worker as i32);
        asm.li(Reg::A1, 200);
        asm.syscall();
        asm.mv(save, Reg::V0);
    }
    for save in [Reg::S1, Reg::S2] {
        asm.li(Reg::V0, abi::SYS_JOIN as i32);
        asm.mv(Reg::A0, save);
        asm.syscall();
    }
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
    asm.finish().unwrap()
}

fn run_with_timeline(strategy: StrategyKind, quantum: u64) -> Kernel {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut k = Kernel::boot(cfg(strategy, quantum), program, &data.finish()).unwrap();
    k.enable_timeline();
    assert_eq!(k.run(2_000_000_000), Outcome::Completed);
    k
}

#[test]
fn timeline_is_chronological_and_complete() {
    let k = run_with_timeline(StrategyKind::Designated, 31);
    let events = k.timeline();
    assert!(!events.is_empty());
    for pair in events.windows(2) {
        assert!(pair[0].clock <= pair[1].clock, "out of order: {pair:?}");
    }
    // Every counter category matches the statistics.
    let count = |f: &dyn Fn(&Event) -> bool| events.iter().filter(|e| f(&e.event)).count() as u64;
    assert_eq!(
        count(&|e| matches!(e, Event::Preempt { .. })),
        k.stats().preemptions
    );
    assert_eq!(
        count(&|e| matches!(e, Event::Restart { .. })),
        k.stats().ras_restarts
    );
    // Main is spawned at boot, before the timeline is enabled, so only
    // the workers appear.
    assert_eq!(
        count(&|e| matches!(e, Event::Spawn { .. })),
        k.stats().threads_spawned - 1
    );
    assert_eq!(count(&|e| matches!(e, Event::Exit { .. })), 3);
}

#[test]
fn restarts_roll_backwards_and_follow_preemptions() {
    let k = run_with_timeline(StrategyKind::Designated, 23);
    let events = k.timeline();
    let mut saw_restart = false;
    for e in events {
        if let Event::Restart { from, to, .. } = e.event {
            saw_restart = true;
            assert!(to < from, "rollback must go backwards: {from} -> {to}");
            assert!(from - to <= 4, "within one sequence length");
        }
    }
    assert!(saw_restart, "quantum 23 must have forced a restart");
    // Every Restart is immediately preceded (same clock region) by the
    // Preempt of the same thread.
    for (i, e) in events.iter().enumerate() {
        if let Event::Restart { thread, .. } = e.event {
            let before = &events[..i];
            let prev = before
                .iter()
                .rev()
                .find(|p| matches!(p.event, Event::Preempt { .. } | Event::PageFault { .. }));
            match prev {
                Some(p) => match p.event {
                    Event::Preempt { thread: t } | Event::PageFault { thread: t, .. } => {
                        assert_eq!(t, thread, "restart attributed to the suspended thread")
                    }
                    _ => unreachable!(),
                },
                None => panic!("restart without a prior suspension"),
            }
        }
    }
}

#[test]
fn dispatches_alternate_between_runnable_threads() {
    let k = run_with_timeline(StrategyKind::Designated, 200);
    let dispatched: Vec<ThreadId> = k
        .timeline()
        .iter()
        .filter_map(|e| match e.event {
            Event::Dispatch { thread } => Some(thread),
            _ => None,
        })
        .collect();
    // Both workers (tids 1 and 2) must appear, interleaved.
    assert!(dispatched.contains(&ThreadId(1)));
    assert!(dispatched.contains(&ThreadId(2)));
}

#[test]
fn timeline_is_off_by_default_and_idempotent_to_enable() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut k = Kernel::boot(cfg(StrategyKind::Designated, 100), program, &data.finish()).unwrap();
    assert!(k.timeline().is_empty());
    k.enable_timeline();
    k.enable_timeline(); // second call must not clear anything
    assert_eq!(k.run(2_000_000_000), Outcome::Completed);
    assert!(!k.timeline().is_empty());
}

#[test]
fn enabling_the_timeline_emits_a_boot_marker() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut k = Kernel::boot(cfg(StrategyKind::Designated, 100), program, &data.finish()).unwrap();
    k.enable_timeline();
    // The main thread was spawned during boot, before the timeline
    // existed; the marker accounts for it.
    assert_eq!(
        k.timeline().first().map(|e| e.event),
        Some(Event::Boot { threads: 1 })
    );
    k.enable_timeline(); // must not emit a second marker
    assert_eq!(k.run(2_000_000_000), Outcome::Completed);
    let boots = k
        .timeline()
        .iter()
        .filter(|e| matches!(e.event, Event::Boot { .. }))
        .count();
    assert_eq!(boots, 1);
    // Boot threads + Spawn events now cover every thread ever created.
    let spawns = k
        .timeline()
        .iter()
        .filter(|e| matches!(e.event, Event::Spawn { .. }))
        .count() as u64;
    assert_eq!(1 + spawns, k.stats().threads_spawned);
}

#[test]
fn emulation_traps_appear_for_kernel_emulation_only() {
    let k = run_with_timeline(StrategyKind::Designated, 100);
    assert!(k
        .timeline()
        .iter()
        .all(|e| !matches!(e.event, Event::EmulatedTas { .. })));
}
