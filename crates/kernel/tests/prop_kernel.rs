//! Property tests: the mutual-exclusion invariant holds for *every*
//! preemption schedule, and execution is a deterministic function of the
//! configuration.

use proptest::prelude::*;
use ras_isa::{abi, AluOp, Asm, DataLayout, Program, Reg};
use ras_kernel::{CheckTime, Kernel, KernelConfig, Outcome, StrategyKind};
use ras_machine::{CpuProfile, EngineKind};

const N: i32 = 120;

fn exit(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
}

fn spawn_at(asm: &mut Asm, entry: u32, arg: i32, save: Reg) {
    asm.li(Reg::V0, abi::SYS_SPAWN as i32);
    asm.li(Reg::A0, entry as i32);
    asm.li(Reg::A1, arg);
    asm.syscall();
    asm.alui(AluOp::Or, save, Reg::V0, 0);
}

fn join(asm: &mut Asm, tid: Reg) {
    asm.li(Reg::V0, abi::SYS_JOIN as i32);
    asm.alui(AluOp::Or, Reg::A0, tid, 0);
    asm.syscall();
}

/// Workers increment `counter` N times each with the designated
/// fetch-and-add shape; main spawns `workers` of them and joins all.
fn faa_program(counter: u32, workers: usize) -> Program {
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        asm.alui(AluOp::Or, Reg::S0, Reg::A0, 0);
        let top = asm.bind_new();
        asm.li(Reg::A1, counter as i32);
        asm.lw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.landmark();
        asm.sw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    // Save up to 6 worker tids in s1..s6.
    let saves = [Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5, Reg::S6];
    for save in saves.iter().take(workers) {
        spawn_at(&mut asm, worker, N, *save);
    }
    for save in saves.iter().take(workers) {
        join(&mut asm, *save);
    }
    exit(&mut asm);
    asm.finish().unwrap()
}

fn run_counter(
    strategy: StrategyKind,
    check_time: CheckTime,
    quantum: u64,
    jitter: u64,
    seed: u64,
    workers: usize,
) -> (u32, u64, ras_kernel::KernelStats) {
    run_counter_on(
        strategy,
        check_time,
        quantum,
        jitter,
        seed,
        workers,
        EngineKind::Interpreter,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_counter_on(
    strategy: StrategyKind,
    check_time: CheckTime,
    quantum: u64,
    jitter: u64,
    seed: u64,
    workers: usize,
    engine: EngineKind,
) -> (u32, u64, ras_kernel::KernelStats) {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter, workers);
    let mut config = KernelConfig::new(CpuProfile::r3000(), strategy);
    config.quantum = quantum;
    config.jitter = jitter;
    config.seed = seed;
    config.check_time = check_time;
    config.mem_bytes = 1 << 20;
    config.stack_bytes = 4096;
    config.engine = engine;
    let mut k = Kernel::boot(config, program, &data.finish()).unwrap();
    assert_eq!(k.run(4_000_000_000), Outcome::Completed);
    (
        k.read_word(counter).unwrap(),
        k.machine().clock(),
        *k.stats(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Designated sequences give the exact count under any quantum, jitter,
    /// seed, worker count, and check placement.
    #[test]
    fn designated_is_exact_for_all_schedules(
        quantum in 5u64..300,
        jitter in 0u64..20,
        seed: u64,
        workers in 1usize..5,
        on_resume: bool,
    ) {
        let check = if on_resume { CheckTime::OnResume } else { CheckTime::OnSuspend };
        let (count, _, stats) = run_counter(
            StrategyKind::Designated, check, quantum, jitter, seed, workers,
        );
        prop_assert_eq!(count, (workers as u32) * N as u32);
        prop_assert!(stats.ras_checks > 0);
    }

    /// The unprotected race never over-counts, and with more than one
    /// worker and a small quantum it reliably under-counts somewhere in
    /// the batch (checked per-case as <=, the loss itself is demonstrated
    /// by a dedicated deterministic test).
    #[test]
    fn naked_race_never_overcounts(
        quantum in 5u64..100,
        seed: u64,
        workers in 2usize..5,
    ) {
        // Same program shape but no landmark recognition: run under None.
        let (count, _, _) = run_counter(
            StrategyKind::None, CheckTime::OnSuspend, quantum, 3, seed, workers,
        );
        prop_assert!(count <= (workers as u32) * N as u32);
        prop_assert!(count > 0);
    }

    /// Execution is a pure function of the configuration: same inputs,
    /// same final clock and identical statistics.
    #[test]
    fn execution_is_deterministic(
        quantum in 5u64..200,
        jitter in 0u64..10,
        seed: u64,
    ) {
        let a = run_counter(
            StrategyKind::Designated, CheckTime::OnSuspend, quantum, jitter, seed, 2,
        );
        let b = run_counter(
            StrategyKind::Designated, CheckTime::OnSuspend, quantum, jitter, seed, 2,
        );
        prop_assert_eq!(a.1, b.1);
        prop_assert_eq!(a.2, b.2);
    }

    /// The translated engine is kernel-observably identical to the
    /// interpreter: same final count, same total clock, same statistics
    /// (preemption counts, RAS checks, RAS restarts) for any quantum,
    /// jitter, seed, worker count, and recovery strategy. Small quanta
    /// make preemptions — and, under `Designated`, sequence rollbacks —
    /// land mid-trace constantly, so this pins the deopt contract at the
    /// kernel level, RAS restarts included.
    #[test]
    fn engines_agree_for_all_schedules(
        quantum in 5u64..300,
        jitter in 0u64..20,
        seed: u64,
        workers in 1usize..5,
        designated: bool,
    ) {
        let strategy = if designated { StrategyKind::Designated } else { StrategyKind::None };
        let a = run_counter_on(
            strategy.clone(), CheckTime::OnSuspend, quantum, jitter, seed, workers,
            EngineKind::Interpreter,
        );
        let b = run_counter_on(
            strategy, CheckTime::OnSuspend, quantum, jitter, seed, workers,
            EngineKind::Translated,
        );
        prop_assert_eq!(a, b);
    }

    /// Check placement (suspend vs resume) never changes the result, only
    /// potentially the accounting — §4.1's equivalence argument.
    #[test]
    fn check_time_is_result_equivalent(
        quantum in 5u64..200,
        seed: u64,
    ) {
        let a = run_counter(
            StrategyKind::Designated, CheckTime::OnSuspend, quantum, 0, seed, 3,
        );
        let b = run_counter(
            StrategyKind::Designated, CheckTime::OnResume, quantum, 0, seed, 3,
        );
        prop_assert_eq!(a.0, b.0);
        prop_assert_eq!(a.2.ras_restarts > 0, b.2.ras_restarts > 0);
    }
}

mod matcher_safety {
    use proptest::prelude::*;
    use ras_isa::{AluOp, Asm, Cond, Inst, Reg};
    use ras_kernel::DesignatedSet;

    fn arb_reg() -> impl Strategy<Value = Reg> {
        (0u8..32).prop_map(|i| Reg::new(i).unwrap())
    }

    /// Instructions a compiler might emit — everything EXCEPT the landmark.
    fn arb_ordinary_inst(code_len: u32) -> impl Strategy<Value = Inst> {
        prop_oneof![
            (arb_reg(), any::<i32>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
            (arb_reg(), arb_reg(), arb_reg()).prop_map(|(rd, rs, rt)| Inst::Alu {
                op: AluOp::Add,
                rd,
                rs,
                rt
            }),
            (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, rs, imm)| Inst::AluI {
                op: AluOp::Add,
                rd,
                rs,
                imm
            }),
            (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rd, base, off)| Inst::Lw {
                rd,
                base,
                off
            }),
            (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(rs, base, off)| Inst::Sw {
                rs,
                base,
                off
            }),
            (arb_reg(), arb_reg(), 0..code_len).prop_map(|(rs, rt, target)| Inst::Branch {
                cond: Cond::Ne,
                rs,
                rt,
                target
            }),
            (0..code_len).prop_map(|target| Inst::J { target }),
            arb_reg().prop_map(|rs| Inst::Jr { rs }),
            Just(Inst::Nop),
            Just(Inst::Syscall),
        ]
    }

    proptest! {
        /// "The kernel's comparison must ... reject any other similar
        /// looking sequence since mistakenly changing the PC in such a
        /// situation could cause code to malfunction" (§3.2). For any
        /// landmark-free program, stage 2 never requests a rollback at any
        /// PC.
        #[test]
        fn stage2_never_touches_landmark_free_code(
            insts in prop::collection::vec(arb_ordinary_inst(64), 1..64),
        ) {
            let mut asm = Asm::new();
            for inst in &insts {
                asm.emit(*inst);
            }
            let program = asm.finish().unwrap();
            let set = DesignatedSet::standard();
            for pc in 0..program.len() as u32 {
                prop_assert_eq!(set.stage2(&program, pc), None, "pc={}", pc);
            }
        }
    }
}
