//! The sleep facility: timed wake-ups, idle-time accounting, and
//! interaction with the scheduler.

use ras_isa::{abi, AluOp, Asm, DataLayout, Reg};
use ras_kernel::{Kernel, KernelConfig, Outcome, StrategyKind, ThreadState};
use ras_machine::CpuProfile;

fn cfg() -> KernelConfig {
    let mut c = KernelConfig::new(CpuProfile::r3000(), StrategyKind::None);
    c.mem_bytes = 1 << 20;
    c.stack_bytes = 4096;
    c
}

fn exit(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
}

fn sleep(asm: &mut Asm, cycles: i32) {
    asm.li(Reg::V0, abi::SYS_SLEEP as i32);
    asm.li(Reg::A0, cycles);
    asm.syscall();
}

fn print_reg(asm: &mut Asm, r: Reg) {
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.alui(AluOp::Or, Reg::A0, r, 0);
    asm.syscall();
}

fn spawn_at(asm: &mut Asm, entry: u32, arg: i32) {
    asm.li(Reg::V0, abi::SYS_SPAWN as i32);
    asm.li(Reg::A0, entry as i32);
    asm.li(Reg::A1, arg);
    asm.syscall();
}

fn join_v0(asm: &mut Asm) {
    asm.alui(AluOp::Or, Reg::A0, Reg::V0, 0);
    asm.li(Reg::V0, abi::SYS_JOIN as i32);
    asm.syscall();
}

#[test]
fn sleepers_wake_in_deadline_order() {
    // Three children sleep 30_000 / 10_000 / 20_000 cycles and print
    // their argument on waking: output must be sorted by duration.
    let mut asm = Asm::new();
    let to_main = asm.label();
    asm.j(to_main);
    let child = asm.here();
    {
        // a0 = duration; sleep then print duration.
        asm.alui(AluOp::Or, Reg::S0, Reg::A0, 0);
        asm.li(Reg::V0, abi::SYS_SLEEP as i32);
        asm.syscall();
        print_reg(&mut asm, Reg::S0);
        exit(&mut asm);
    }
    asm.bind(to_main);
    asm.set_entry_here();
    for d in [30_000, 10_000, 20_000] {
        spawn_at(&mut asm, child, d);
    }
    // Join all three (tids 1..=3).
    for t in 1..=3 {
        asm.li(Reg::A0, t);
        asm.li(Reg::V0, abi::SYS_JOIN as i32);
        asm.syscall();
    }
    exit(&mut asm);
    let mut k = Kernel::boot(cfg(), asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
    assert_eq!(k.output(), &[10_000, 20_000, 30_000]);
    assert_eq!(k.stats().sleeps, 3);
}

#[test]
fn idle_cycles_are_charged_when_everyone_sleeps() {
    let mut asm = Asm::new();
    asm.set_entry_here();
    sleep(&mut asm, 500_000);
    exit(&mut asm);
    let mut k = Kernel::boot(cfg(), asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
    assert!(
        k.stats().idle_cycles >= 490_000,
        "idle: {}",
        k.stats().idle_cycles
    );
    assert!(k.machine().clock() >= 500_000);
}

#[test]
fn sleeping_threads_do_not_count_as_deadlock() {
    let mut asm = Asm::new();
    asm.set_entry_here();
    sleep(&mut asm, 1_000);
    sleep(&mut asm, 1_000);
    exit(&mut asm);
    let mut k = Kernel::boot(cfg(), asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
}

#[test]
fn sleep_state_is_observable_and_fuel_resumable() {
    // The sleeper stays observably asleep while another thread keeps the
    // processor busy (with a runnable thread the clock cannot idle-jump
    // past the wake-up time prematurely).
    let mut asm = Asm::new();
    let to_main = asm.label();
    asm.j(to_main);
    let busy = asm.here();
    {
        asm.li(Reg::T0, 200_000);
        let top = asm.bind_new();
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, top);
        exit(&mut asm);
    }
    asm.bind(to_main);
    asm.set_entry_here();
    spawn_at(&mut asm, busy, 0);
    sleep(&mut asm, 100_000);
    asm.li(Reg::A0, 1); // the busy child's tid
    asm.li(Reg::V0, abi::SYS_JOIN as i32);
    asm.syscall();
    exit(&mut asm);
    let mut k = Kernel::boot(cfg(), asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
    // Run a few thousand cycles: main has slept, busy is running.
    assert_eq!(k.run(5_000), Outcome::OutOfFuel);
    match k.thread_state(ras_kernel::ThreadId(0)) {
        ThreadState::Sleeping { until } => assert!(*until >= 100_000),
        other => panic!("expected sleeping, got {other:?}"),
    }
    assert_eq!(k.run(u64::MAX), Outcome::Completed);
}

#[test]
fn per_thread_cycles_are_attributed() {
    // One busy child and one brief child: the busy one must accumulate
    // far more user cycles.
    let mut asm = Asm::new();
    let to_main = asm.label();
    asm.j(to_main);
    let busy = asm.here();
    {
        asm.li(Reg::T0, 20_000);
        let top = asm.bind_new();
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, top);
        exit(&mut asm);
    }
    let brief = asm.here();
    exit(&mut asm);
    asm.bind(to_main);
    asm.set_entry_here();
    spawn_at(&mut asm, busy, 0);
    join_v0(&mut asm);
    spawn_at(&mut asm, brief, 0);
    join_v0(&mut asm);
    exit(&mut asm);
    let mut k = Kernel::boot(cfg(), asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
    let busy_cycles = k.thread_cycles(ras_kernel::ThreadId(1));
    let brief_cycles = k.thread_cycles(ras_kernel::ThreadId(2));
    assert!(busy_cycles >= 40_000, "busy: {busy_cycles}");
    assert!(brief_cycles < 100, "brief: {brief_cycles}");
    // Sum of per-thread user cycles never exceeds the wall clock.
    let total: u64 = (0..k.thread_count() as u32)
        .map(|t| k.thread_cycles(ras_kernel::ThreadId(t)))
        .sum();
    assert!(total <= k.machine().clock());
}
