//! End-to-end kernel behavior: scheduling, syscalls, and — most importantly
//! — the restartable-atomic-sequence strategies under hostile preemption.

use ras_isa::{abi, Asm, DataLayout, Reg};
use ras_kernel::{CheckTime, Kernel, KernelConfig, Outcome, StrategyKind, ThreadState};
use ras_machine::{CpuProfile, EngineKind, PagingConfig};

const N: i32 = 400;

fn cfg(strategy: StrategyKind, quantum: u64) -> KernelConfig {
    let mut c = KernelConfig::new(CpuProfile::r3000(), strategy);
    c.quantum = quantum;
    c.jitter = 3;
    c.seed = 42;
    c.mem_bytes = 1 << 20;
    c.stack_bytes = 4096;
    c
}

fn exit(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
}

/// Emits: spawn worker at absolute address `entry` with `arg`; child tid
/// left in `save`.
fn spawn_at(asm: &mut Asm, entry: u32, arg: i32, save: Reg) {
    asm.li(Reg::V0, abi::SYS_SPAWN as i32);
    asm.li(Reg::A0, entry as i32);
    asm.li(Reg::A1, arg);
    asm.syscall();
    asm.alui(ras_isa::AluOp::Or, save, Reg::V0, 0);
}

fn join(asm: &mut Asm, tid: Reg) {
    asm.li(Reg::V0, abi::SYS_JOIN as i32);
    asm.alui(ras_isa::AluOp::Or, Reg::A0, tid, 0);
    asm.syscall();
}

/// Builds a program where two workers each do `N` unprotected
/// fetch-and-add increments of `counter` using the designated `faa` shape
/// (lw; addi; landmark; sw).
fn faa_program(counter: u32) -> ras_isa::Program {
    let mut asm = Asm::new();
    // Worker sits after main; assemble worker first so its address is known.
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        // a0 = iterations
        asm.alui(ras_isa::AluOp::Or, Reg::S0, Reg::A0, 0);
        let top = asm.bind_new();
        asm.li(Reg::A1, counter as i32);
        // The designated fetch-and-add sequence.
        asm.lw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.landmark();
        asm.sw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, worker, N, Reg::S1);
    spawn_at(&mut asm, worker, N, Reg::S2);
    join(&mut asm, Reg::S1);
    join(&mut asm, Reg::S2);
    exit(&mut asm);
    asm.finish().unwrap()
}

/// Same increments but with the landmark replaced by a plain nop, so no
/// strategy can recognize the sequence: the race is naked.
fn naked_program(counter: u32) -> ras_isa::Program {
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        asm.alui(ras_isa::AluOp::Or, Reg::S0, Reg::A0, 0);
        let top = asm.bind_new();
        asm.li(Reg::A1, counter as i32);
        asm.lw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.nop();
        asm.sw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, worker, N, Reg::S1);
    spawn_at(&mut asm, worker, N, Reg::S2);
    join(&mut asm, Reg::S1);
    join(&mut asm, Reg::S2);
    exit(&mut asm);
    asm.finish().unwrap()
}

#[test]
fn single_thread_completes() {
    let mut asm = Asm::new();
    asm.li(Reg::T0, 99);
    asm.sw(Reg::T0, Reg::ZERO, 0);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 10_000),
        asm.finish().unwrap(),
        &DataLayout::new().finish(),
    )
    .unwrap();
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(k.read_word(0).unwrap(), 99);
    assert_eq!(k.stats().threads_spawned, 1);
}

#[test]
fn spawn_join_and_print() {
    let mut data = DataLayout::new();
    let slot = data.word("slot", 0);
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        // Child stores its argument then prints its own tid from $gp.
        asm.li(Reg::T0, slot as i32);
        asm.sw(Reg::A0, Reg::T0, 0);
        asm.li(Reg::V0, abi::SYS_PRINT as i32);
        asm.alui(ras_isa::AluOp::Or, Reg::A0, Reg::GP, 0);
        asm.syscall();
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, worker, 1234, Reg::S1);
    join(&mut asm, Reg::S1);
    asm.li(Reg::T1, slot as i32);
    asm.lw(Reg::T2, Reg::T1, 0);
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.alui(ras_isa::AluOp::Or, Reg::A0, Reg::T2, 0);
    asm.syscall();
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 10_000),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
    assert_eq!(k.output(), &[1, 1234], "child tid then the stored arg");
}

#[test]
fn naked_increments_lose_updates_under_preemption() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = naked_program(counter);
    let mut k = Kernel::boot(cfg(StrategyKind::None, 23), program, &data.finish()).unwrap();
    assert_eq!(k.run(500_000_000), Outcome::Completed);
    let got = k.read_word(counter).unwrap();
    assert!(
        got < 2 * N as u32,
        "expected lost updates, got full count {got} — the simulator is not interleaving"
    );
    assert!(k.stats().preemptions > 0);
}

#[test]
fn designated_sequences_repair_the_same_race() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut k = Kernel::boot(cfg(StrategyKind::Designated, 23), program, &data.finish()).unwrap();
    assert_eq!(k.run(500_000_000), Outcome::Completed);
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
    let stats = k.stats();
    assert!(stats.ras_restarts > 0, "tiny quantum must force restarts");
    assert!(stats.ras_checks >= stats.suspensions);
}

#[test]
fn translated_engine_repairs_the_race_identically() {
    // Same workload under both engines at two quanta. The tiny quantum
    // makes every preemption land mid-trace and Designated rollbacks
    // rewind PCs into compiled code — there the fit check correctly
    // deopts whole slices to the interpreter (a 23-cycle slice can never
    // fit a superblock), which must be invisible. The roomy quantum lets
    // compiled traces actually run, so the same equality then covers the
    // translated executor itself, and we assert it dominated.
    let run = |engine: EngineKind, quantum: u64| {
        let mut data = DataLayout::new();
        let counter = data.word("counter", 0);
        let program = faa_program(counter);
        let mut config = cfg(StrategyKind::Designated, quantum);
        config.engine = engine;
        let mut k = Kernel::boot(config, program, &data.finish()).unwrap();
        assert_eq!(k.run(500_000_000), Outcome::Completed);
        assert_eq!(k.engine(), engine);
        (
            k.read_word(counter).unwrap(),
            k.machine().clock(),
            *k.stats(),
            k.translation_stats(),
        )
    };
    for quantum in [23, 5_000] {
        let (count_i, clock_i, stats_i, none) = run(EngineKind::Interpreter, quantum);
        let (count_t, clock_t, stats_t, trans) = run(EngineKind::Translated, quantum);
        assert!(none.is_none());
        assert_eq!(count_i, 2 * N as u32);
        assert_eq!(count_t, count_i);
        assert_eq!(clock_t, clock_i, "quantum {quantum}");
        assert_eq!(stats_t, stats_i, "quantum {quantum}");
        let ts = trans.expect("translated kernel reports stats");
        assert!(ts.blocks_compiled > 0, "hot loop must compile");
        if quantum == 23 {
            assert!(stats_t.ras_restarts > 0, "tiny quantum must force restarts");
        } else {
            assert!(
                ts.translated_instructions > ts.interpreted_instructions,
                "most work should run translated: {ts:?}"
            );
        }
    }
}

#[test]
fn designated_check_on_resume_also_repairs() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut config = cfg(StrategyKind::Designated, 23);
    config.check_time = CheckTime::OnResume;
    let mut k = Kernel::boot(config, program, &data.finish()).unwrap();
    assert_eq!(k.run(500_000_000), Outcome::Completed);
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
    assert!(k.stats().ras_restarts > 0);
}

#[test]
fn faa_landmark_is_invisible_to_none_strategy() {
    // The landmark is a plain no-op to a kernel without the strategy: the
    // race stays broken, proving the recovery (not some accidental
    // serialization) fixes it.
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut k = Kernel::boot(cfg(StrategyKind::None, 23), program, &data.finish()).unwrap();
    assert_eq!(k.run(500_000_000), Outcome::Completed);
    assert!(k.read_word(counter).unwrap() < 2 * N as u32);
}

#[test]
fn kernel_emulated_tas_protects_a_spinlock() {
    let mut data = DataLayout::new();
    let lock = data.word("lock", 0);
    let counter = data.word("counter", 0);
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        asm.alui(ras_isa::AluOp::Or, Reg::S0, Reg::A0, 0);
        let top = asm.bind_new();
        // acquire: loop { if TAS(lock)==0 break; yield }
        let acquire = asm.bind_new();
        asm.li(Reg::V0, abi::SYS_TAS as i32);
        asm.li(Reg::A0, lock as i32);
        asm.syscall();
        let got_it = asm.label();
        asm.beqz(Reg::V0, got_it);
        asm.li(Reg::V0, abi::SYS_YIELD as i32);
        asm.syscall();
        asm.j(acquire);
        asm.bind(got_it);
        // critical section: counter++
        asm.li(Reg::A1, counter as i32);
        asm.lw(Reg::T0, Reg::A1, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A1, 0);
        // release: single store of zero is atomic
        asm.li(Reg::A2, lock as i32);
        asm.sw(Reg::ZERO, Reg::A2, 0);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, worker, N, Reg::S1);
    spawn_at(&mut asm, worker, N, Reg::S2);
    join(&mut asm, Reg::S1);
    join(&mut asm, Reg::S2);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 97),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(2_000_000_000), Outcome::Completed);
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
    assert!(k.stats().emulation_traps >= 2 * N as u64);
}

#[test]
fn registered_sequence_repairs_a_tas_spinlock() {
    let mut data = DataLayout::new();
    let lock = data.word("lock", 0);
    let counter = data.word("counter", 0);
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    // The registered Test-And-Set function (Figure 4): the sequence is the
    // three instructions lw/li/sw; the jr is outside it.
    let tas = asm.here();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.jr(Reg::RA);
    let worker = asm.here();
    {
        asm.alui(ras_isa::AluOp::Or, Reg::S0, Reg::A0, 0);
        let top = asm.bind_new();
        let acquire = asm.bind_new();
        asm.li(Reg::A0, lock as i32);
        asm.jal_to(tas);
        let got_it = asm.label();
        asm.beqz(Reg::V0, got_it);
        asm.li(Reg::V0, abi::SYS_YIELD as i32);
        asm.syscall();
        asm.j(acquire);
        asm.bind(got_it);
        asm.li(Reg::A1, counter as i32);
        asm.lw(Reg::T0, Reg::A1, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A1, 0);
        asm.li(Reg::A2, lock as i32);
        asm.sw(Reg::ZERO, Reg::A2, 0);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    // Register the sequence before spawning workers.
    asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
    asm.li(Reg::A0, tas as i32);
    asm.li(Reg::A1, 3);
    asm.syscall();
    spawn_at(&mut asm, worker, N, Reg::S1);
    spawn_at(&mut asm, worker, N, Reg::S2);
    join(&mut asm, Reg::S1);
    join(&mut asm, Reg::S2);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::Registered, 19),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(2_000_000_000), Outcome::Completed);
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
    assert_eq!(k.registered_range(), Some((tas, 3)));
    assert!(k.stats().registrations == 1);
    assert!(k.stats().ras_restarts > 0);
}

#[test]
fn registration_is_refused_without_support() {
    let mut asm = Asm::new();
    asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
    asm.li(Reg::A0, 0);
    asm.li(Reg::A1, 3);
    asm.syscall();
    // Print the result so the test can observe it.
    asm.li(Reg::T0, abi::ERR_UNSUPPORTED as i32);
    let ok = asm.label();
    asm.beq(Reg::V0, Reg::T0, ok);
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.li(Reg::A0, 0);
    asm.syscall();
    exit(&mut asm);
    asm.bind(ok);
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.li(Reg::A0, 1);
    asm.syscall();
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::Designated, 10_000),
        asm.finish().unwrap(),
        &DataLayout::new().finish(),
    )
    .unwrap();
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(k.output(), &[1], "registration must be refused");
    assert_eq!(k.stats().registrations_refused, 1);
}

#[test]
fn wait_and_wake_form_a_rendezvous() {
    let mut data = DataLayout::new();
    let flag = data.word("flag", 0);
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let waiter = asm.here();
    {
        // Wait while flag == 0, then print the flag's value.
        let retry = asm.bind_new();
        asm.li(Reg::V0, abi::SYS_WAIT as i32);
        asm.li(Reg::A0, flag as i32);
        asm.li(Reg::A1, 0);
        asm.syscall();
        asm.li(Reg::T0, flag as i32);
        asm.lw(Reg::T1, Reg::T0, 0);
        asm.beqz(Reg::T1, retry);
        asm.li(Reg::V0, abi::SYS_PRINT as i32);
        asm.alui(ras_isa::AluOp::Or, Reg::A0, Reg::T1, 0);
        asm.syscall();
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, waiter, 0, Reg::S1);
    // Let the waiter run and block.
    asm.li(Reg::V0, abi::SYS_YIELD as i32);
    asm.syscall();
    // Set the flag, then wake.
    asm.li(Reg::T0, flag as i32);
    asm.li(Reg::T1, 777);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::V0, abi::SYS_WAKE as i32);
    asm.li(Reg::A0, flag as i32);
    asm.li(Reg::A1, 1);
    asm.syscall();
    join(&mut asm, Reg::S1);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 100_000),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
    assert_eq!(k.output(), &[777]);
    assert!(k.stats().blocks >= 1);
    assert!(k.stats().wakeups >= 1);
}

#[test]
fn wake_order_is_per_address_fifo_across_bucket_collisions() {
    // Five waiters block interleaved on two addresses chosen to collide
    // into the same futex bucket (the waiter table is
    // next_power_of_two(max_threads) = 16 buckets with the golden-ratio
    // multiplicative hash). SYS_WAKE walks the shared chain in place,
    // skipping the colliding address's entries, so each wake must pick
    // the earliest blocker *on that address* — exactly the FIFO the old
    // per-address HashMap queues gave — and the wakeups stat must count
    // precisely one per woken thread.
    const GOLDEN: u32 = 0x9E37_79B9;
    let bucket = |addr: u32| addr.wrapping_mul(GOLDEN) >> 28;
    let flag_a = 0x1000u32;
    let flag_b = (0x2000u32..0x3000)
        .step_by(4)
        .find(|&x| bucket(x) == bucket(flag_a))
        .expect("a 16-bucket table must alias some word in this range");
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let waiter = asm.here();
    {
        // Block on the flag address passed as the spawn argument; when
        // woken, print our own tid and exit.
        asm.li(Reg::V0, abi::SYS_WAIT as i32);
        asm.li(Reg::A1, 0);
        asm.syscall();
        asm.li(Reg::V0, abi::SYS_PRINT as i32);
        asm.alui(ras_isa::AluOp::Or, Reg::A0, Reg::GP, 0);
        asm.syscall();
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    // Tids 1..=5 block in spawn order: a, b, a, b, a.
    for (i, flag) in [flag_a, flag_b, flag_a, flag_b, flag_a].iter().enumerate() {
        spawn_at(
            &mut asm,
            waiter,
            *flag as i32,
            [Reg::S1, Reg::S2, Reg::S3, Reg::S4, Reg::S5][i],
        );
    }
    // Let every waiter run to its SYS_WAIT.
    for _ in 0..6 {
        asm.li(Reg::V0, abi::SYS_YIELD as i32);
        asm.syscall();
    }
    let wake = |asm: &mut Asm, addr: u32, n: i32| {
        asm.li(Reg::V0, abi::SYS_WAKE as i32);
        asm.li(Reg::A0, addr as i32);
        asm.li(Reg::A1, n);
        asm.syscall();
    };
    // wake(a, 1) → tid 1 (first on a), not tid 2 even though tid 2 sits
    // earlier in no queue — and not tid 3/5.
    wake(&mut asm, flag_a, 1);
    asm.li(Reg::V0, abi::SYS_YIELD as i32);
    asm.syscall();
    // wake(b, 1) → tid 2, skipping a's entries in the shared chain.
    wake(&mut asm, flag_b, 1);
    asm.li(Reg::V0, abi::SYS_YIELD as i32);
    asm.syscall();
    // wake(a, 2) → tids 3 and 5 in block order; wake(b, 9) → tid 4 only,
    // returning woken = 1 in $v0 (printed as 100 + v0).
    wake(&mut asm, flag_a, 2);
    wake(&mut asm, flag_b, 9);
    asm.alui(ras_isa::AluOp::Or, Reg::T0, Reg::V0, 0);
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.addi(Reg::A0, Reg::T0, 100);
    asm.syscall();
    exit(&mut asm);
    let mut config = KernelConfig::new(CpuProfile::r3000(), StrategyKind::None);
    config.quantum = 100_000;
    config.mem_bytes = 1 << 20;
    config.stack_bytes = 4096;
    config.max_threads = 16;
    let mut k = Kernel::boot(config, asm.finish().unwrap(), &DataLayout::new().finish()).unwrap();
    assert_eq!(k.run(10_000_000), Outcome::Completed);
    assert_eq!(
        k.output(),
        &[1, 2, 101, 3, 5, 4],
        "wakes must follow per-address block order"
    );
    assert_eq!(k.stats().blocks, 5);
    assert_eq!(
        k.stats().wakeups,
        5,
        "one wakeup per woken thread, none double-counted"
    );
}

#[test]
fn wait_with_stale_value_returns_immediately() {
    let mut data = DataLayout::new();
    let flag = data.word("flag", 5);
    let mut asm = Asm::new();
    asm.li(Reg::V0, abi::SYS_WAIT as i32);
    asm.li(Reg::A0, flag as i32);
    asm.li(Reg::A1, 0); // expected 0, actual 5 → no block
    asm.syscall();
    asm.li(Reg::T0, 0);
    let blocked_path = asm.label();
    asm.beq(Reg::V0, Reg::T0, blocked_path);
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.li(Reg::A0, 1);
    asm.syscall();
    exit(&mut asm);
    asm.bind(blocked_path);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 100_000),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(k.output(), &[1]);
    assert_eq!(k.stats().blocks, 0);
}

#[test]
fn deadlock_is_detected() {
    let mut data = DataLayout::new();
    let flag = data.word("flag", 0);
    let mut asm = Asm::new();
    asm.li(Reg::V0, abi::SYS_WAIT as i32);
    asm.li(Reg::A0, flag as i32);
    asm.li(Reg::A1, 0);
    asm.syscall();
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 100_000),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    match k.run(1_000_000) {
        Outcome::Deadlock { blocked } => assert_eq!(blocked.len(), 1),
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn out_of_fuel_is_resumable() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut k = Kernel::boot(cfg(StrategyKind::Designated, 23), program, &data.finish()).unwrap();
    let mut outcomes = 0;
    loop {
        match k.run(10_000) {
            Outcome::OutOfFuel => outcomes += 1,
            Outcome::Completed => break,
            other => panic!("unexpected {other:?}"),
        }
        assert!(outcomes < 1_000_000, "never completes");
    }
    assert!(outcomes > 0, "fuel slicing must have engaged");
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
}

#[test]
fn hardware_restart_bit_protects_increments_on_i860() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        asm.alui(ras_isa::AluOp::Or, Reg::S0, Reg::A0, 0);
        let top = asm.bind_new();
        asm.li(Reg::A1, counter as i32);
        asm.begin_atomic();
        asm.lw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::V0, Reg::V0, 1);
        asm.sw(Reg::V0, Reg::A1, 0);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, worker, N, Reg::S1);
    spawn_at(&mut asm, worker, N, Reg::S2);
    join(&mut asm, Reg::S1);
    join(&mut asm, Reg::S2);
    exit(&mut asm);
    let mut config = KernelConfig::new(CpuProfile::i860(), StrategyKind::HardwareBit);
    config.quantum = 23;
    config.jitter = 3;
    config.seed = 7;
    config.mem_bytes = 1 << 20;
    config.stack_bytes = 4096;
    let mut k = Kernel::boot(config, asm.finish().unwrap(), &data.finish()).unwrap();
    assert_eq!(k.run(2_000_000_000), Outcome::Completed);
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
    assert!(k.stats().preemptions > 0);
}

#[test]
fn page_faults_restart_designated_sequences() {
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let program = faa_program(counter);
    let mut config = cfg(StrategyKind::Designated, 31);
    config.paging = Some(PagingConfig {
        page_bytes: 4096,
        max_resident: 2,
    });
    let mut k = Kernel::boot(config, program, &data.finish()).unwrap();
    assert_eq!(k.run(4_000_000_000), Outcome::Completed);
    assert_eq!(k.read_word(counter).unwrap(), 2 * N as u32);
    assert!(k.stats().page_faults > 0, "paging must have engaged");
}

#[test]
fn determinism_same_seed_same_execution() {
    let build = || {
        let mut data = DataLayout::new();
        let counter = data.word("counter", 0);
        let program = faa_program(counter);
        let mut k =
            Kernel::boot(cfg(StrategyKind::Designated, 23), program, &data.finish()).unwrap();
        assert_eq!(k.run(500_000_000), Outcome::Completed);
        (k.machine().clock(), *k.stats())
    };
    let (c1, s1) = build();
    let (c2, s2) = build();
    assert_eq!(c1, c2);
    assert_eq!(s1, s2);
}

#[test]
fn preemptions_are_counted_and_fair() {
    // Two busy loops with SYS_PRINT markers; both must make progress.
    let mut asm = Asm::new();
    let jump_main = asm.label();
    asm.j(jump_main);
    let worker = asm.here();
    {
        asm.li(Reg::S0, 30);
        let top = asm.bind_new();
        asm.li(Reg::V0, abi::SYS_PRINT as i32);
        asm.alui(ras_isa::AluOp::Or, Reg::A0, Reg::GP, 0);
        asm.syscall();
        // burn some cycles
        asm.li(Reg::T0, 50);
        let burn = asm.bind_new();
        asm.addi(Reg::T0, Reg::T0, -1);
        asm.bnez(Reg::T0, burn);
        asm.addi(Reg::S0, Reg::S0, -1);
        asm.bnez(Reg::S0, top);
        exit(&mut asm);
    }
    asm.bind(jump_main);
    asm.set_entry_here();
    spawn_at(&mut asm, worker, 0, Reg::S1);
    spawn_at(&mut asm, worker, 0, Reg::S2);
    join(&mut asm, Reg::S1);
    join(&mut asm, Reg::S2);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 60),
        asm.finish().unwrap(),
        &DataLayout::new().finish(),
    )
    .unwrap();
    assert_eq!(k.run(100_000_000), Outcome::Completed);
    let ones = k.output().iter().filter(|&&v| v == 1).count();
    let twos = k.output().iter().filter(|&&v| v == 2).count();
    assert_eq!(ones, 30);
    assert_eq!(twos, 30);
    assert!(k.stats().preemptions > 10);
    // The markers must actually interleave rather than run to completion
    // serially.
    let first_two = k.output().iter().position(|&v| v == 2).unwrap();
    assert!(
        first_two < 30,
        "thread 2 should start before thread 1 finishes"
    );
}

#[test]
fn thread_states_are_visible() {
    let mut data = DataLayout::new();
    let flag = data.word("flag", 0);
    let mut asm = Asm::new();
    asm.li(Reg::V0, abi::SYS_WAIT as i32);
    asm.li(Reg::A0, flag as i32);
    asm.li(Reg::A1, 0);
    asm.syscall();
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None, 100_000),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    let _ = k.run(1_000_000);
    assert_eq!(
        *k.thread_state(ras_kernel::ThreadId(0)),
        ThreadState::Blocked { addr: flag }
    );
}
