//! Checkpoint/restore correctness: `Kernel::restore` must rewind every
//! observable bit of state — guest memory (via the undo log), the
//! incremental fingerprint, registers, scheduler queues, statistics —
//! after stores, kernel-emulated Test-And-Set, sequence rollbacks,
//! faults, and page faults.

use ras_isa::{abi, Asm, DataLayout, Reg, SeqRange};
use ras_kernel::{Kernel, KernelConfig, StepOutcome, StrategyKind};
use ras_machine::{CpuProfile, PagingConfig};

fn cfg(strategy: StrategyKind) -> KernelConfig {
    let mut c = KernelConfig::new(CpuProfile::r3000(), strategy);
    c.quantum = 10_000;
    c.jitter = 0;
    c.mem_bytes = 64 * 1024;
    c.stack_bytes = 4096;
    c.max_threads = 4;
    c
}

/// Every piece of kernel state `restore` promises to rewind, rendered
/// into one comparable string (registers, thread states, queues via
/// ready order, clock, stats, shared memory words, fingerprint).
fn digest(k: &Kernel) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(s, "clock={}", k.machine().clock()).unwrap();
    writeln!(s, "retired={}", k.machine().instructions_retired()).unwrap();
    writeln!(s, "current={:?}", k.current_thread()).unwrap();
    writeln!(s, "ready={:?}", k.ready_threads()).unwrap();
    writeln!(s, "stats={:?}", k.stats()).unwrap();
    writeln!(s, "registered={:?}", k.registered_range()).unwrap();
    writeln!(s, "resident={}", k.machine().mem().resident_pages()).unwrap();
    writeln!(s, "output={:?}", k.output()).unwrap();
    for i in 0..k.thread_count() {
        let t = ras_kernel::ThreadId(i as u32);
        let regs = k.thread_regs(t);
        write!(
            s,
            "t{i} pc={} state={:?} regs=",
            regs.pc(),
            k.thread_state(t)
        )
        .unwrap();
        for r in ras_isa::Reg::all() {
            write!(s, "{},", regs.get(r)).unwrap();
        }
        writeln!(s).unwrap();
    }
    let mut addr = 0;
    while addr < k.data_end() {
        write!(s, "{:x},", k.read_word(addr).unwrap_or(0)).unwrap();
        addr += 4;
    }
    writeln!(s, "fp={:?}", k.memory_fingerprint()).unwrap();
    s
}

fn assert_fingerprint_consistent(k: &Kernel) {
    let data_end = k.data_end();
    assert_eq!(
        k.memory_fingerprint().unwrap(),
        k.machine().mem().fingerprint_scan(data_end),
        "incremental fingerprint drifted from a fresh scan"
    );
}

fn exit(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
}

#[test]
fn restore_rewinds_plain_stores_exactly() {
    let mut data = DataLayout::new();
    let a = data.word("a", 5);
    let b = data.word("b", 0);
    let mut asm = Asm::new();
    asm.li(Reg::T0, a as i32);
    asm.li(Reg::T1, 77);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::T0, b as i32);
    asm.sw(Reg::T1, Reg::T0, 0);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    k.enable_checkpoints();
    // Step past the first li so the checkpoint is mid-execution.
    assert!(matches!(k.step_once(), StepOutcome::Ran { .. }));
    assert!(matches!(k.step_once(), StepOutcome::Ran { .. }));
    let cp = k.checkpoint();
    let before = digest(&k);
    while matches!(k.step_once(), StepOutcome::Ran { .. } | StepOutcome::Idled) {}
    assert_eq!(k.read_word(a).unwrap(), 77);
    assert_eq!(k.read_word(b).unwrap(), 77);
    let replayed = k.restore(&cp);
    assert!(replayed >= 2, "both stores must rewind, got {replayed}");
    assert_eq!(k.read_word(a).unwrap(), 5);
    assert_eq!(k.read_word(b).unwrap(), 0);
    assert_eq!(digest(&k), before);
    assert_fingerprint_consistent(&k);
    // The restored kernel replays to the identical terminal state.
    while matches!(k.step_once(), StepOutcome::Ran { .. } | StepOutcome::Idled) {}
    assert_eq!(k.read_word(a).unwrap(), 77);
    assert_eq!(k.read_word(b).unwrap(), 77);
}

#[test]
fn restore_rewinds_kernel_emulated_tas() {
    let mut data = DataLayout::new();
    let lock = data.word("lock", 0);
    let mut asm = Asm::new();
    asm.li(Reg::V0, abi::SYS_TAS as i32);
    asm.li(Reg::A0, lock as i32);
    asm.syscall();
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    k.enable_checkpoints();
    let cp = k.checkpoint();
    let before = digest(&k);
    let fp0 = k.memory_fingerprint().unwrap();
    for _ in 0..8 {
        k.step_once();
    }
    assert_eq!(k.read_word(lock).unwrap(), 1, "emulated tas wrote the lock");
    assert!(k.stats().emulation_traps >= 1);
    let replayed = k.restore(&cp);
    assert!(
        replayed >= 1,
        "the store_kernel write must be in the undo log"
    );
    assert_eq!(k.read_word(lock).unwrap(), 0);
    assert_eq!(k.memory_fingerprint().unwrap(), fp0);
    assert_eq!(digest(&k), before);
    assert_fingerprint_consistent(&k);
}

#[test]
fn restore_rewinds_a_sequence_rollback() {
    // An explicitly registered lw/addi/sw sequence; preempting between
    // the lw and the sw rolls the PC back to the sequence start.
    let mut data = DataLayout::new();
    let counter = data.word("counter", 0);
    let mut asm = Asm::new();
    let to_main = asm.label();
    asm.j(to_main);
    let seq_start = asm.here();
    asm.li(Reg::A1, counter as i32);
    asm.lw(Reg::V1, Reg::A1, 0);
    asm.addi(Reg::V1, Reg::V1, 1);
    asm.sw(Reg::V1, Reg::A1, 0);
    let seq_end = asm.here();
    exit(&mut asm);
    asm.bind(to_main);
    asm.set_entry_here();
    asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
    asm.li(Reg::A0, seq_start as i32);
    asm.li(Reg::A1, (seq_end - seq_start) as i32);
    asm.syscall();
    asm.li(Reg::T0, seq_start as i32);
    asm.jr(Reg::T0);
    let mut program = asm.finish().unwrap();
    program.declare_seq(SeqRange {
        start: seq_start,
        len: seq_end - seq_start,
    });
    let mut k = Kernel::boot(cfg(StrategyKind::Registered), program, &data.finish()).unwrap();
    k.enable_checkpoints();
    // Run until the thread has executed the sequence's lw and addi (PC at
    // the committing sw) — squarely inside the registered range.
    while k.thread_regs(ras_kernel::ThreadId(0)).pc() != seq_end - 1 {
        assert!(matches!(k.step_once(), StepOutcome::Ran { .. }));
    }
    assert_eq!(k.registered_range(), Some((seq_start, seq_end - seq_start)));
    let cp = k.checkpoint();
    let before = digest(&k);
    assert!(k.preempt_current(), "a thread was running");
    assert_eq!(
        k.thread_regs(ras_kernel::ThreadId(0)).pc(),
        seq_start,
        "preemption inside the sequence must roll the PC back to its start"
    );
    k.restore(&cp);
    assert_eq!(digest(&k), before);
    assert_fingerprint_consistent(&k);
    // Replay from the restored point runs to completion with the counter
    // incremented exactly once.
    while matches!(k.step_once(), StepOutcome::Ran { .. } | StepOutcome::Idled) {}
    assert_eq!(k.read_word(counter).unwrap(), 1);
}

#[test]
fn restore_rewinds_a_fault() {
    let mut data = DataLayout::new();
    data.word("pad", 9);
    let mut asm = Asm::new();
    asm.li(Reg::T0, 2); // unaligned address
    asm.li(Reg::T1, 1);
    asm.sw(Reg::T1, Reg::T0, 0);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    k.enable_checkpoints();
    let cp = k.checkpoint();
    let before = digest(&k);
    let fault = loop {
        match k.step_once() {
            StepOutcome::Fault { fault, .. } => break fault,
            StepOutcome::Ran { .. } | StepOutcome::Idled => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    };
    k.restore(&cp);
    assert_eq!(digest(&k), before);
    assert_fingerprint_consistent(&k);
    // The identical fault reproduces from the restored state.
    let again = loop {
        match k.step_once() {
            StepOutcome::Fault { fault, .. } => break fault,
            StepOutcome::Ran { .. } | StepOutcome::Idled => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    };
    assert_eq!(format!("{fault:?}"), format!("{again:?}"));
}

#[test]
fn restore_rewinds_page_residency_and_fifo() {
    let mut data = DataLayout::new();
    let a = data.word("a", 1);
    let mut asm = Asm::new();
    asm.li(Reg::T0, a as i32);
    asm.lw(Reg::T1, Reg::T0, 0);
    exit(&mut asm);
    let mut c = cfg(StrategyKind::None);
    c.paging = Some(PagingConfig {
        page_bytes: 256,
        max_resident: 2,
    });
    let mut k = Kernel::boot(c, asm.finish().unwrap(), &data.finish()).unwrap();
    k.enable_checkpoints();
    let cp = k.checkpoint();
    let before = digest(&k);
    while matches!(k.step_once(), StepOutcome::Ran { .. } | StepOutcome::Idled) {}
    assert!(
        k.stats().page_faults >= 1,
        "first access faults the page in"
    );
    assert!(k.machine().mem().resident_pages() >= 1);
    k.restore(&cp);
    assert_eq!(k.machine().mem().resident_pages(), 0);
    assert_eq!(digest(&k), before);
    assert_fingerprint_consistent(&k);
}

#[test]
fn checkpoints_nest_and_restore_repeatedly() {
    let mut data = DataLayout::new();
    let a = data.word("a", 0);
    let mut asm = Asm::new();
    asm.li(Reg::T0, a as i32);
    asm.li(Reg::T1, 1);
    asm.sw(Reg::T1, Reg::T0, 0);
    asm.li(Reg::T1, 2);
    asm.sw(Reg::T1, Reg::T0, 0);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::None),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    k.enable_checkpoints();
    let outer = k.checkpoint();
    let outer_digest = digest(&k);
    for _ in 0..4 {
        k.step_once();
    }
    assert_eq!(k.read_word(a).unwrap(), 1);
    let inner = k.checkpoint();
    let inner_digest = digest(&k);
    for _ in 0..2 {
        k.step_once();
    }
    assert_eq!(k.read_word(a).unwrap(), 2);
    k.restore(&inner);
    assert_eq!(digest(&k), inner_digest);
    // Restoring the same checkpoint twice is fine.
    k.restore(&inner);
    assert_eq!(digest(&k), inner_digest);
    k.restore(&outer);
    assert_eq!(digest(&k), outer_digest);
    assert_fingerprint_consistent(&k);
    assert!(cp_size_is_small(&outer));
}

/// The checkpoint's by-value footprint must stay far below a full kernel
/// clone (which copies the 64 KiB guest image).
fn cp_size_is_small(cp: &ras_kernel::Checkpoint) -> bool {
    cp.approx_bytes() < 8 * 1024
}
