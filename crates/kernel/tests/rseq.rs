//! rseq strategy behavior: descriptor registration lifecycle, abort
//! dispatch boundaries (the half-open window), the `NO_RESTART` flag, and
//! handler re-entry. Oracle-mode stepping pins the preemption to an exact
//! PC, so the commit-boundary cases are deterministic rather than
//! quantum-lottery.

use proptest::prelude::*;
use ras_isa::{abi, AluOp, Asm, DataAddr, DataLayout, Program, Reg, RSEQ_CS_NO_RESTART_ON_PREEMPT};
use ras_kernel::{Kernel, KernelConfig, Outcome, StrategyKind, ThreadId};
use ras_machine::CpuProfile;

fn cfg(strategy: StrategyKind) -> KernelConfig {
    let mut c = KernelConfig::new(CpuProfile::r3000(), strategy);
    c.quantum = 1_000_000;
    c.jitter = 0;
    c.seed = 1;
    c.mem_bytes = 1 << 20;
    c.stack_bytes = 4096;
    c
}

fn exit(asm: &mut Asm) {
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
}

fn print_v0(asm: &mut Asm) {
    asm.alui(AluOp::Or, Reg::A0, Reg::V0, 0);
    asm.li(Reg::V0, abi::SYS_PRINT as i32);
    asm.syscall();
}

struct RseqProg {
    program: Program,
    data: ras_isa::DataImage,
    area: DataAddr,
    start: u32,
    abort: u32,
}

impl RseqProg {
    fn post_commit(&self) -> u32 {
        self.start + 3
    }
}

/// A single thread that registers its rseq area, then runs one published
/// critical section taking `lock` (the `__rseq_tas` shape: publish, then
/// the 3-instruction `lw; li; sw` window, then clear and exit). The abort
/// handler retries through the publish store.
fn rseq_program(flags: u32) -> RseqProg {
    let mut data = DataLayout::new();
    let area = data.word("area", 0);
    let cs = data.array("cs", 4, 0);
    let lock = data.word("lock", 0);
    let mut asm = Asm::new();
    asm.set_entry_here();
    asm.li(Reg::V0, abi::SYS_RSEQ as i32);
    asm.li(Reg::A0, area as i32);
    asm.li(Reg::A1, 0);
    asm.syscall();
    asm.li(Reg::A0, lock as i32);
    let retry = asm.bind_new();
    asm.li(Reg::T0, area as i32);
    asm.li(Reg::V0, cs as i32);
    asm.sw(Reg::V0, Reg::T0, 0);
    let start = asm.here();
    asm.lw(Reg::V0, Reg::A0, 0);
    asm.li(Reg::T2, 1);
    asm.sw(Reg::T2, Reg::A0, 0);
    asm.sw(Reg::ZERO, Reg::T0, 0);
    exit(&mut asm);
    let abort = asm.here();
    asm.j(retry);
    data.set_word(cs, start);
    data.set_word(cs + 4, 3);
    data.set_word(cs + 8, abort);
    data.set_word(cs + 12, flags);
    RseqProg {
        program: asm.finish().unwrap(),
        data: data.finish(),
        area,
        start,
        abort,
    }
}

/// Oracle-steps until thread 0 is dispatched with its PC at `pc`.
fn step_to(k: &mut Kernel, pc: u32) {
    for _ in 0..10_000 {
        if k.current_thread().is_some() && k.thread_regs(ThreadId(0)).pc() == pc {
            return;
        }
        k.step_once();
    }
    panic!("thread never reached pc {pc}");
}

fn lock_value(k: &Kernel, p: &RseqProg) -> u32 {
    k.read_word(p.data.symbol("lock").unwrap()).unwrap()
}

#[test]
fn preemption_exactly_at_post_commit_commits_rather_than_aborts() {
    // The window is half-open: pc == start + post_commit_offset is the
    // first instruction *past* the committing store, so a quantum expiring
    // there must not reach the abort handler — the store already happened.
    let p = rseq_program(0);
    let mut k = Kernel::boot(cfg(StrategyKind::Rseq), p.program.clone(), &p.data).unwrap();
    step_to(&mut k, p.post_commit());
    assert!(k.preempt_current());
    assert_eq!(k.stats().rseq_checks, 1);
    assert_eq!(k.stats().rseq_aborts, 0, "commit boundary must not abort");
    assert_eq!(k.thread_regs(ThreadId(0)).pc(), p.post_commit());
    // Outside the window the kernel lazily clears the stale descriptor.
    assert_eq!(k.read_word(p.area).unwrap(), 0);
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(lock_value(&k, &p), 1, "the committed store survives");
}

#[test]
fn preemption_at_window_start_aborts() {
    // The other end of the half-open window: pc == start_ip is inside.
    let p = rseq_program(0);
    let mut k = Kernel::boot(cfg(StrategyKind::Rseq), p.program.clone(), &p.data).unwrap();
    step_to(&mut k, p.start);
    assert!(k.preempt_current());
    assert_eq!(k.stats().rseq_aborts, 1);
    assert_eq!(k.thread_regs(ThreadId(0)).pc(), p.abort);
    assert_eq!(
        k.read_word(p.area).unwrap(),
        0,
        "abort consumes the descriptor"
    );
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(lock_value(&k, &p), 1, "the handler retried to completion");
}

#[test]
fn preemption_mid_window_redirects_to_the_abort_handler() {
    let p = rseq_program(0);
    let mut k = Kernel::boot(cfg(StrategyKind::Rseq), p.program.clone(), &p.data).unwrap();
    step_to(&mut k, p.start + 1);
    assert!(k.preempt_current());
    assert_eq!(k.stats().rseq_aborts, 1);
    assert_eq!(k.thread_regs(ThreadId(0)).pc(), p.abort);
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(lock_value(&k, &p), 1);
}

#[test]
fn preempting_the_abort_handler_does_not_abort_again() {
    // An abort consumed the published descriptor, so a second preemption
    // landing in the handler (before it republishes) finds no window and
    // must leave the PC alone — this is what makes handler re-entry safe.
    let p = rseq_program(0);
    let mut k = Kernel::boot(cfg(StrategyKind::Rseq), p.program.clone(), &p.data).unwrap();
    step_to(&mut k, p.start + 1);
    assert!(k.preempt_current());
    assert_eq!(k.thread_regs(ThreadId(0)).pc(), p.abort);
    step_to(&mut k, p.abort);
    assert!(k.preempt_current());
    assert_eq!(k.stats().rseq_aborts, 1, "no cascading abort");
    assert_eq!(k.thread_regs(ThreadId(0)).pc(), p.abort);
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(lock_value(&k, &p), 1);
}

#[test]
fn no_restart_flag_suppresses_the_abort() {
    let p = rseq_program(RSEQ_CS_NO_RESTART_ON_PREEMPT);
    let mut k = Kernel::boot(cfg(StrategyKind::Rseq), p.program.clone(), &p.data).unwrap();
    step_to(&mut k, p.start + 1);
    assert!(k.preempt_current());
    assert!(k.stats().rseq_checks >= 1);
    assert_eq!(k.stats().rseq_aborts, 0);
    assert_eq!(k.thread_regs(ThreadId(0)).pc(), p.start + 1);
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(lock_value(&k, &p), 1);
}

#[test]
fn register_unregister_round_trip_reports_busy_correctly() {
    // rseq(2) semantics: double registration and spurious unregistration
    // both fail with EBUSY; a full unregister/re-register cycle succeeds.
    let mut data = DataLayout::new();
    let area = data.word("area", 0);
    let mut asm = Asm::new();
    asm.set_entry_here();
    for unregister in [0, 0, 1, 1, 0] {
        asm.li(Reg::V0, abi::SYS_RSEQ as i32);
        asm.li(Reg::A0, area as i32);
        asm.li(Reg::A1, unregister);
        asm.syscall();
        print_v0(&mut asm);
    }
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::Rseq),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(
        k.output(),
        &[0, abi::ERR_BUSY, 0, abi::ERR_BUSY, 0],
        "register, busy, unregister, busy, register"
    );
    assert_eq!(k.stats().rseq_registrations, 2);
    assert_eq!(k.thread_rseq_area(ThreadId(0)), Some(area));
}

#[test]
fn registration_is_refused_without_the_rseq_strategy() {
    let mut data = DataLayout::new();
    let area = data.word("area", 0);
    let mut asm = Asm::new();
    asm.set_entry_here();
    asm.li(Reg::V0, abi::SYS_RSEQ as i32);
    asm.li(Reg::A0, area as i32);
    asm.li(Reg::A1, 0);
    asm.syscall();
    print_v0(&mut asm);
    exit(&mut asm);
    let mut k = Kernel::boot(
        cfg(StrategyKind::Designated),
        asm.finish().unwrap(),
        &data.finish(),
    )
    .unwrap();
    assert_eq!(k.run(1_000_000), Outcome::Completed);
    assert_eq!(k.output(), &[abi::ERR_UNSUPPORTED]);
    assert_eq!(k.stats().registrations_refused, 1);
    assert_eq!(k.thread_rseq_area(ThreadId(0)), None);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of register/unregister calls leaves the kernel's
    /// per-thread area slot in exactly the state a two-state reference
    /// model predicts, returning EBUSY precisely on the redundant calls.
    #[test]
    fn register_unregister_sequences_match_the_reference_model(
        ops in prop::collection::vec(any::<bool>(), 1..12),
    ) {
        let mut data = DataLayout::new();
        let area = data.word("area", 0);
        let mut asm = Asm::new();
        asm.set_entry_here();
        for &register in &ops {
            asm.li(Reg::V0, abi::SYS_RSEQ as i32);
            asm.li(Reg::A0, area as i32);
            asm.li(Reg::A1, if register { 0 } else { abi::RSEQ_UNREGISTER as i32 });
            asm.syscall();
            print_v0(&mut asm);
        }
        exit(&mut asm);
        let mut k = Kernel::boot(
            cfg(StrategyKind::Rseq),
            asm.finish().unwrap(),
            &data.finish(),
        )
        .unwrap();
        prop_assert_eq!(k.run(10_000_000), Outcome::Completed);

        let mut registered = false;
        let mut expected = Vec::new();
        let mut successes = 0u64;
        for &register in &ops {
            let ok = register != registered;
            expected.push(if ok { 0 } else { abi::ERR_BUSY });
            if ok && register {
                successes += 1;
            }
            if ok {
                registered = register;
            }
        }
        prop_assert_eq!(k.output(), expected.as_slice());
        prop_assert_eq!(k.stats().rseq_registrations, successes);
        let final_area = k.thread_rseq_area(ThreadId(0));
        prop_assert_eq!(final_area, registered.then_some(area));
    }
}
