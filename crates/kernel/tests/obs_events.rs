//! Structured observability events: ordering under forced preemption.
//!
//! These tests drive the kernel in oracle mode (`preempt_current` /
//! `schedule_next`) so the exact suspension point is chosen, then assert
//! on the recorded [`ObsEvent`] stream: a preemption inside a registered
//! sequence must appear as SwitchOut → Rollback → Dispatch, with the
//! rollback strictly between the switch-out and the next switch-in.

use ras_isa::{abi, Asm, CodeAddr, DataLayout, Reg};
use ras_kernel::{Kernel, KernelConfig, Outcome, StepOutcome, StrategyKind, ThreadId};
use ras_machine::CpuProfile;
use ras_obs::{ObsEvent, SwitchReason};

fn cfg(strategy: StrategyKind) -> KernelConfig {
    let mut c = KernelConfig::new(CpuProfile::r3000(), strategy);
    c.mem_bytes = 1 << 20;
    c.stack_bytes = 4096;
    c
}

/// A program that registers a 3-instruction lw/li/sw sequence and loops
/// into it. Returns (program, seq_start, mid_pc).
fn registered_seq_program() -> (ras_isa::Program, CodeAddr, CodeAddr) {
    let mut asm = Asm::new();
    let start = asm.label();
    asm.j(start);
    let seq = asm.lw(Reg::V0, Reg::A0, 0);
    let mid = asm.li(Reg::T0, 1);
    asm.sw(Reg::T0, Reg::A0, 0);
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
    asm.bind(start);
    asm.li(Reg::A0, seq as i32);
    asm.li(Reg::A1, 3);
    asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
    asm.syscall();
    asm.li(Reg::A0, 0);
    asm.j_to(seq);
    (asm.finish().unwrap(), seq, mid)
}

/// Steps until the main thread sits at `pc` with the processor.
fn step_to(kernel: &mut Kernel, pc: CodeAddr) {
    for _ in 0..10_000 {
        if kernel.current_thread() == Some(ThreadId(0))
            && kernel.thread_regs(ThreadId(0)).pc() == pc
        {
            return;
        }
        assert!(matches!(kernel.step_once(), StepOutcome::Ran { .. }));
    }
    panic!("never reached pc {pc}");
}

#[test]
fn forced_preemption_orders_switch_out_rollback_dispatch() {
    let (program, seq, mid) = registered_seq_program();
    let mut k = Kernel::boot(
        cfg(StrategyKind::Registered),
        program,
        &DataLayout::new().finish(),
    )
    .unwrap();
    k.enable_recording(true);
    step_to(&mut k, mid);
    assert!(k.preempt_current());
    // Redispatch the (only) thread so the Dispatch event exists.
    assert!(matches!(k.step_once(), StepOutcome::Ran { .. }));

    let rec = k.recording().expect("recording enabled");
    let events: Vec<&ObsEvent> = rec.events().iter().map(|e| &e.event).collect();

    // Locate the forced SwitchOut; it must report the quantum reason and
    // that the thread sat inside its registered sequence.
    let out_at = events
        .iter()
        .position(|e| {
            matches!(
                e,
                ObsEvent::SwitchOut {
                    thread: 0,
                    reason: SwitchReason::Quantum,
                    inside_sequence: true,
                }
            )
        })
        .expect("preemption inside the sequence recorded");
    // The rollback lands after the switch-out and before the next
    // dispatch of the same thread — the §4.1 check runs while the thread
    // is switched out, never while it owns the processor.
    let roll_at = events[out_at..]
        .iter()
        .position(|e| matches!(e, ObsEvent::Rollback { thread: 0, .. }))
        .map(|i| out_at + i)
        .expect("rollback recorded");
    let dispatch_at = events[out_at..]
        .iter()
        .position(|e| matches!(e, ObsEvent::Dispatch { thread: 0 }))
        .map(|i| out_at + i)
        .expect("redispatch recorded");
    assert!(
        out_at < roll_at && roll_at < dispatch_at,
        "expected SwitchOut < Rollback < Dispatch, got {out_at} / {roll_at} / {dispatch_at}"
    );

    // The rollback is attributed the cost of the discarded prefix: only
    // the lw retired before the preemption landed at `mid`.
    let load = u64::from(k.machine().profile().cost().load);
    match events[roll_at] {
        ObsEvent::Rollback {
            from,
            to,
            wasted_cycles,
            ..
        } => {
            assert_eq!(*from, mid);
            assert_eq!(*to, seq);
            assert_eq!(*wasted_cycles, load);
        }
        _ => unreachable!(),
    }

    // The aggregated metrics saw the same story.
    let m = rec.metrics();
    assert_eq!(m.rollbacks, 1);
    assert_eq!(m.preemptions_inside_sequence, 1);
    assert_eq!(m.wasted_cycles, load);
}

#[test]
fn preemption_at_sequence_start_is_outside() {
    let (program, seq, _mid) = registered_seq_program();
    let mut k = Kernel::boot(
        cfg(StrategyKind::Registered),
        program,
        &DataLayout::new().finish(),
    )
    .unwrap();
    k.enable_recording(true);
    // Park the thread exactly on the sequence's first instruction: no
    // atomic work has happened yet, so this is not "inside".
    step_to(&mut k, seq);
    assert!(k.preempt_current());
    let rec = k.recording().unwrap();
    assert!(rec.events().iter().any(|e| matches!(
        e.event,
        ObsEvent::SwitchOut {
            thread: 0,
            reason: SwitchReason::Quantum,
            inside_sequence: false,
        }
    )));
    assert_eq!(rec.metrics().rollbacks, 0);
}

#[test]
fn schedule_next_controls_the_recorded_dispatch_order() {
    // Main spawns two workers that exit immediately; after preempting
    // main, schedule_next picks worker 2 ahead of worker 1 and the
    // recorded Dispatch order proves it.
    let mut asm = Asm::new();
    let start = asm.label();
    asm.j(start);
    let worker = asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
    asm.bind(start);
    asm.set_entry_here();
    for _ in 0..2 {
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li(Reg::A0, worker as i32);
        asm.li(Reg::A1, 0);
        asm.syscall();
    }
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
    let program = asm.finish().unwrap();
    let mut k = Kernel::boot(
        cfg(StrategyKind::None),
        program,
        &DataLayout::new().finish(),
    )
    .unwrap();
    k.enable_recording(true);
    // Run main until both spawns happened.
    for _ in 0..10_000 {
        if k.thread_count() == 3 {
            break;
        }
        assert!(matches!(k.step_once(), StepOutcome::Ran { .. }));
    }
    assert_eq!(k.thread_count(), 3);
    assert!(k.preempt_current());
    assert!(k.schedule_next(ThreadId(2)));
    loop {
        match k.step_once() {
            StepOutcome::Completed => break,
            StepOutcome::Ran { .. } | StepOutcome::Idled => {}
            other => panic!("unexpected outcome {other:?}"),
        }
    }
    let dispatched: Vec<u32> = k
        .recording()
        .unwrap()
        .events()
        .iter()
        .filter_map(|e| match e.event {
            ObsEvent::Dispatch { thread } => Some(thread),
            _ => None,
        })
        .collect();
    let w2 = dispatched
        .iter()
        .position(|&t| t == 2)
        .expect("worker 2 ran");
    let w1 = dispatched
        .iter()
        .position(|&t| t == 1)
        .expect("worker 1 ran");
    assert!(
        w2 < w1,
        "schedule_next must put worker 2 first: {dispatched:?}"
    );
}

#[test]
fn metrics_only_recording_keeps_no_events() {
    let (program, _seq, mid) = registered_seq_program();
    let mut k = Kernel::boot(
        cfg(StrategyKind::Registered),
        program,
        &DataLayout::new().finish(),
    )
    .unwrap();
    k.enable_recording(false);
    step_to(&mut k, mid);
    assert!(k.preempt_current());
    let rec = k.take_recording().expect("recording active");
    assert!(
        rec.events().is_empty(),
        "metrics-only mode stores no events"
    );
    assert_eq!(rec.metrics().rollbacks, 1);
    assert!(
        k.recording().is_none(),
        "take_recording stops the recording"
    );
}

#[test]
fn full_run_events_reconcile_with_kernel_stats() {
    // Timer-driven execution: the obs counters must agree with the
    // kernel's own statistics for the categories both observe. The
    // program hammers a registered increment sequence 200 times so a
    // 17-cycle quantum lands inside it often.
    let mut asm = Asm::new();
    let start = asm.label();
    asm.j(start);
    let top = asm.bind_new();
    let seq = asm.lw(Reg::V0, Reg::A0, 0);
    asm.addi(Reg::V0, Reg::V0, 1);
    asm.sw(Reg::V0, Reg::A0, 0);
    asm.addi(Reg::S0, Reg::S0, -1);
    asm.bnez(Reg::S0, top);
    asm.li(Reg::V0, abi::SYS_EXIT as i32);
    asm.syscall();
    asm.bind(start);
    asm.set_entry_here();
    asm.li(Reg::S0, 200);
    asm.li(Reg::A0, seq as i32);
    asm.li(Reg::A1, 3);
    asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
    asm.syscall();
    asm.li(Reg::A0, 0);
    asm.j_to(seq);
    let program = asm.finish().unwrap();
    let mut config = cfg(StrategyKind::Registered);
    config.quantum = 17;
    let mut k = Kernel::boot(config, program, &DataLayout::new().finish()).unwrap();
    k.enable_recording(true);
    assert_eq!(k.run(2_000_000), Outcome::Completed);
    let rec = k.recording().unwrap();
    let m = rec.metrics();
    assert_eq!(m.rollbacks, k.stats().ras_restarts);
    assert_eq!(m.syscalls, k.stats().syscalls);
    assert_eq!(m.quantum_expiries, k.stats().preemptions);
    assert!(m.rollbacks > 0, "quantum 17 must force rollbacks");
    let events = rec.events();
    for pair in events.windows(2) {
        assert!(pair[0].clock <= pair[1].clock, "out of order: {pair:?}");
    }
    assert!(matches!(events[0].event, ObsEvent::Boot { threads: 1 }));
}
