//! Oracle-driven scheduling: the preemption timer replaced by an explicit
//! decision oracle.
//!
//! [`Kernel::run`] models a real system — a timer fires every quantum and
//! the kernel preempts whoever is running. That is one schedule out of
//! astronomically many. The model checker in `ras-model` needs to drive
//! the *same* kernel through *chosen* schedules: preempt exactly between
//! the load and the store of a Test-And-Set sequence, dispatch threads in
//! an adversarial order, and so on.
//!
//! A [`Scheduler`] is consulted before every kernel step and returns a
//! [`Decision`]. [`run_with_scheduler`] applies the decision and advances
//! the kernel by one step ([`Kernel::step_once`]), with the timer
//! neutralized. Everything else — strategy checks, rollbacks, syscalls,
//! paging — behaves identically to timer-driven execution, so a property
//! verified under the oracle is a property of the kernel proper.

use ras_machine::Fault;

use crate::{Kernel, StepOutcome, ThreadId};

/// One scheduling decision, applied before a kernel step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Decision {
    /// Let the current thread keep running; if none is running, dispatch
    /// the front of the ready queue.
    Continue,
    /// Preempt the current thread (timer semantics: strategy check, back
    /// of the ready queue) and dispatch this ready thread next.
    Preempt(ThreadId),
    /// With no thread running, dispatch this ready thread next instead of
    /// the queue front.
    Dispatch(ThreadId),
}

/// A scheduling oracle: decides, before every step, whether to preempt
/// and who runs next.
pub trait Scheduler {
    /// The decision for the next step. Inspect `kernel` freely — current
    /// thread, ready queue, registers, guest memory.
    fn decide(&mut self, kernel: &Kernel) -> Decision;
}

/// Why [`run_with_scheduler`] stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleOutcome {
    /// Every thread exited.
    Completed,
    /// A thread executed `halt` directly.
    Halted {
        /// The halting thread.
        thread: ThreadId,
    },
    /// No thread is runnable or sleeping but some are blocked.
    Deadlock {
        /// The blocked threads.
        blocked: Vec<ThreadId>,
    },
    /// A thread faulted irrecoverably.
    Fault {
        /// The faulting thread.
        thread: ThreadId,
        /// The fault.
        fault: Fault,
    },
    /// The step budget ran out before the system reached a terminal
    /// state.
    StepLimit,
}

/// Runs the kernel under an oracle for at most `max_steps` steps.
///
/// Each iteration consults the scheduler, applies its [`Decision`]
/// (ignoring infeasible ones: preempting when nothing runs, dispatching a
/// thread that is not ready), then advances by one [`Kernel::step_once`].
pub fn run_with_scheduler(
    kernel: &mut Kernel,
    scheduler: &mut dyn Scheduler,
    max_steps: u64,
) -> OracleOutcome {
    for _ in 0..max_steps {
        match scheduler.decide(kernel) {
            Decision::Continue => {}
            Decision::Preempt(next) => {
                if kernel.preempt_current() {
                    kernel.schedule_next(next);
                }
            }
            Decision::Dispatch(next) => {
                kernel.schedule_next(next);
            }
        }
        match kernel.step_once() {
            StepOutcome::Ran { .. } | StepOutcome::Idled => {}
            StepOutcome::Completed => return OracleOutcome::Completed,
            StepOutcome::Halted { thread } => return OracleOutcome::Halted { thread },
            StepOutcome::Deadlock { blocked } => return OracleOutcome::Deadlock { blocked },
            StepOutcome::Fault { thread, fault } => return OracleOutcome::Fault { thread, fault },
        }
    }
    OracleOutcome::StepLimit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Kernel, KernelConfig, Outcome, StrategyKind};
    use ras_isa::{abi, Asm, CodeAddr, DataLayout, Reg};
    use ras_machine::CpuProfile;

    /// Always lets execution proceed naturally.
    struct NeverPreempt;
    impl Scheduler for NeverPreempt {
        fn decide(&mut self, _kernel: &Kernel) -> Decision {
            Decision::Continue
        }
    }

    /// Preempts the running thread every `period` decisions.
    struct RoundRobin {
        period: u64,
        tick: u64,
    }
    impl Scheduler for RoundRobin {
        fn decide(&mut self, kernel: &Kernel) -> Decision {
            self.tick += 1;
            if self.tick.is_multiple_of(self.period) && kernel.current_thread().is_some() {
                if let Some(&next) = kernel.ready_threads().first() {
                    return Decision::Preempt(next);
                }
            }
            Decision::Continue
        }
    }

    fn small_config(strategy: StrategyKind) -> KernelConfig {
        let mut config = KernelConfig::new(CpuProfile::r3000(), strategy);
        config.mem_bytes = 64 * 1024;
        config.stack_bytes = 4096;
        config.max_threads = 4;
        config
    }

    /// Emits a racy `word[0] += 1` loop of `iters` iterations followed by
    /// exit. Returns the address of the first emitted instruction.
    fn emit_racy_loop(asm: &mut Asm, iters: i32) -> CodeAddr {
        let done = asm.label();
        let first = asm.li(Reg::A0, iters);
        let top = asm.bind_new();
        asm.beqz(Reg::A0, done);
        asm.lw(Reg::T0, Reg::ZERO, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::ZERO, 0);
        asm.addi(Reg::A0, Reg::A0, -1);
        asm.j(top);
        asm.bind(done);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        first
    }

    #[test]
    fn step_once_executes_one_instruction_at_a_time() {
        let mut asm = Asm::new();
        asm.li(Reg::T0, 7);
        asm.sw(Reg::T0, Reg::ZERO, 0);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        let program = asm.finish().unwrap();
        let config = small_config(StrategyKind::None);
        let mut kernel = Kernel::boot(config, program, &DataLayout::new().finish()).unwrap();
        let t0 = ThreadId(0);
        // Step 1: dispatch only — the PC has not moved.
        assert_eq!(kernel.step_once(), StepOutcome::Ran { thread: t0 });
        assert_eq!(kernel.thread_regs(t0).pc(), 0);
        // Steps 2..: exactly one instruction each.
        assert_eq!(kernel.step_once(), StepOutcome::Ran { thread: t0 });
        assert_eq!(kernel.thread_regs(t0).pc(), 1);
        assert_eq!(kernel.step_once(), StepOutcome::Ran { thread: t0 });
        assert_eq!(kernel.read_word(0).unwrap(), 7);
        assert_eq!(kernel.step_once(), StepOutcome::Ran { thread: t0 }); // li
        assert_eq!(kernel.step_once(), StepOutcome::Ran { thread: t0 }); // syscall
        assert_eq!(kernel.step_once(), StepOutcome::Completed);
    }

    #[test]
    fn oracle_preemption_exhibits_a_lost_update() {
        // Main spawns a worker; each adds 1 to word 0 once. The oracle
        // preempts main between its load and its store, so one update is
        // lost — the §2 hazard, forced deterministically instead of
        // awaited statistically.
        let mut asm = Asm::new();
        let start = asm.label();
        asm.j(start);
        let worker = asm.lw(Reg::T0, Reg::ZERO, 0);
        asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::ZERO, 0);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        asm.bind(start);
        asm.li(Reg::A1, 0);
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li(Reg::A0, worker as i32);
        asm.syscall();
        asm.lw(Reg::T0, Reg::ZERO, 0);
        let after_load = asm.addi(Reg::T0, Reg::T0, 1);
        asm.sw(Reg::T0, Reg::ZERO, 0);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        let program = asm.finish().unwrap();

        struct PreemptAfterLoad {
            at: CodeAddr,
            fired: bool,
        }
        impl Scheduler for PreemptAfterLoad {
            fn decide(&mut self, kernel: &Kernel) -> Decision {
                if !self.fired && kernel.current_thread() == Some(ThreadId(0)) {
                    // Main has loaded word 0 when its PC reaches the addi
                    // that follows its lw.
                    if kernel.thread_regs(ThreadId(0)).pc() == self.at {
                        if let Some(&next) = kernel.ready_threads().first() {
                            self.fired = true;
                            return Decision::Preempt(next);
                        }
                    }
                }
                Decision::Continue
            }
        }

        let config = small_config(StrategyKind::None);
        let mut kernel = Kernel::boot(config, program, &DataLayout::new().finish()).unwrap();
        let mut oracle = PreemptAfterLoad {
            at: after_load,
            fired: false,
        };
        assert_eq!(
            run_with_scheduler(&mut kernel, &mut oracle, 10_000),
            OracleOutcome::Completed
        );
        assert!(oracle.fired, "the preemption point was reached");
        // Two increments ran, but one was lost.
        assert_eq!(kernel.read_word(0).unwrap(), 1);
    }

    #[test]
    fn oracle_and_timer_agree_without_contention() {
        let mut asm = Asm::new();
        emit_racy_loop(&mut asm, 10);
        let program = asm.finish().unwrap();
        let data = DataLayout::new().finish();

        let mut timered =
            Kernel::boot(small_config(StrategyKind::None), program.clone(), &data).unwrap();
        assert_eq!(timered.run(u64::MAX), Outcome::Completed);

        let mut stepped = Kernel::boot(small_config(StrategyKind::None), program, &data).unwrap();
        assert_eq!(
            run_with_scheduler(&mut stepped, &mut NeverPreempt, 1_000_000),
            OracleOutcome::Completed
        );
        assert_eq!(timered.read_word(0).unwrap(), 10);
        assert_eq!(stepped.read_word(0).unwrap(), 10);
    }

    #[test]
    fn preempt_current_applies_the_strategy_check() {
        // A registered sequence: preempting between its load and store
        // must roll the thread back to the sequence start.
        let mut asm = Asm::new();
        let start = asm.label();
        asm.j(start);
        let seq = asm.lw(Reg::V0, Reg::A0, 0);
        let mid = asm.li(Reg::T0, 1);
        asm.sw(Reg::T0, Reg::A0, 0);
        asm.li(Reg::V0, abi::SYS_EXIT as i32);
        asm.syscall();
        asm.bind(start);
        asm.li(Reg::A0, seq as i32);
        asm.li(Reg::A1, 3);
        asm.li(Reg::V0, abi::SYS_RAS_REGISTER as i32);
        asm.syscall();
        asm.li(Reg::A0, 0);
        asm.j_to(seq);
        let program = asm.finish().unwrap();
        let config = small_config(StrategyKind::Registered);
        let mut kernel = Kernel::boot(config, program, &DataLayout::new().finish()).unwrap();
        // Step until the main thread sits mid-sequence (on the li after
        // the lw).
        for _ in 0..10_000 {
            if kernel.current_thread() == Some(ThreadId(0))
                && kernel.thread_regs(ThreadId(0)).pc() == mid
            {
                break;
            }
            assert!(matches!(kernel.step_once(), StepOutcome::Ran { .. }));
        }
        assert_eq!(kernel.thread_regs(ThreadId(0)).pc(), mid);
        assert!(kernel.preempt_current());
        // Rolled back to the start of the registered sequence.
        assert_eq!(kernel.thread_regs(ThreadId(0)).pc(), seq);
        assert_eq!(kernel.stats().ras_restarts, 1);
    }

    #[test]
    fn round_robin_oracle_interleaves_and_completes() {
        // Main spawns one worker; both run racy 5-iteration increment
        // loops under a tight round-robin schedule. Lost updates are
        // possible (and fine); the property is termination with a total
        // in the feasible range.
        let mut asm = Asm::new();
        let start = asm.label();
        asm.j(start);
        let worker = emit_racy_loop(&mut asm, 5);
        asm.bind(start);
        asm.li(Reg::A1, 0);
        asm.li(Reg::V0, abi::SYS_SPAWN as i32);
        asm.li(Reg::A0, worker as i32);
        asm.syscall();
        emit_racy_loop(&mut asm, 5);
        let program = asm.finish().unwrap();
        let data = DataLayout::new().finish();
        let mut kernel = Kernel::boot(small_config(StrategyKind::None), program, &data).unwrap();
        let mut oracle = RoundRobin { period: 3, tick: 0 };
        assert_eq!(
            run_with_scheduler(&mut kernel, &mut oracle, 1_000_000),
            OracleOutcome::Completed
        );
        let total = kernel.read_word(0).unwrap();
        assert!((1..=10).contains(&total), "total={total}");
    }
}
