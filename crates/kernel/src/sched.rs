use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The preemption timer: a quantum in cycles with optional seeded jitter.
///
/// The paper's optimism rests on atomic sequences being short relative to
/// the scheduling quantum (a 10 ms tick on the DECstation is 250,000 cycles
/// against a five-instruction sequence). Tests crank the quantum down to a
/// handful of cycles, with jitter, to force suspensions *inside* the
/// sequences and exercise the recovery machinery; benchmarks use realistic
/// quanta so restarts stay rare, matching Table 3's restart counts.
///
/// # Example
///
/// ```
/// use ras_kernel::PreemptionPolicy;
/// let mut p = PreemptionPolicy::new(1000, 0, 42);
/// assert_eq!(p.next_tick(0), 1000);
/// let mut j = PreemptionPolicy::new(1000, 100, 42);
/// let t = j.next_tick(0);
/// assert!((1000..=1100).contains(&t));
/// ```
#[derive(Debug, Clone)]
pub struct PreemptionPolicy {
    quantum: u64,
    jitter: u64,
    rng: StdRng,
}

impl PreemptionPolicy {
    /// Creates a policy firing every `quantum` cycles, plus a uniformly
    /// random extra delay in `0..=jitter` drawn from a deterministic
    /// generator seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `quantum` is zero.
    pub fn new(quantum: u64, jitter: u64, seed: u64) -> PreemptionPolicy {
        assert!(quantum > 0, "quantum must be positive");
        PreemptionPolicy {
            quantum,
            jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configured quantum.
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Computes the absolute cycle time of the next timer interrupt, given
    /// the current clock.
    pub fn next_tick(&mut self, now: u64) -> u64 {
        let extra = if self.jitter == 0 {
            0
        } else {
            self.rng.random_range(0..=self.jitter)
        };
        now + self.quantum + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_without_jitter() {
        let mut p = PreemptionPolicy::new(500, 0, 1);
        assert_eq!(p.next_tick(100), 600);
        assert_eq!(p.next_tick(600), 1100);
    }

    #[test]
    fn jitter_is_bounded_and_seed_deterministic() {
        let seq = |seed| {
            let mut p = PreemptionPolicy::new(100, 50, seed);
            (0..20).map(|i| p.next_tick(i * 1000)).collect::<Vec<_>>()
        };
        let a = seq(7);
        let b = seq(7);
        assert_eq!(a, b, "same seed, same schedule");
        for (i, t) in a.iter().enumerate() {
            let base = i as u64 * 1000 + 100;
            assert!((base..=base + 50).contains(t));
        }
        let c = seq(8);
        assert_ne!(a, c, "different seed should differ somewhere");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_quantum_is_rejected() {
        PreemptionPolicy::new(0, 0, 0);
    }
}
